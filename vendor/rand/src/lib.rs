//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored stub
//! provides the small slice of the `rand 0.8` API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over
//! integer ranges and [`Rng::gen_bool`]. The generator is SplitMix64 — not
//! the real `StdRng` (ChaCha12) — but every consumer in this workspace only
//! requires determinism for a given seed, which SplitMix64 provides.
//!
//! See `vendor/README.md` for the policy on replacing these stubs with the
//! real crates once registry access is available.

#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from a range, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Samples a value from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        // 53 random bits give a uniform double in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng` (the `seed_from_u64`
/// subset).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng` (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): full-period, passes
            // BigCrush on its own; more than adequate for workload synthesis.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&x));
            let y = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads={heads}");
    }
}
