//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored stub
//! provides the subset of the `criterion 0.5` API the workspace's benches
//! use: [`Criterion`], benchmark groups, `bench_function` /
//! `bench_with_input`, `iter` / `iter_batched`, [`BenchmarkId`],
//! [`BatchSize`], and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is intentionally simple — one warm-up iteration, then the
//! configured sample count timed with `std::time::Instant`, reporting the
//! mean per-iteration wall time. There is no statistical analysis, outlier
//! rejection, or HTML report. CI compiles the benches (`cargo bench
//! --no-run`) rather than running them, so compile-compatibility is the
//! contract; local runs still print usable numbers.
//!
//! See `vendor/README.md` for the policy on replacing these stubs with the
//! real crates once registry access is available.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` amortizes setup cost (accepted for API compatibility;
/// the stub runs one setup per iteration regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("solver", 8)` displays as `solver/8`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `routine` for the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = self.samples as u64;
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
        self.iterations = self.samples as u64;
    }

    fn report(&self, id: &str) {
        if self.iterations == 0 {
            println!("{id:<60} (no measurement)");
        } else {
            let mean = self.elapsed / self.iterations as u32;
            println!("{id:<60} {mean:>12.2?}/iter ({} iters)", self.iterations);
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<S: Display, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<S: Display, I: ?Sized, F>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group.
    pub fn finish(self) {
        let _ = self.criterion;
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Applies command-line configuration (no-op in the stub; accepted so
    /// generated harnesses ignore Cargo's extra bench arguments).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 100,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("criterion");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Declares a group function running each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench harness entry point (`harness = false` targets).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
