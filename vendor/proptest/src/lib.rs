//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored stub
//! provides the subset of the `proptest 1.x` surface the workspace's
//! property tests use: the [`Strategy`] trait with `prop_map` and
//! `prop_recursive`, boxed strategies, range and tuple strategies,
//! [`any`], `prop_oneof!`, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * no shrinking — a failing case reports its case index and message only;
//! * sampling is driven by a deterministic per-test SplitMix64 generator
//!   (seeded from the test's module path and name), so failures reproduce
//!   exactly on re-run;
//! * rejected cases (`prop_assume!`) are retried up to a fixed multiple of
//!   the requested case count; the test fails if the requested number of
//!   accepted cases is not reached (mirroring the real crate's "too many
//!   global rejects" error).
//!
//! See `vendor/README.md` for the policy on replacing these stubs with the
//! real crates once registry access is available.

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic RNG driving all sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds a generator whose stream is a pure function of `name`, so each
    /// test gets its own reproducible sequence.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test path keeps distinct tests decorrelated.
        let mut seed: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried, not failed.
    Reject(String),
    /// An assertion failed; the test fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// Builds a rejection.
    pub fn reject(msg: &str) -> Self {
        TestCaseError::Reject(msg.to_string())
    }
}

/// Per-`proptest!`-block configuration (subset of the real crate's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each test must run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` accepted cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of one type, the heart of the proptest API.
pub trait Strategy {
    /// The type of the generated values.
    type Value: fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<T, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        T: fmt::Debug,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, map }
    }

    /// Builds a recursive strategy: `expand` turns a strategy for the inner
    /// levels into a strategy for one more level, applied `depth` times with
    /// the base case mixed back in at every level.
    ///
    /// `_desired_size` and `_expected_branch` are accepted for API
    /// compatibility; this stub controls size through `depth` alone.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = BoxedStrategy(Rc::new(self));
        let mut current = base.clone();
        for _ in 0..depth {
            let expanded = BoxedStrategy(Rc::new(expand(current)));
            // Mixing the base back in (1 part base, 2 parts expansion) makes
            // sampled structures vary in depth instead of always reaching the
            // maximum.
            current = Union::new(vec![base.clone(), expanded.clone(), expanded]).boxed();
        }
        current
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    T: fmt::Debug,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.map)(self.source.sample(rng))
    }
}

/// Uniform choice among several strategies for the same type; the result of
/// `prop_oneof!`.
pub struct Union<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds the union; panics if `choices` is empty.
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !choices.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Union { choices }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.choices.len() as u64) as usize;
        self.choices[i].sample(rng)
    }
}

impl<T> fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Union({} choices)", self.choices.len())
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64 + 1;
                (start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
        )
    }
}

/// A full-range strategy for a primitive type, the result of [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Draws an arbitrary value of the type.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy generating any value of `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Everything the property tests normally import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Uniform choice among strategies: `prop_oneof![s1, s2, ...]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{left:?}`\n right: `{right:?}`"
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{left:?}`\n right: `{right:?}`\n{}",
                format!($($fmt)+)
            )));
        }
    }};
}

/// Rejects (skips) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Declares property tests: each function body runs for the configured
/// number of sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
     )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(16).max(16);
                while accepted < config.cases && attempts < max_attempts {
                    attempts += 1;
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $pat = $crate::Strategy::sample(&($strategy), &mut rng);)+
                        { $body }
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property `{}` failed at case {} (deterministic seed; rerun reproduces): {}",
                                stringify!($name), attempts, msg
                            );
                        }
                    }
                }
                assert!(
                    accepted >= config.cases,
                    "property `{}`: too many inputs rejected by prop_assume! \
                     (accepted {} of {} requested cases in {} attempts)",
                    stringify!($name), accepted, config.cases, attempts
                );
            }
        )*
    };
}
