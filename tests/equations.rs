//! End-to-end Boolean-equation solving (Section 8, Examples 8.1–8.3),
//! exercised through the umbrella crate's re-exports.

use brel_suite::brel::{BooleanSystem, BrelConfig, Equation};
use brel_suite::relation::RelationSpace;

fn example81_system(space: &RelationSpace) -> BooleanSystem {
    let a = space.input(0);
    let b = space.input(1);
    let x = space.output(0);
    let y = space.output(1);
    let z = space.output(2);
    let mut system = BooleanSystem::new(space);
    system.push(Equation::equal(
        x.or(&b.and(&y.complement()).and(&z.complement()))
            .or(&b.and(&z)),
        a.clone(),
    ));
    system.push(Equation::equal(
        x.and(&y).or(&x.and(&z)).or(&y.and(&z)),
        space.mgr().zero(),
    ));
    system
}

#[test]
fn example_81_reduction_and_consistency() {
    let space = RelationSpace::with_names(&["a", "b"], &["x", "y", "z"]);
    let system = example81_system(&space);
    // Theorem 8.1: the conjunction of the per-equation characteristic
    // functions is the characteristic function of the system.
    let chi = system.characteristic();
    let manual = system.equations()[0]
        .characteristic()
        .and(&system.equations()[1].characteristic());
    assert_eq!(chi, manual);
    // Property 8.2: consistency.
    assert!(system.is_consistent());
}

#[test]
fn example_83_particular_solution_via_brel() {
    let space = RelationSpace::with_names(&["a", "b"], &["x", "y", "z"]);
    let system = example81_system(&space);
    let solution = system.solve(BrelConfig::exact()).unwrap();
    assert!(system.is_solution(&solution.function));
    // Substituting the solution into both equations yields tautologies.
    for eq in system.equations() {
        let mut t = eq.characteristic();
        for (i, f) in solution.function.outputs().iter().enumerate() {
            t = t.compose(space.output_var(i), f);
        }
        assert!(
            t.is_one(),
            "equation not satisfied by the returned solution"
        );
    }
}

#[test]
fn inconsistent_systems_have_no_relation_solution() {
    let space = RelationSpace::with_names(&["a"], &["x"]);
    let a = space.input(0);
    let x = space.output(0);
    let mut system = BooleanSystem::new(&space);
    system.push(Equation::equal(x.clone(), a.clone()));
    system.push(Equation::equal(x, a.complement()));
    assert!(!system.is_consistent());
    assert!(system.solve(BrelConfig::default()).is_err());
    // The associated relation is not well defined, matching Property 8.2.
    assert!(!system.to_relation().is_well_defined());
}
