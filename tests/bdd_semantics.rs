//! Property-based checks that the BDD substrate agrees with truth-table
//! semantics on small variable counts — the foundation everything else in
//! the reproduction rests on.

use proptest::prelude::*;

use brel_suite::bdd::{Bdd, BddSession, Var};

/// A tiny expression language interpreted both over BDDs and truth tables.
#[derive(Debug, Clone)]
enum Expr {
    Var(usize),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

fn expr_strategy(num_vars: usize) -> impl Strategy<Value = Expr> {
    let leaf = (0..num_vars).prop_map(Expr::Var);
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

fn to_bdd(expr: &Expr, mgr: &BddSession) -> Bdd {
    match expr {
        Expr::Var(i) => mgr.var(*i as u32),
        Expr::Not(e) => to_bdd(e, mgr).complement(),
        Expr::And(a, b) => to_bdd(a, mgr).and(&to_bdd(b, mgr)),
        Expr::Or(a, b) => to_bdd(a, mgr).or(&to_bdd(b, mgr)),
        Expr::Xor(a, b) => to_bdd(a, mgr).xor(&to_bdd(b, mgr)),
    }
}

fn eval(expr: &Expr, asg: &[bool]) -> bool {
    match expr {
        Expr::Var(i) => asg[*i],
        Expr::Not(e) => !eval(e, asg),
        Expr::And(a, b) => eval(a, asg) && eval(b, asg),
        Expr::Or(a, b) => eval(a, asg) || eval(b, asg),
        Expr::Xor(a, b) => eval(a, asg) ^ eval(b, asg),
    }
}

const NUM_VARS: usize = 5;

fn assignments() -> impl Iterator<Item = Vec<bool>> {
    (0..(1u32 << NUM_VARS)).map(|bits| (0..NUM_VARS).map(|i| bits & (1 << i) != 0).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// BDD construction is semantics-preserving and canonical: equal truth
    /// tables produce identical nodes.
    #[test]
    fn bdd_matches_truth_table_and_is_canonical(e1 in expr_strategy(NUM_VARS), e2 in expr_strategy(NUM_VARS)) {
        let mgr = BddSession::new(NUM_VARS);
        let f1 = to_bdd(&e1, &mgr);
        let f2 = to_bdd(&e2, &mgr);
        let mut equal = true;
        for asg in assignments() {
            prop_assert_eq!(f1.eval(&asg), eval(&e1, &asg));
            prop_assert_eq!(f2.eval(&asg), eval(&e2, &asg));
            if f1.eval(&asg) != f2.eval(&asg) {
                equal = false;
            }
        }
        prop_assert_eq!(equal, f1 == f2, "canonicity violated");
    }

    /// Quantification, cofactors and composition agree with their
    /// truth-table definitions.
    #[test]
    fn quantification_and_cofactors_are_sound(e in expr_strategy(NUM_VARS), v in 0..NUM_VARS) {
        let mgr = BddSession::new(NUM_VARS);
        let f = to_bdd(&e, &mgr);
        let var = Var::from(v);
        let exists = f.exists(&[var]);
        let forall = f.forall(&[var]);
        let f0 = f.cofactor(var, false);
        let f1 = f.cofactor(var, true);
        for asg in assignments() {
            let mut a0 = asg.clone();
            a0[v] = false;
            let mut a1 = asg.clone();
            a1[v] = true;
            let e0 = eval(&e, &a0);
            let e1 = eval(&e, &a1);
            prop_assert_eq!(exists.eval(&asg), e0 || e1);
            prop_assert_eq!(forall.eval(&asg), e0 && e1);
            prop_assert_eq!(f0.eval(&asg), e0);
            prop_assert_eq!(f1.eval(&asg), e1);
        }
    }

    /// ISOP generation covers exactly the function, and the cover's cube
    /// count/literal count are consistent.
    #[test]
    fn isop_cover_is_exact(e in expr_strategy(NUM_VARS)) {
        let mgr = BddSession::new(NUM_VARS);
        let f = to_bdd(&e, &mgr);
        let isop = f.isop();
        prop_assert_eq!(isop.function, f.node_id());
        for asg in assignments() {
            let covered = isop.cubes.iter().any(|c| c.eval(&asg));
            prop_assert_eq!(covered, f.eval(&asg));
        }
        prop_assert!(isop.num_literals() >= isop.num_cubes() || f.is_constant());
    }

    /// The generalized cofactors agree with the function on the care set.
    #[test]
    fn generalized_cofactors_agree_on_care(e in expr_strategy(NUM_VARS), c in expr_strategy(NUM_VARS)) {
        let mgr = BddSession::new(NUM_VARS);
        let f = to_bdd(&e, &mgr);
        let care = to_bdd(&c, &mgr);
        prop_assume!(!care.is_zero());
        let constrained = f.constrain(&care);
        let restricted = f.restrict(&care);
        for asg in assignments() {
            if care.eval(&asg) {
                prop_assert_eq!(constrained.eval(&asg), f.eval(&asg));
                prop_assert_eq!(restricted.eval(&asg), f.eval(&asg));
            }
        }
    }

    /// The shortest-path cube is an implicant of the function (every
    /// completion satisfies it) and is never longer than the path found by
    /// the plain cube picker. (Note: it minimizes literals along BDD paths,
    /// which is a heuristic for — not identical to — the globally largest
    /// implicant; see §7.4 of the paper.)
    #[test]
    fn shortest_path_is_a_contained_cube(e in expr_strategy(NUM_VARS)) {
        let mgr = BddSession::new(NUM_VARS);
        let f = to_bdd(&e, &mgr);
        prop_assume!(!f.is_zero());
        let cube = f.shortest_path().unwrap();
        // Containment: every completion of the cube satisfies f.
        for asg in assignments() {
            let mut fixed = asg.clone();
            for &(v, b) in cube.assignments() {
                fixed[v.index()] = b;
            }
            prop_assert!(f.eval(&fixed));
        }
        // Never longer than an arbitrary satisfying path.
        let any = f.pick_cube().unwrap();
        prop_assert!(cube.num_literals() <= any.num_literals());
    }

    /// sat_count equals brute-force counting.
    #[test]
    fn sat_count_is_exact(e in expr_strategy(NUM_VARS)) {
        let mgr = BddSession::new(NUM_VARS);
        let f = to_bdd(&e, &mgr);
        let brute = assignments().filter(|a| eval(&e, a)).count() as u128;
        prop_assert_eq!(f.sat_count(NUM_VARS), brute);
    }
}
