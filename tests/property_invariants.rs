//! Property-based tests of the core invariants the paper's algorithm rests
//! on, over randomly generated relations and functions.

use proptest::prelude::*;

use brel_core::{
    BrelConfig, BrelSolver, CostFn, CostFunction, IsfMinimizer, MinimizerKind, QuickSolver,
};
use brel_relation::{BooleanRelation, MultiOutputFunction};
use brel_suite::benchdata::random_well_defined_relation;

/// Strategy: a seed plus small dimensions for a random well-defined relation.
fn relation_params() -> impl Strategy<Value = (usize, usize, u64)> {
    (2usize..=4, 1usize..=3, any::<u64>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 5.2 / 5.3: the MISF obtained by projection covers the
    /// relation, and projecting the MISF again changes nothing (it is the
    /// tightest MISF over-approximation).
    #[test]
    fn misf_is_the_tightest_overapproximation((ni, no, seed) in relation_params()) {
        let (_space, r) = random_well_defined_relation(ni, no, 0.25, seed);
        let misf_rel = r.to_misf().to_relation();
        prop_assert!(r.is_subset_of(&misf_rel).unwrap());
        let again = misf_rel.to_misf().to_relation();
        prop_assert_eq!(misf_rel, again);
    }

    /// Property 5.4 / Theorem 5.2: splitting on a flexible vertex keeps both
    /// halves well defined, partitions the relation's pairs at that vertex
    /// and reconstructs the relation by union.
    #[test]
    fn split_partitions_the_relation((ni, no, seed) in relation_params()) {
        let (space, r) = random_well_defined_relation(ni, no, 0.35, seed);
        // Find a vertex/output with {0,1} flexibility, if any.
        let mut split_point = None;
        'outer: for input in space.enumerate_inputs() {
            for output in 0..no {
                let flexible = r.projection_flexible_inputs(output);
                let x = space.input_minterm(&input).unwrap();
                if !x.and(&flexible).is_zero() {
                    split_point = Some((input, output));
                    break 'outer;
                }
            }
        }
        if let Some((input, output)) = split_point {
            let (r_neg, r_pos) = r.split(&input, output).unwrap();
            prop_assert!(r_neg.is_well_defined());
            prop_assert!(r_pos.is_well_defined());
            prop_assert!(r_neg.is_subset_of(&r).unwrap());
            prop_assert!(r_pos.is_subset_of(&r).unwrap());
            prop_assert_eq!(r_neg.union(&r_pos).unwrap(), r.clone());
            prop_assert!(r_neg != r && r_pos != r);
        }
    }

    /// The quick solver always returns a compatible function (Fig. 4).
    #[test]
    fn quick_solver_solutions_are_compatible((ni, no, seed) in relation_params()) {
        let (_space, r) = random_well_defined_relation(ni, no, 0.3, seed);
        let f = QuickSolver::new().solve(&r).unwrap();
        prop_assert!(r.is_compatible(&f));
    }

    /// The BREL solver always returns a compatible function and never does
    /// worse than the quick seed under its own cost function.
    #[test]
    fn brel_solutions_are_compatible_and_no_worse_than_quick((ni, no, seed) in relation_params()) {
        let (_space, r) = random_well_defined_relation(ni, no, 0.3, seed);
        let quick = QuickSolver::new().solve(&r).unwrap();
        let solution = BrelSolver::new(BrelConfig::default()).solve(&r).unwrap();
        prop_assert!(r.is_compatible(&solution.function));
        prop_assert!(solution.cost <= CostFn::SumBddSize.cost(&quick));
        prop_assert_eq!(solution.cost, CostFn::SumBddSize.cost(&solution.function));
    }

    /// Every ISF-minimization strategy of Table 1 produces an implementation
    /// inside the projected interval, for every output of a random relation.
    #[test]
    fn every_isf_minimizer_respects_the_projection_interval((ni, no, seed) in relation_params()) {
        let (_space, r) = random_well_defined_relation(ni, no, 0.3, seed);
        for output in 0..no {
            let isf = r.projection(output);
            for kind in [
                MinimizerKind::Isop,
                MinimizerKind::Constrain,
                MinimizerKind::Restrict,
                MinimizerKind::LiCompact,
            ] {
                for minimizer in [IsfMinimizer::new(kind), IsfMinimizer::without_elimination(kind)] {
                    let f = minimizer.minimize(&isf);
                    prop_assert!(isf.admits(&f), "{kind:?} left the interval");
                }
            }
        }
    }

    /// A functional relation round-trips through `to_function` and the
    /// relation built from a function is compatible only with itself.
    #[test]
    fn functional_relations_round_trip((ni, no, seed) in relation_params()) {
        let (space, r) = random_well_defined_relation(ni, no, 0.0, seed);
        prop_assert!(r.is_function());
        let f = r.to_function().unwrap();
        let back = BooleanRelation::from_function(&f);
        prop_assert_eq!(back, r.clone());
        // Any other function differing at one vertex is incompatible.
        let mut outputs = f.outputs().to_vec();
        let flip = space.input_minterm(&vec![false; ni]).unwrap();
        outputs[0] = outputs[0].xor(&flip);
        let other = MultiOutputFunction::new(&space, outputs).unwrap();
        prop_assert!(!r.is_compatible(&other));
    }

    /// Compatibility is monotone: a solution of a subrelation is a solution
    /// of every enclosing relation.
    #[test]
    fn compatibility_is_monotone_along_the_semilattice((ni, no, seed) in relation_params()) {
        let (_space, r) = random_well_defined_relation(ni, no, 0.4, seed);
        let solution = BrelSolver::new(BrelConfig::default()).solve(&r).unwrap();
        // Enlarge the relation by adding random extra pairs: still compatible.
        let (_s2, extra) = random_well_defined_relation(ni, no, 0.2, seed.wrapping_add(1));
        // Rebuild `extra` inside r's space via its table (same dimensions).
        let extra_in_space =
            BooleanRelation::from_table(r.space(), &extra.to_table().unwrap()).unwrap();
        let bigger = r.union(&extra_in_space).unwrap();
        prop_assert!(bigger.is_compatible(&solution.function));
    }
}
