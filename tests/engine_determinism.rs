//! Determinism of the batch engine: the same batch solved with 1, 2 and 8
//! workers must yield byte-identical `SolutionReport` sequences in job-id
//! order (timing-free serializations compared byte for byte).

use brel_suite::benchdata::random_relation::random_well_defined_relation;
use brel_suite::benchdata::table2;
use brel_suite::engine::{
    BackendKind, CostSpec, Engine, JobBudget, JobSpec, RelationSpec, SearchStrategy, WideOptions,
};
use brel_suite::relation::{BooleanRelation, RelationSpace};

fn mixed_batch() -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    // Two instances of the Table-2 family.
    for instance in table2::instances().into_iter().take(2) {
        let (_space, relation) = table2::generate(&instance);
        jobs.push(JobSpec::portfolio(
            instance.name,
            RelationSpec::from_relation(&relation).unwrap(),
        ));
    }
    // Two seeded random relations, one with a non-default cost function.
    for seed in [7u64, 8u64] {
        let (_space, relation) = random_well_defined_relation(4, 3, 0.25, seed);
        jobs.push(
            JobSpec::portfolio(
                format!("rand{seed}"),
                RelationSpec::from_relation(&relation).unwrap(),
            )
            .with_cost(if seed == 7 {
                CostSpec::SumBddSize
            } else {
                CostSpec::LiteralCount
            }),
        );
    }
    // A paper relation with an unbounded budget and a single-backend job.
    let space = RelationSpace::new(2, 2);
    let fig10 =
        BooleanRelation::from_table(&space, "00:{00,11}\n01:{10}\n10:{01,10}\n11:{11}").unwrap();
    jobs.push(
        JobSpec::portfolio("fig10", RelationSpec::from_relation(&fig10).unwrap()).with_budget(
            JobBudget {
                max_explored: None,
                fifo_capacity: None,
                ..JobBudget::default()
            },
        ),
    );
    jobs.push(JobSpec::single(
        "fig10_quick",
        RelationSpec::from_relation(&fig10).unwrap(),
        BackendKind::Quick,
    ));
    jobs
}

#[test]
fn batches_are_byte_identical_across_1_2_and_8_workers() {
    let jobs = mixed_batch();
    let reports: Vec<_> = [1usize, 2, 8]
        .into_iter()
        .map(|w| Engine::with_workers(w).solve_batch(&jobs))
        .collect();

    // Every run solves every job and delivers reports in job-id order.
    for report in &reports {
        assert_eq!(report.num_solved(), jobs.len());
        for (i, job) in report.jobs.iter().enumerate() {
            assert_eq!(job.job_id, i);
        }
    }

    // Byte-identical timing-free serializations, pairwise.
    let jsons: Vec<String> = reports.iter().map(|r| r.to_json(false)).collect();
    let csvs: Vec<String> = reports.iter().map(|r| r.to_csv(false)).collect();
    assert_eq!(jsons[0], jsons[1], "1 vs 2 workers (JSON)");
    assert_eq!(jsons[0], jsons[2], "1 vs 8 workers (JSON)");
    assert_eq!(csvs[0], csvs[1], "1 vs 2 workers (CSV)");
    assert_eq!(csvs[0], csvs[2], "1 vs 8 workers (CSV)");

    // The structured reports agree field by field too (not just the
    // serialized views): mask the wall-clock and the scheduling-dependent
    // reuse provenance, then compare directly.
    let masked: Vec<_> = reports
        .iter()
        .map(|r| {
            r.jobs
                .iter()
                .map(|j| {
                    let mut j = j.clone();
                    for a in &mut j.attempts {
                        a.wall_micros = 0;
                        a.reuse = Default::default();
                    }
                    j
                })
                .collect::<Vec<_>>()
        })
        .collect();
    assert_eq!(masked[0], masked[1]);
    assert_eq!(masked[0], masked[2]);
}

#[test]
fn best_first_batches_are_byte_identical_across_1_2_and_8_workers() {
    // The acceptance criterion: `--strategy best-first` output must be
    // deterministic at every worker count, in both engine modes.
    let jobs: Vec<JobSpec> = mixed_batch()
        .into_iter()
        .map(|j| j.with_strategy(SearchStrategy::BestFirst))
        .collect();

    // Job-parallel (narrow) mode.
    let narrow: Vec<String> = [1usize, 2, 8]
        .into_iter()
        .map(|w| Engine::with_workers(w).solve_batch(&jobs).to_json(false))
        .collect();
    assert_eq!(narrow[0], narrow[1], "narrow: 1 vs 2 workers");
    assert_eq!(narrow[0], narrow[2], "narrow: 1 vs 8 workers");
    assert!(narrow[0].contains("\"strategy\": \"best-first\""));

    // Wide mode (parallel frontier expansion inside each BREL solve).
    let wide: Vec<String> = [1usize, 2, 8]
        .into_iter()
        .map(|w| {
            Engine::with_workers(w)
                .with_wide(WideOptions {
                    lookahead: 4,
                    ..WideOptions::default()
                })
                .solve_batch(&jobs)
                .to_json(false)
        })
        .collect();
    assert_eq!(wide[0], wide[1], "wide: 1 vs 2 workers");
    assert_eq!(wide[0], wide[2], "wide: 1 vs 8 workers");

    // Wide CSV agrees too, and every job still solves.
    let wide_csv: Vec<String> = [1usize, 8]
        .into_iter()
        .map(|w| {
            Engine::with_workers(w)
                .with_wide(WideOptions {
                    lookahead: 4,
                    ..WideOptions::default()
                })
                .solve_batch(&jobs)
                .to_csv(false)
        })
        .collect();
    assert_eq!(wide_csv[0], wide_csv[1], "wide CSV: 1 vs 8 workers");
    let report = Engine::with_workers(2)
        .with_wide(WideOptions {
            lookahead: 4,
            ..WideOptions::default()
        })
        .solve_batch(&jobs);
    assert_eq!(report.num_solved(), jobs.len());
    // Wide mode still escapes the quick solver's local minimum on fig10.
    let fig10 = report.jobs.iter().find(|j| j.name == "fig10").unwrap();
    assert_eq!(fig10.winning().unwrap().cost, 2);
    assert_eq!(fig10.winning().unwrap().backend, BackendKind::Brel);
}

#[test]
fn portfolio_mode_picks_per_job_winners() {
    let jobs = mixed_batch();
    let report = Engine::with_workers(2).solve_batch(&jobs);
    // fig10 with an unbounded budget: BREL escapes the quick solver's
    // local minimum, so the portfolio winner must be BREL at cost 2.
    let fig10 = report.jobs.iter().find(|j| j.name == "fig10").unwrap();
    let winner = fig10.winning().unwrap();
    assert_eq!(winner.backend, BackendKind::Brel);
    assert_eq!(winner.cost, 2);
    // Every winner is the cheapest of its job's attempts.
    for job in &report.jobs {
        let w = job.winning().unwrap();
        assert!(job.attempts.iter().all(|a| a.cost >= w.cost));
    }
    // The single-backend job ran exactly one attempt.
    let single = report
        .jobs
        .iter()
        .find(|j| j.name == "fig10_quick")
        .unwrap();
    assert_eq!(single.attempts.len(), 1);
    assert_eq!(single.winning().unwrap().backend, BackendKind::Quick);
}
