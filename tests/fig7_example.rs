//! The worked example of Fig. 7: a 3-input, 2-output relation solved after
//! one split, with conflicts on vertices 010 and 101.

use brel_benchdata::figures;
use brel_core::{BrelConfig, BrelSolver, IsfMinimizer, TraceEvent};
use brel_relation::MultiOutputFunction;

#[test]
fn first_misf_minimization_conflicts_then_split_resolves() {
    let (space, r) = figures::fig7();
    // First recursion: minimize the MISF projections.
    let misf = r.to_misf();
    let minimizer = IsfMinimizer::default();
    let outputs: Vec<_> = misf
        .outputs()
        .iter()
        .map(|i| minimizer.minimize(i))
        .collect();
    let candidate = MultiOutputFunction::new(&space, outputs).unwrap();
    assert!(
        !r.is_compatible(&candidate),
        "the projected minimization must conflict with the relation"
    );
    let conflicts = r.conflicting_inputs(&candidate);
    assert!(!conflicts.is_zero());

    // The solver resolves the conflicts with at least one split and returns
    // a compatible solution.
    let solution = BrelSolver::new(BrelConfig::exact().with_trace(true))
        .solve(&r)
        .unwrap();
    assert!(r.is_compatible(&solution.function));
    assert!(solution.stats.splits >= 1);
    let split_events = solution
        .trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::Split { .. }))
        .count();
    assert!(split_events >= 1);
}

#[test]
fn exact_solution_is_no_worse_than_the_paper_style_answer() {
    // The paper's second-recursion solutions use one or two literals per
    // output (e.g. x ⇔ b, y ⇔ a + c). The exact run must therefore find a
    // solution whose sum of BDD sizes is at most 1 + 2 = 3.
    let (_space, r) = figures::fig7();
    let solution = BrelSolver::new(BrelConfig::exact()).solve(&r).unwrap();
    assert!(
        solution.cost <= 3,
        "cost {} exceeds the paper's solution",
        solution.cost
    );
}
