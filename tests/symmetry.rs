//! Output-symmetry pruning (Section 7.7, Fig. 8).

use brel_benchdata::figures;
use brel_core::{BrelConfig, BrelSolver, SymmetryCache};

#[test]
fn fig8_children_are_symmetric_variants_of_each_other() {
    let (space, r) = figures::fig8();
    // The relation is symmetric in its two outputs.
    assert!(r
        .characteristic()
        .is_symmetric(space.output_var(0), space.output_var(1)));
    // Splitting a flexible vertex on output x produces two subrelations that
    // are output permutations of each other, so the cache flags the second.
    let conflicts = space.input_minterm(&[false, false]).unwrap();
    let (vertex, output) = r.select_split_point(&conflicts).unwrap();
    let (r_neg, r_pos) = r.split(&vertex, output).unwrap();
    let mut cache = SymmetryCache::new();
    assert!(!cache.check_and_insert(&r_neg));
    assert!(cache.check_and_insert(&r_pos));
}

#[test]
fn symmetry_pruning_preserves_quality_and_never_explores_more() {
    for (_space, r) in [figures::fig1(), figures::fig7(), figures::fig8()] {
        let without = BrelSolver::new(BrelConfig::exact().with_symmetry(false))
            .solve(&r)
            .unwrap();
        let with = BrelSolver::new(BrelConfig::exact().with_symmetry(true))
            .solve(&r)
            .unwrap();
        assert_eq!(
            without.cost, with.cost,
            "symmetry pruning must not change the best cost"
        );
        assert!(with.stats.explored <= without.stats.explored);
        assert!(r.is_compatible(&with.function));
    }
}

#[test]
fn symmetric_relation_benefits_from_pruning() {
    let (_space, r) = figures::fig8();
    let with = BrelSolver::new(BrelConfig::exact().with_symmetry(true))
        .solve(&r)
        .unwrap();
    assert!(
        with.stats.skipped_by_symmetry >= 1,
        "the fully symmetric Fig. 8 relation must produce at least one symmetric hit"
    );
}
