//! Oracle tests for the engine's fault-tolerance layer: a seeded
//! [`FaultPlan`] must fire completely and deterministically, targeted jobs
//! must come back with structured non-`solved` outcomes and recovered
//! solutions, untargeted jobs must be byte-identical to a no-fault run at
//! every worker count in both narrow and wide mode with reuse on or off,
//! and a faulted job must never leave an entry in the solved-subrelation
//! cache for a later duplicate to be served from.

use std::sync::Arc;

use proptest::prelude::*;

use brel_suite::benchdata::random_well_defined_relation;
use brel_suite::engine::{
    Engine, FaultInjection, FaultKind, FaultPlan, JobOutcome, JobSpec, RelationSpec,
    SearchStrategy, WideOptions,
};

/// Four distinct random portfolio jobs seeded from one u64 — enough names
/// for a seeded plan to place all three fault kinds and still leave at
/// least one job untouched.
fn seeded_batch(seed: u64) -> Vec<JobSpec> {
    (0..4u64)
        .map(|i| {
            let (_space, relation) = random_well_defined_relation(3, 2, 0.3, seed.wrapping_add(i));
            JobSpec::portfolio(
                format!("rand{i}"),
                RelationSpec::from_relation(&relation).unwrap(),
            )
        })
        .collect()
}

/// Checks one chaos batch against its no-fault reference: every injection
/// fired, targets degraded-but-recovered, clean jobs byte-identical.
fn assert_isolated(
    chaos: &brel_suite::engine::BatchReport,
    clean: &brel_suite::engine::BatchReport,
    targets: &[&str],
) -> Result<(), TestCaseError> {
    for (c, n) in chaos.jobs.iter().zip(clean.jobs.iter()) {
        if targets.contains(&c.name.as_str()) {
            prop_assert!(
                c.outcome.is_some() && c.outcome != Some(JobOutcome::Solved),
                "targeted job {} reported outcome {:?}",
                c.name,
                c.outcome
            );
            // The surviving portfolio attempts (or the degradation ladder)
            // still produced a solution — verified inside the engine.
            prop_assert!(
                c.winner.is_some(),
                "targeted job {} lost its solution",
                c.name
            );
        } else {
            prop_assert_eq!(
                c.to_json(false).render(),
                n.to_json(false).render(),
                "fault leaked onto untargeted job {}",
                c.name
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The isolation oracle, narrow mode: under a seeded fault plan the
    /// timing-free batch output is byte-identical at 1, 2 and 8 workers
    /// with the warm pool on or off, every injection fires, and the jobs
    /// the plan does not target are byte-identical to a no-fault run.
    #[test]
    fn chaos_batches_are_isolated_and_worker_count_invariant(seed in any::<u64>()) {
        let jobs = seeded_batch(seed);
        let names: Vec<&str> = jobs.iter().map(|j| j.name.as_str()).collect();
        let clean = Engine::with_workers(1).solve_batch(&jobs);
        let template = FaultPlan::seeded(seed, &names);
        let targets = template.targets();
        prop_assert_eq!(template.injections().len(), 3);
        let mut reference: Option<(String, String)> = None;
        for workers in [1usize, 2, 8] {
            for reuse in [true, false] {
                let plan = Arc::new(FaultPlan::seeded(seed, &names));
                let chaos = Engine::with_workers(workers)
                    .with_reuse(reuse)
                    .with_fault_plan(plan.clone())
                    .solve_batch(&jobs);
                prop_assert_eq!(plan.num_fired(), plan.injections().len(),
                    "{} of {} injections fired", plan.num_fired(), plan.injections().len());
                let output = (chaos.to_json(false), chaos.to_csv(false));
                match &reference {
                    Some(r) => prop_assert_eq!(&output, r,
                        "chaos drift at {} workers, reuse {}", workers, reuse),
                    None => reference = Some(output),
                }
                assert_isolated(&chaos, &clean, &targets)?;
            }
        }
    }

    /// The isolation oracle, wide mode: the same contracts hold when the
    /// pool expands each BREL frontier in parallel — a faulted round
    /// degrades the one job instead of hanging the coordinator barrier.
    #[test]
    fn wide_chaos_batches_are_isolated_and_worker_count_invariant(seed in any::<u64>()) {
        let jobs: Vec<JobSpec> = seeded_batch(seed)
            .into_iter()
            .take(3)
            .map(|j| j.with_strategy(SearchStrategy::BestFirst))
            .collect();
        let names: Vec<&str> = jobs.iter().map(|j| j.name.as_str()).collect();
        let wide = WideOptions { lookahead: 4, ..WideOptions::default() };
        let clean = Engine::with_workers(1).with_wide(wide).solve_batch(&jobs);
        let targets_owned = FaultPlan::seeded(seed, &names);
        let targets = targets_owned.targets();
        let mut reference: Option<String> = None;
        for workers in [1usize, 2, 8] {
            let plan = Arc::new(FaultPlan::seeded(seed, &names));
            let chaos = Engine::with_workers(workers)
                .with_wide(wide)
                .with_fault_plan(plan.clone())
                .solve_batch(&jobs);
            prop_assert_eq!(plan.num_fired(), plan.injections().len());
            let json = chaos.to_json(false);
            match &reference {
                Some(r) => prop_assert_eq!(&json, r, "wide chaos drift at {} workers", workers),
                None => reference = Some(json),
            }
            assert_isolated(&chaos, &clean, &targets)?;
        }
    }
}

/// Pinned regression: a quota-aborted job never seeds the
/// solved-subrelation cache, so a duplicate of the same relation later in
/// the batch is solved fresh — and byte-identically to a batch where the
/// first copy never faulted.
#[test]
fn quota_aborted_jobs_leave_no_stale_cache_entries() {
    let (_space, relation) = random_well_defined_relation(3, 2, 0.3, 7);
    let spec = RelationSpec::from_relation(&relation).unwrap();
    let jobs = vec![
        JobSpec::portfolio("victim", spec.clone()),
        JobSpec::portfolio("victim_again", spec),
    ];
    let clean = Engine::with_workers(1).solve_batch(&jobs);
    // In the clean batch the duplicate is served wholesale from the cache.
    assert_eq!(clean.reuse.subrel_cache_hits, 1);

    let plan = Arc::new(FaultPlan::new(vec![FaultInjection::new(
        "victim",
        1,
        FaultKind::QuotaTrip,
    )]));
    let chaos = Engine::with_workers(1)
        .with_fault_plan(plan.clone())
        .solve_batch(&jobs);
    assert_eq!(plan.num_fired(), 1);
    assert_ne!(chaos.jobs[0].outcome, Some(JobOutcome::Solved));
    // The faulted job cached nothing: the duplicate cannot hit, and every
    // one of its attempts is a genuine recomputation.
    assert_eq!(chaos.reuse.subrel_cache_hits, 0);
    assert!(chaos.jobs[1]
        .attempts
        .iter()
        .all(|a| !a.reuse.subrel_cache_hit));
    // And the recomputation matches the never-faulted run byte for byte —
    // no poisoned state leaked from the quota abort into the duplicate.
    assert_eq!(
        chaos.jobs[1].to_json(false).render(),
        clean.jobs[1].to_json(false).render()
    );
    assert_eq!(chaos.jobs[1].outcome, Some(JobOutcome::Solved));
}
