//! Smoke test that the `brel_suite` umbrella re-exports resolve for every
//! member crate, so wiring regressions surface here instead of in
//! downstream examples.

#[test]
fn bdd_reexport_resolves() {
    let mgr = brel_suite::bdd::BddSession::new(2);
    let f = mgr.var(0).and(&mgr.var(1));
    assert!(f.eval(&[true, true]));
}

#[test]
fn sop_reexport_resolves() {
    let cube = brel_suite::sop::Cube::parse("1-0").unwrap();
    assert_eq!(cube.num_literals(), 2);
}

#[test]
fn relation_reexport_resolves() {
    let space = brel_suite::relation::RelationSpace::new(1, 1);
    let rel = brel_suite::relation::BooleanRelation::full(&space);
    assert!(rel.is_well_defined());
}

#[test]
fn core_reexport_resolves() {
    let config = brel_suite::brel::BrelConfig::default();
    let _solver = brel_suite::brel::BrelSolver::new(config);
}

#[test]
fn network_reexport_resolves() {
    let mut net = brel_suite::network::Network::new("smoke");
    let a = net.add_input("a").unwrap();
    net.add_output(a);
    assert_eq!(net.primary_inputs().len(), 1);
}

#[test]
fn gyocro_reexport_resolves() {
    let _solver = brel_suite::gyocro::GyocroSolver::default();
}

#[test]
fn engine_reexport_resolves() {
    let engine = brel_suite::engine::Engine::with_workers(1);
    let report = engine.solve_batch(&[]);
    assert_eq!(report.num_solved(), 0);
}

#[test]
fn benchdata_reexport_resolves() {
    let (_space, rel) = brel_suite::benchdata::random_well_defined_relation(2, 1, 0.0, 1);
    assert!(rel.is_well_defined());
}
