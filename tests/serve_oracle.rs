//! Oracle tests for the serving layer: a mid-stream cancel must come back
//! as a degraded final carrying the best streamed incumbent, a client
//! disconnect must free its worker promptly (counted as a cancellation),
//! and a drain shutdown under chaos must emit a final frame for every
//! admitted job and report every quarantined session in the final stats.

use std::net::SocketAddr;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use brel_suite::benchdata::random_well_defined_relation;
use brel_suite::engine::{BackendKind, FaultPlan, JobBudget, JobSpec, RelationSpec};
use brel_suite::serve::{Client, DrainReport, Frame, ServeConfig, Server, Submit};

/// Spawns a server and hands back its address plus the drain handle; the
/// handle resolving proves every server thread was joined.
fn start(config: ServeConfig) -> (SocketAddr, JoinHandle<DrainReport>) {
    let server = Server::start(config).expect("bind");
    let addr = server.addr();
    (
        addr,
        std::thread::spawn(move || server.run_until_shutdown()),
    )
}

/// An unbounded single-backend BREL job on a relation large enough that
/// exploration keeps running until it is cancelled.
fn long_job(seed: u64) -> JobSpec {
    let (_space, relation) = random_well_defined_relation(7, 4, 0.4, seed);
    let mut job = JobSpec::single(
        format!("long{seed}"),
        RelationSpec::from_relation(&relation).unwrap(),
        BackendKind::Brel,
    );
    job.budget = JobBudget {
        max_explored: None,
        fifo_capacity: None,
        ..JobBudget::default()
    };
    job
}

/// A small default-budget portfolio job that finishes quickly.
fn quick_job(name: &str, seed: u64) -> JobSpec {
    let (_space, relation) = random_well_defined_relation(3, 2, 0.3, seed);
    JobSpec::portfolio(name, RelationSpec::from_relation(&relation).unwrap())
}

#[test]
fn cancel_after_first_incumbent_degrades_to_best_incumbent() {
    let (addr, handle) = start(ServeConfig::default());
    let mut client = Client::connect(addr).unwrap();

    let outcome = client
        .solve(&long_job(11), "oracle", None, None, true)
        .unwrap();
    assert!(
        !outcome.incumbents.is_empty(),
        "anytime search must stream at least the quick seed"
    );
    let report = outcome
        .final_report
        .expect("cancelled job still gets a final");
    assert_eq!(report.outcome, "degraded", "cancel truncates, not kills");
    assert!(report.degraded);
    assert!(
        report.fault.as_deref().unwrap_or("").contains("cancelled"),
        "fault should record the cancellation, got {:?}",
        report.fault
    );
    let first_cost = outcome.incumbents[0].0;
    assert!(
        report.cost.expect("degraded final carries the incumbent") <= first_cost,
        "final cost must be no worse than the first streamed incumbent"
    );

    let drain = {
        client.shutdown_and_wait().unwrap();
        handle.join().unwrap()
    };
    assert_eq!(drain.stats.admitted, drain.stats.completed);
}

#[test]
fn client_disconnect_frees_the_worker() {
    let config = ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    };
    let (addr, handle) = start(config);

    // Client A occupies the only worker with an unbounded job, confirms
    // the solve is live (first incumbent), then vanishes mid-stream.
    {
        let mut hog = Client::connect(addr).unwrap();
        hog.send(&Frame::Submit(Submit {
            client: "hog".to_string(),
            job: long_job(23),
            deadline_ms: None,
            max_cost: None,
        }))
        .unwrap();
        assert!(matches!(hog.recv().unwrap(), Frame::Admitted { .. }));
        assert!(matches!(hog.recv().unwrap(), Frame::Incumbent { .. }));
    } // dropped: the TCP connection closes while the job is running

    // A polite client must still get service: the disconnect cancels the
    // hogged job at the next scheduler tick and frees the worker.
    let mut polite = Client::connect(addr).unwrap();
    let outcome = polite
        .solve(
            &quick_job("after-disconnect", 5),
            "polite",
            None,
            None,
            false,
        )
        .unwrap();
    let report = outcome.final_report.expect("final after worker freed");
    assert_eq!(report.outcome, "solved");

    let stats = polite.stats().unwrap();
    assert!(
        stats.cancelled >= 1,
        "the disconnect must be accounted as a cancellation, got {stats:?}"
    );

    polite.shutdown_and_wait().unwrap();
    let drain = handle.join().unwrap();
    assert_eq!(drain.stats.admitted, drain.stats.completed);
    assert_eq!(drain.stats.inflight, 0);
    assert_eq!(drain.stats.queue_depth, 0);
}

#[test]
fn drain_under_chaos_reports_every_quarantine() {
    let jobs: Vec<JobSpec> = (0..4u64)
        .map(|i| quick_job(&format!("rand{i}"), 40 + i))
        .collect();
    let names: Vec<&str> = jobs.iter().map(|j| j.name.as_str()).collect();
    let plan = Arc::new(FaultPlan::seeded(9, &names));
    let targets: Vec<String> = plan.targets().iter().map(|t| t.to_string()).collect();

    let config = ServeConfig {
        workers: 2,
        fault_plan: Some(Arc::clone(&plan)),
        ..ServeConfig::default()
    };
    let (addr, handle) = start(config);

    let mut client = Client::connect(addr).unwrap();
    let mut finals = Vec::new();
    for job in &jobs {
        let outcome = client.solve(job, "chaos", None, None, false).unwrap();
        assert!(outcome.rejected.is_none(), "chaos corpus must be admitted");
        finals.push(outcome.final_report.expect("every admitted job finishes"));
    }

    // Faults stay contained: targeted jobs report structured non-solved
    // outcomes but still carry a recovered solution; clean jobs solve.
    assert_eq!(finals.len(), jobs.len());
    for report in &finals {
        if targets.contains(&report.name) {
            assert_ne!(
                report.outcome, "solved",
                "{} should be faulted",
                report.name
            );
            assert!(
                report.cost.is_some(),
                "faulted job {} lost its recovered solution",
                report.name
            );
        } else {
            assert_eq!(
                report.outcome, "solved",
                "fault leaked onto {}",
                report.name
            );
        }
    }
    assert_eq!(plan.num_fired(), 3, "the seeded plan must fire completely");

    // The final stats frame of the drain and the server's own drain
    // report must agree — no quarantined session goes unreported.
    let stats_frame = client.shutdown_and_wait().unwrap();
    let drain = handle.join().unwrap();
    assert!(stats_frame.draining);
    assert!(
        drain.stats.quarantines >= 1,
        "the injected panic must quarantine a session, got {:?}",
        drain.stats
    );
    assert_eq!(stats_frame.quarantines, drain.stats.quarantines);
    assert_eq!(drain.stats.admitted, drain.stats.completed);
    assert_eq!(drain.stats.admitted, finals.len() as u64);
}

/// A drained server must still answer a cancel-heavy workload within a
/// bounded time — the oracle for "queued jobs degrade instead of running
/// to completion during a drain".
#[test]
fn drain_degrades_queued_jobs_quickly() {
    let config = ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    };
    let (addr, handle) = start(config);

    // One unbounded job occupies the worker; three more queue behind it.
    let mut client = Client::connect(addr).unwrap();
    let mut tickets = Vec::new();
    for i in 0..4u64 {
        client
            .send(&Frame::Submit(Submit {
                client: "drainer".to_string(),
                job: long_job(60 + i),
                deadline_ms: None,
                max_cost: None,
            }))
            .unwrap();
        loop {
            match client.recv().unwrap() {
                Frame::Admitted { job, .. } => {
                    tickets.push(job);
                    break;
                }
                // The first job is already running and streaming.
                Frame::Incumbent { .. } => {}
                other => panic!("expected admission, got {other:?}"),
            }
        }
    }

    // Drain: every admitted job must come back (degraded is fine), and
    // the whole shutdown must complete far faster than any of the four
    // unbounded jobs could have run to completion.
    let started = std::time::Instant::now();
    client.send(&Frame::Shutdown).unwrap();
    let mut finals = 0;
    loop {
        match client.recv().unwrap() {
            Frame::Final(report) => {
                assert!(tickets.contains(&report.job));
                finals += 1;
            }
            Frame::Incumbent { .. } => {}
            Frame::Stats(stats) => {
                assert!(stats.draining);
                break;
            }
            other => panic!("unexpected frame during drain: {other:?}"),
        }
    }
    let drain = handle.join().unwrap();
    assert_eq!(finals, tickets.len());
    assert_eq!(drain.stats.admitted, drain.stats.completed);
    assert!(
        drain.stats.drained >= 3,
        "the queued jobs must finish during the drain, got {:?}",
        drain.stats
    );
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "drain must cancel queued work, not run it to completion"
    );
}

/// A wide-mode server must stream the shared incumbent: every cross-worker
/// bound improvement arrives as an `incumbent` frame, and because
/// improvements commit under the search lock, the streamed costs are
/// strictly decreasing and end exactly on the final report's cost.
#[test]
fn wide_server_streams_strictly_decreasing_incumbents() {
    use brel_suite::engine::WideOptions;

    let config = ServeConfig {
        workers: 1,
        wide: Some((4, WideOptions::default())),
        ..ServeConfig::default()
    };
    let (addr, handle) = start(config);
    let mut client = Client::connect(addr).unwrap();

    // A budgeted single-backend BREL job on a relation hard enough that
    // the quick seed is beaten several times before the budget closes
    // the search.
    let (_space, relation) = random_well_defined_relation(7, 4, 0.35, 1001);
    let mut job = JobSpec::single(
        "wide-stream",
        RelationSpec::from_relation(&relation).unwrap(),
        BackendKind::Brel,
    );
    job.budget = JobBudget {
        max_explored: Some(250),
        fifo_capacity: Some(8192),
        ..JobBudget::default()
    };

    let outcome = client.solve(&job, "oracle", None, None, false).unwrap();
    assert!(
        outcome.incumbents.len() >= 2,
        "the workers must improve on the quick seed at least once, got {:?}",
        outcome.incumbents
    );
    for pair in outcome.incumbents.windows(2) {
        assert!(
            pair[1].0 < pair[0].0,
            "incumbent stream must be strictly decreasing, got {:?}",
            outcome.incumbents
        );
    }
    let report = outcome.final_report.expect("budgeted job reaches a final");
    assert_eq!(report.outcome, "solved");
    assert_eq!(
        report.cost,
        Some(outcome.incumbents.last().unwrap().0),
        "the final cost must be the last streamed incumbent"
    );

    client.shutdown_and_wait().unwrap();
    let drain = handle.join().unwrap();
    assert_eq!(drain.stats.admitted, drain.stats.completed);
}
