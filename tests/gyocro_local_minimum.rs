//! Section 9.1: the expand–reduce–irredundant paradigm gets trapped in a
//! local minimum on the Fig. 10 relation; BREL escapes it.

use brel_benchdata::figures;
use brel_core::{BrelConfig, BrelSolver, CostFn, CostFunction};
use brel_gyocro::{ExpandMode, GyocroConfig, GyocroSolver};

#[test]
fn brel_escapes_the_local_minimum_gyocro_cannot() {
    let (space, r) = figures::fig10();
    let gyocro = GyocroSolver::default().solve(&r).unwrap();
    let brel = BrelSolver::new(BrelConfig::exact()).solve(&r).unwrap();

    assert!(r.is_compatible(&gyocro.function));
    assert!(r.is_compatible(&brel.function));

    // BREL finds the two single-literal outputs (x ⇔ b, y ⇔ a)…
    assert_eq!(brel.cost, 2);
    assert_eq!(brel.function.output(0), &space.input(1));
    assert_eq!(brel.function.output(1), &space.input(0));
    // …which is strictly better than what the local search reaches.
    let gyocro_cost = CostFn::SumBddSize.cost(&gyocro.function);
    assert!(brel.cost < gyocro_cost);
    // In two-level terms: the paper's best answer has 2 literals, while the
    // quick/local-search answer keeps the equivalence function (4 literals).
    assert!(gyocro.final_cost.1 >= 4);
    assert_eq!(brel.function.num_literals(), 2);
}

#[test]
fn herb_style_single_literal_expansion_is_also_trapped() {
    let (_space, r) = figures::fig10();
    let herb = GyocroSolver::new(GyocroConfig {
        expand_mode: ExpandMode::SingleLiteral,
        ..GyocroConfig::default()
    })
    .solve(&r)
    .unwrap();
    assert!(r.is_compatible(&herb.function));
    let brel = BrelSolver::new(BrelConfig::exact()).solve(&r).unwrap();
    assert!(brel.cost <= CostFn::SumBddSize.cost(&herb.function));
}
