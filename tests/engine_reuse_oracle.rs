//! Oracle tests for the engine's cross-job reuse layer: a warm pool (warm
//! per-worker sessions + the solved-subrelation cache) must be
//! observationally identical to cold-manager-per-job solving at every
//! worker count, and the cache must actually fire on row-permuted
//! duplicates of the same relation.

use proptest::prelude::*;

use brel_suite::bdd::{Bdd, BddManager, BddSession};
use brel_suite::benchdata::random_well_defined_relation;
use brel_suite::engine::{CostSpec, Engine, JobSpec, RelationSpec, SearchStrategy, WarmSession};
use brel_suite::relation::RelationRow;

// The tentpole's compile-time claim: the whole BDD handle layer crosses
// threads, so warm sessions can live inside pool workers.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<BddManager>();
    assert_send::<BddSession>();
    assert_send::<Bdd>();
    assert_send::<WarmSession>();
};

/// A small mixed batch seeded from one u64: three distinct random
/// relations plus a duplicate of the first (so warm runs exercise the
/// subrelation cache's hit path, not just its misses).
fn seeded_batch(seed: u64) -> Vec<JobSpec> {
    let costs = [
        CostSpec::SumBddSize,
        CostSpec::LiteralCount,
        CostSpec::CubeCount,
    ];
    let mut jobs: Vec<JobSpec> = (0..3u64)
        .map(|i| {
            let (_space, relation) = random_well_defined_relation(3, 2, 0.3, seed.wrapping_add(i));
            JobSpec::portfolio(
                format!("rand{i}"),
                RelationSpec::from_relation(&relation).unwrap(),
            )
            .with_cost(costs[i as usize])
        })
        .collect();
    let dup = JobSpec {
        name: "rand0_again".into(),
        ..jobs[0].clone()
    };
    jobs.push(dup);
    jobs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The reuse oracle: for the same batch, a warm engine (the default)
    /// and a cold engine (`with_reuse(false)`, the pre-redesign
    /// behaviour) emit byte-identical timing-free serializations at 1, 2
    /// and 8 workers — session resets and cache hits are pure speedups.
    #[test]
    fn warm_batches_match_cold_batches_at_every_worker_count(seed in any::<u64>()) {
        let jobs = seeded_batch(seed);
        let cold = Engine::with_workers(1).with_reuse(false).solve_batch(&jobs);
        prop_assert_eq!(cold.reuse.warm_reuses, 0);
        prop_assert_eq!(cold.reuse.subrel_cache_hits + cold.reuse.subrel_cache_misses, 0);
        let cold_json = cold.to_json(false);
        let cold_csv = cold.to_csv(false);
        for workers in [1usize, 2, 8] {
            let warm = Engine::with_workers(workers).solve_batch(&jobs);
            prop_assert_eq!(&warm.to_json(false), &cold_json, "warm vs cold JSON, {} workers", workers);
            prop_assert_eq!(&warm.to_csv(false), &cold_csv, "warm vs cold CSV, {} workers", workers);
        }
        // On one worker the schedule is fixed, so reuse is guaranteed: the
        // three later jobs reset the session warm, and the duplicate job is
        // served wholesale from the subrelation cache.
        let serial = Engine::with_workers(1).solve_batch(&jobs);
        prop_assert_eq!(serial.reuse.subrel_cache_hits, 1);
        prop_assert_eq!(serial.reuse.subrel_cache_misses, 3);
        prop_assert_eq!(serial.reuse.warm_reuses, 2);
        prop_assert_eq!(serial.reuse.cold_builds, 1);
    }

    /// Wide mode with persistent per-worker sessions agrees with the cold
    /// engine too (the subrelation cache does not apply in wide mode, but
    /// warm expansion sessions must still be invisible in the output).
    #[test]
    fn warm_wide_batches_match_cold_wide_batches(seed in any::<u64>()) {
        use brel_suite::engine::WideOptions;
        let jobs: Vec<JobSpec> = seeded_batch(seed)
            .into_iter()
            .take(2)
            .map(|j| j.with_strategy(SearchStrategy::BestFirst))
            .collect();
        let wide = WideOptions { lookahead: 4, ..WideOptions::default() };
        let cold = Engine::with_workers(2).with_wide(wide).with_reuse(false).solve_batch(&jobs);
        prop_assert_eq!(cold.reuse.warm_reuses, 0);
        for workers in [1usize, 4] {
            let warm = Engine::with_workers(workers).with_wide(wide).solve_batch(&jobs);
            prop_assert_eq!(&warm.to_json(false), &cold.to_json(false));
            prop_assert_eq!(&warm.to_csv(false), &cold.to_csv(false));
        }
    }
}

/// Pinned regression: two jobs whose authored rows differ by permutation
/// (and duplicated pairs) describe the same relation, so the second is
/// served from the solved-subrelation cache — with a report byte-identical
/// to recomputing it.
#[test]
fn row_permuted_duplicate_jobs_hit_the_subrel_cache() {
    // Fig. 1a of the paper, authored twice: once top-down, once bottom-up
    // with a duplicated pair and split image lists.
    let rows: Vec<RelationRow> = vec![
        (vec![false, false], vec![vec![false, false]]),
        (vec![false, true], vec![vec![false, false]]),
        (
            vec![true, false],
            vec![vec![false, false], vec![true, true]],
        ),
        (vec![true, true], vec![vec![true, false], vec![true, true]]),
    ];
    let mut shuffled: Vec<RelationRow> = rows.iter().rev().cloned().collect();
    shuffled.push((vec![true, false], vec![vec![true, true]])); // duplicate pair
    let a = RelationSpec::new(2, 2, rows).unwrap();
    let b = RelationSpec::new(2, 2, shuffled).unwrap();
    // Canonicalization makes the specs (and so their fingerprints) equal.
    assert_eq!(a, b);
    assert_eq!(a.fingerprint(), b.fingerprint());

    let jobs = vec![
        JobSpec::portfolio("fig1", a),
        JobSpec::portfolio("fig1_shuffled", b),
    ];
    // One worker makes the schedule (and so the hit pattern) deterministic.
    let batch = Engine::with_workers(1).solve_batch(&jobs);
    assert_eq!(batch.num_solved(), 2);
    assert_eq!(batch.reuse.subrel_cache_hits, 1);
    assert_eq!(batch.reuse.subrel_cache_misses, 1);
    let (first, second) = (&batch.jobs[0], &batch.jobs[1]);
    assert!(second.attempts.iter().all(|a| a.reuse.subrel_cache_hit));
    assert!(first.attempts.iter().all(|a| !a.reuse.subrel_cache_hit));
    // The cached report matches the computed one field for field (names,
    // ids and provenance aside).
    assert_eq!(first.attempts.len(), second.attempts.len());
    assert_eq!(first.winner, second.winner);
    for (x, y) in first.attempts.iter().zip(&second.attempts) {
        let mut y = y.clone();
        y.reuse = x.reuse;
        y.wall_micros = x.wall_micros;
        assert_eq!(x, &y);
    }
}

/// Differing solver configuration must key the cache apart even when the
/// relation is identical: a different cost, budget, strategy or backend
/// list never serves a stale report.
#[test]
fn different_configurations_never_share_cache_entries() {
    let (_space, relation) = random_well_defined_relation(3, 2, 0.3, 42);
    let spec = RelationSpec::from_relation(&relation).unwrap();
    let jobs = vec![
        JobSpec::portfolio("sum", spec.clone()),
        JobSpec::portfolio("lits", spec.clone()).with_cost(CostSpec::LiteralCount),
        JobSpec::portfolio("dfs", spec).with_strategy(SearchStrategy::Dfs),
    ];
    let batch = Engine::with_workers(1).solve_batch(&jobs);
    assert_eq!(batch.reuse.subrel_cache_hits, 0);
    assert_eq!(batch.reuse.subrel_cache_misses, 3);
    // And the differently-configured runs are genuinely independent: the
    // literal-count job reports literal costs, not BDD sizes.
    let lits = &batch.jobs[1];
    let w = lits.winning().unwrap();
    assert_eq!(w.cost, w.literals as u64);
}
