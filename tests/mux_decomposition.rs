//! The Section 10 application: multiway decomposition onto mux latches,
//! spanning the relation, solver and network crates.

use brel_benchdata::iscas_like;
use brel_core::BrelConfig;
use brel_network::decompose::{
    decompose_function, decompose_mux_latches, decomposition_relation, mux_gate,
    verify_decomposition,
};
use brel_network::mapper::{map, MappingOptions};
use brel_network::speedup::collapse;
use brel_network::Library;
use brel_relation::RelationSpace;

#[test]
fn fig11_multiplexor_decomposition_matches_the_paper() {
    // f(x1,x2,x3) = x1·(x2 + x3) + x̄1·x̄2·x̄3, Q(A,B,C) = A·C̄ + B·C.
    let space = RelationSpace::with_names(&["x1", "x2", "x3"], &["A", "B", "C"]);
    let x1 = space.input(0);
    let x2 = space.input(1);
    let x3 = space.input(2);
    let f = x1
        .and(&x2.or(&x3))
        .or(&x1.complement().and(&x2.complement()).and(&x3.complement()));

    let relation = decomposition_relation(&space, &f, mux_gate);
    assert!(relation.is_well_defined());
    // Where f = 0 the mux output must be 0: e.g. vertex 010 (x1=0,x2=1,x3=0).
    // The permissible mux inputs there are exactly {A·C̄ + B·C = 0}.
    let image = relation.image(&[false, true, false]).unwrap();
    assert!(image.iter().all(|y| !((y[0] && !y[2]) || (y[1] && y[2]))));
    assert_eq!(
        image.len(),
        4,
        "exactly {{000, 010, 001, 101}} keep the mux at 0"
    );

    // One of the paper's decompositions (Fig. 11) picks C = x1, A = x̄2·x̄3,
    // B = x2 + x3; check that it is admitted by the relation.
    let manual = brel_relation::MultiOutputFunction::new(
        &space,
        vec![
            x2.complement().and(&x3.complement()),
            x2.or(&x3),
            x1.clone(),
        ],
    )
    .unwrap();
    assert!(relation.is_compatible(&manual));

    // And BREL finds some valid decomposition automatically.
    let solved =
        decompose_function(&space, &f, mux_gate, BrelConfig::decomposition(false)).unwrap();
    assert!(verify_decomposition(&space, &f, &solved));
}

#[test]
fn sequential_flow_produces_mappable_networks_for_both_costs() {
    let instance = iscas_like::instance("s27").unwrap();
    let net = iscas_like::generate(&instance);
    let library = Library::lib2_like();
    let options = MappingOptions::default();
    let baseline = map(&collapse(&net).unwrap(), &library, &options).unwrap();
    assert!(baseline.area > 0.0);

    for delay_oriented in [false, true] {
        let decomposed = decompose_mux_latches(&net, delay_oriented, 30).unwrap();
        assert_eq!(decomposed.latches.len(), instance.num_flip_flops);
        let mapped = map(&decomposed.network, &library, &options).unwrap();
        assert!(mapped.area > 0.0);
        assert!(mapped.delay > 0.0);
        // The decomposed network exposes three mux-input nodes per flip-flop.
        assert_eq!(
            decomposed.network.num_nodes(),
            3 * instance.num_flip_flops + instance.num_outputs
        );
    }
}

#[test]
fn delay_oriented_cost_balances_next_state_functions() {
    let instance = iscas_like::instance("s27").unwrap();
    let net = iscas_like::generate(&instance);
    let area = decompose_mux_latches(&net, false, 30).unwrap();
    let delay = decompose_mux_latches(&net, true, 30).unwrap();
    // For every latch, the delay-oriented run never has a larger
    // sum-of-squares than its own area-oriented counterpart's *sum of
    // squares plus slack*: at minimum, both must be valid and reported.
    for (a, d) in area.latches.iter().zip(delay.latches.iter()) {
        assert_eq!(a.latch_index, d.latch_index);
        assert!(a.cost > 0 || a.decomposed_sizes == (0, 0, 0));
        assert!(d.cost > 0 || d.decomposed_sizes == (0, 0, 0));
    }
}
