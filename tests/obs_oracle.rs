//! Oracle tests for the `brel-obs` observability layer.
//!
//! Three contracts are pinned here:
//!
//! 1. the Chrome trace export is well-formed JSON whose per-track
//!    timestamps never decrease (so Perfetto renders it without repair);
//! 2. span guards rebalance the per-thread nesting depth even when the
//!    instrumented code panics (RAII across unwinding);
//! 3. tracing is write-only: a fully traced batch produces byte-identical
//!    timing-free output to an untraced one, at 1/2/8 workers, in narrow
//!    and wide mode, warm and cold.
//!
//! The collector is process-global, so the tests serialize on a mutex
//! (`cargo test` runs the functions of one binary concurrently).

use std::sync::{Arc, Mutex, PoisonError};

use brel_suite::benchdata::random_relation::random_well_defined_relation;
use brel_suite::benchdata::table2;
use brel_suite::engine::{Engine, JobSpec, RelationSpec, WideOptions};
use brel_suite::obs::{self, Category, RecordingCollector};

/// Serializes the tests of this binary: each installs/uninstalls the
/// process-global collector. `into_inner` because the panic test poisons
/// the lock by design.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn small_batch() -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for instance in table2::instances().into_iter().take(2) {
        let (_space, relation) = table2::generate(&instance);
        jobs.push(JobSpec::portfolio(
            instance.name,
            RelationSpec::from_relation(&relation).unwrap(),
        ));
    }
    let (_space, relation) = random_well_defined_relation(4, 3, 0.25, 11);
    jobs.push(JobSpec::portfolio(
        "rand11",
        RelationSpec::from_relation(&relation).unwrap(),
    ));
    jobs
}

// ---------------------------------------------------------------------------
// A minimal JSON value + recursive-descent parser, enough to round-trip
// the trace exporter's output (objects, arrays, strings, unsigned ints).
// The point of hand-rolling it: the oracle must not share code with the
// exporter it checks.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum J {
    Obj(Vec<(String, J)>),
    Arr(Vec<J>),
    Str(String),
    Num(u64),
}

impl J {
    fn get(&self, key: &str) -> Option<&J> {
        match self {
            J::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            J::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<u64> {
        match self {
            J::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> u8 {
        self.bytes[self.pos]
    }

    fn bump(&mut self) -> u8 {
        let b = self.bytes[self.pos];
        self.pos += 1;
        b
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.peek().is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) {
        self.skip_ws();
        assert_eq!(
            self.bump(),
            b,
            "expected {:?} at byte {}",
            b as char,
            self.pos
        );
    }

    fn value(&mut self) -> J {
        self.skip_ws();
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => J::Str(self.string()),
            b'0'..=b'9' => self.number(),
            other => panic!("unexpected byte {:?} at {}", other as char, self.pos),
        }
    }

    fn object(&mut self) -> J {
        self.expect(b'{');
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == b'}' {
            self.bump();
            return J::Obj(fields);
        }
        loop {
            self.skip_ws();
            let key = self.string();
            self.expect(b':');
            fields.push((key, self.value()));
            self.skip_ws();
            match self.bump() {
                b',' => continue,
                b'}' => return J::Obj(fields),
                other => panic!("bad object separator {:?}", other as char),
            }
        }
    }

    fn array(&mut self) -> J {
        self.expect(b'[');
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == b']' {
            self.bump();
            return J::Arr(items);
        }
        loop {
            items.push(self.value());
            self.skip_ws();
            match self.bump() {
                b',' => continue,
                b']' => return J::Arr(items),
                other => panic!("bad array separator {:?}", other as char),
            }
        }
    }

    fn string(&mut self) -> String {
        assert_eq!(self.bump(), b'"', "expected string at byte {}", self.pos);
        let mut out = String::new();
        loop {
            match self.bump() {
                b'"' => return out,
                b'\\' => match self.bump() {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex: String = (0..4).map(|_| self.bump() as char).collect();
                        let code = u32::from_str_radix(&hex, 16).expect("hex escape");
                        out.push(char::from_u32(code).expect("scalar value"));
                    }
                    other => panic!("unsupported escape {:?}", other as char),
                },
                byte => out.push(byte as char),
            }
        }
    }

    fn number(&mut self) -> J {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.peek().is_ascii_digit() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        J::Num(text.parse().expect("u64 number"))
    }
}

fn parse_json(text: &str) -> J {
    let mut parser = Parser::new(text);
    let value = parser.value();
    parser.skip_ws();
    assert_eq!(parser.pos, parser.bytes.len(), "trailing bytes after JSON");
    value
}

#[test]
fn chrome_trace_is_well_formed_with_monotone_tracks() {
    let _lock = OBS_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let collector = Arc::new(RecordingCollector::new());
    obs::install(collector.clone());
    let report = Engine::with_workers(2)
        .with_wide(WideOptions {
            lookahead: 4,
            ..WideOptions::default()
        })
        .solve_batch(&small_batch());
    obs::uninstall();
    assert_eq!(report.num_solved(), 3);

    let trace = collector.chrome_trace();
    let root = parse_json(&trace);
    let J::Arr(events) = root.get("traceEvents").expect("traceEvents").clone() else {
        panic!("traceEvents is not an array");
    };
    assert!(!events.is_empty(), "the traced batch recorded no events");

    // Track names arrive as thread_name metadata; the wide workers must
    // be pinned to their own stable tracks.
    let mut names = Vec::new();
    let mut last_ts: std::collections::BTreeMap<u64, u64> = Default::default();
    for event in &events {
        let ph = event.get("ph").and_then(J::as_str).expect("ph");
        let tid = event.get("tid").and_then(J::as_num).expect("tid");
        assert_eq!(event.get("pid").and_then(J::as_num), Some(1));
        match ph {
            "M" => {
                assert_eq!(event.get("name").and_then(J::as_str), Some("thread_name"));
                let args = event.get("args").expect("metadata args");
                names.push(args.get("name").and_then(J::as_str).unwrap().to_string());
            }
            "X" => {
                let ts = event.get("ts").and_then(J::as_num).expect("ts");
                event.get("dur").and_then(J::as_num).expect("dur");
                event.get("cat").and_then(J::as_str).expect("cat");
                event.get("name").and_then(J::as_str).expect("name");
                // Per-track timestamps never decrease in file order, so
                // viewers need no repair pass.
                let prev = last_ts.insert(tid, ts).unwrap_or(0);
                assert!(ts >= prev, "track {tid}: ts {ts} after {prev}");
            }
            "i" => {
                event.get("ts").and_then(J::as_num).expect("ts");
                assert_eq!(event.get("s").and_then(J::as_str), Some("t"));
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    // Worker 0 drives inline on the coordinator's thread; every other
    // wide worker gets its own stable track.
    assert!(
        names.iter().any(|n| n == "wide-worker-1"),
        "tracks: {names:?}"
    );

    // The aggregate view of the same recording attributes the wide solve
    // to its seed/parallel phases (the >= 90% acceptance criterion). The
    // ratio is computed on the coordinator's own track, where the seed
    // and the parallel section nest directly under `wide_solve` —
    // concurrent workers' drive time lives on other tracks.
    let phase = collector.phase_report();
    let coordinator = phase.track_with("wide_solve").expect("coordinator track");
    let wide_solve = coordinator.total_us("wide_solve");
    let attributed = coordinator.total_us("seed") + coordinator.total_us("parallel");
    assert!(wide_solve > 0);
    assert!(
        attributed * 100 >= wide_solve * 90,
        "only {attributed} of {wide_solve} us attributed"
    );
    // The barrier-synchronous rounds are gone for good.
    assert_eq!(phase.total_us("barrier_wait"), 0);
    assert_eq!(phase.total_us("round"), 0);
}

#[test]
fn span_guards_rebalance_depth_across_panics() {
    let _lock = OBS_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let collector = Arc::new(RecordingCollector::new());
    obs::install(collector.clone());
    assert_eq!(obs::current_depth(), 0);

    let unwound = std::panic::catch_unwind(|| {
        let _outer = obs::span(Category::Engine, "outer");
        let _inner = obs::span(Category::Search, "inner");
        assert_eq!(obs::current_depth(), 2);
        panic!("instrumented code failed");
    });
    assert!(unwound.is_err());

    // Both guards unwound: the depth is rebalanced and both spans were
    // still reported to the collector.
    assert_eq!(obs::current_depth(), 0);
    obs::uninstall();
    let spans = collector.spans();
    assert!(spans.iter().any(|s| s.name == "outer" && s.depth == 0));
    assert!(spans.iter().any(|s| s.name == "inner" && s.depth == 1));
}

#[test]
fn tracing_leaves_batch_output_byte_identical() {
    let _lock = OBS_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    obs::uninstall();
    let jobs = small_batch();
    let solve = |workers: usize, wide: bool, warm: bool| {
        let mut engine = Engine::with_workers(workers).with_reuse(warm);
        if wide {
            engine = engine.with_wide(WideOptions {
                lookahead: 4,
                ..WideOptions::default()
            });
        }
        let report = engine.solve_batch(&jobs);
        (report.to_json(false), report.to_csv(false))
    };
    for wide in [false, true] {
        for warm in [true, false] {
            for workers in [1usize, 2, 8] {
                let baseline = solve(workers, wide, warm);
                let collector = Arc::new(RecordingCollector::new());
                obs::install(collector.clone());
                let traced = solve(workers, wide, warm);
                obs::uninstall();
                assert_eq!(
                    baseline, traced,
                    "tracing changed output: {workers} workers, wide={wide}, warm={warm}"
                );
                assert!(!collector.spans().is_empty());
            }
        }
    }
}
