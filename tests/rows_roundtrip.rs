//! Property tests of the row serialization boundary the batch engine rides
//! on: table-text parse → `to_rows` → `from_rows` is a fixed point, plus
//! the `table.rs` error paths for malformed bits and widths.

use proptest::prelude::*;

use brel_suite::benchdata::random_well_defined_relation;
use brel_suite::relation::{BooleanRelation, RelationError, RelationSpace};

/// Strategy: small dimensions, a seed, and an extra-pair probability.
fn relation_params() -> impl Strategy<Value = (usize, usize, u64, u64)> {
    (1usize..=4, 1usize..=3, any::<u64>(), 0u64..=60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Rendering a relation as table text, parsing it back, exporting rows
    /// and rehydrating from them reaches a fixed point in one step: every
    /// further round-trip is the identity, in the original space and in a
    /// fresh one.
    #[test]
    fn parse_to_rows_from_rows_is_a_fixed_point((ni, no, seed, prob) in relation_params()) {
        let (_space, original) = random_well_defined_relation(ni, no, prob as f64 / 100.0, seed);
        let text = original.to_table().unwrap();

        // Parse the text into a fresh space (a different BDD manager).
        let space = RelationSpace::new(ni, no);
        let parsed = BooleanRelation::from_table(&space, &text).unwrap();
        prop_assert_eq!(parsed.num_pairs(), original.num_pairs());

        // to_rows → from_rows is the identity on the parsed relation…
        let rows = parsed.to_rows().unwrap();
        let back = BooleanRelation::from_rows(&space, &rows).unwrap();
        prop_assert_eq!(&back, &parsed);
        // …and a fixed point: rows, table text and pair count are stable.
        prop_assert_eq!(back.to_rows().unwrap(), rows.clone());
        prop_assert_eq!(back.to_table().unwrap(), text);

        // The same rows rehydrated into yet another manager agree row-wise.
        let other = RelationSpace::new(ni, no);
        let rehydrated = BooleanRelation::from_rows(&other, &rows).unwrap();
        prop_assert_eq!(rehydrated.to_rows().unwrap(), rows);
    }

    /// Vertices with the wrong arity are rejected by the parser wherever
    /// they appear, and the error names the offending width.
    #[test]
    fn wrong_width_vertices_are_rejected((ni, no, seed, _prob) in relation_params()) {
        let space = RelationSpace::new(ni, no);
        // An input vertex one bit too long, output vertex one bit short.
        let long_input = "0".repeat(ni + 1);
        let good_output = "1".repeat(no);
        let text = format!("{long_input} : {{{good_output}}}");
        prop_assert!(matches!(
            BooleanRelation::from_table(&space, &text),
            Err(RelationError::Parse(_))
        ));
        if no > 1 {
            let good_input = "0".repeat(ni);
            let short_output = "1".repeat(no - 1);
            let text = format!("{good_input} : {{{short_output}}}");
            prop_assert!(BooleanRelation::from_table(&space, &text).is_err());
        }
        // from_rows enforces the same widths (seeded bit patterns).
        let bad_bit = seed & 1 == 1;
        let bad_row = (vec![bad_bit; ni + 1], vec![]);
        prop_assert!(matches!(
            BooleanRelation::from_rows(&space, &[bad_row]),
            Err(RelationError::DimensionMismatch { .. })
        ));
        let bad_out = (vec![bad_bit; ni], vec![vec![bad_bit; no + 1]]);
        prop_assert!(BooleanRelation::from_rows(&space, &[bad_out]).is_err());
    }
}

#[test]
fn malformed_table_text_error_paths() {
    let space = RelationSpace::new(2, 2);
    // Missing separator.
    assert!(matches!(
        BooleanRelation::from_table(&space, "00 {00}"),
        Err(RelationError::Parse(msg)) if msg.contains("missing `:`")
    ));
    // Invalid bit characters in input and output vertices.
    assert!(matches!(
        BooleanRelation::from_table(&space, "0z : {00}"),
        Err(RelationError::Parse(msg)) if msg.contains("invalid bit `z`")
    ));
    assert!(matches!(
        BooleanRelation::from_table(&space, "00 : {2x}"),
        Err(RelationError::Parse(msg)) if msg.contains("invalid bit `2`")
    ));
    // Width errors name the expected arity.
    assert!(matches!(
        BooleanRelation::from_table(&space, "000 : {00}"),
        Err(RelationError::Parse(msg)) if msg.contains("must have 2 bits")
    ));
    assert!(matches!(
        BooleanRelation::from_table(&space, "00 : {000}"),
        Err(RelationError::Parse(msg)) if msg.contains("must have 2 bits")
    ));
    // Comments and empty images still parse.
    let r = BooleanRelation::from_table(&space, "# header\n00 : {}\n11 : {01}").unwrap();
    assert!(!r.is_well_defined());
    assert_eq!(r.num_pairs(), 1);
}
