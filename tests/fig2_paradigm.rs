//! Reproduces the step-by-step walk-through of the recursive paradigm
//! (Fig. 2 and Fig. 3 of the paper) on the relation of Fig. 1a.

use brel_benchdata::figures;
use brel_core::{BrelConfig, BrelSolver, IsfMinimizer, TraceEvent};
use brel_relation::MultiOutputFunction;

#[test]
fn step_a_overapproximation_expands_vertex_10() {
    let (space, r) = figures::fig1();
    let misf_rel = r.to_misf().to_relation();
    // Property 5.2: R ⊆ MISF_R, strictly here because vertex 10 is expanded
    // from {00, 11} to the full output set.
    assert!(r.is_subset_of(&misf_rel).unwrap());
    assert_ne!(r, misf_rel);
    assert_eq!(misf_rel.image(&[true, false]).unwrap().len(), 4);
    // Vertex 11 keeps its don't-care-expressible image {10, 11}.
    assert_eq!(misf_rel.image(&[true, true]).unwrap().len(), 2);
    assert_eq!(space.num_outputs(), 2);
}

#[test]
fn step_b_and_c_minimization_may_conflict_only_at_vertex_10() {
    let (space, r) = figures::fig1();
    let misf = r.to_misf();
    let minimizer = IsfMinimizer::default();
    let outputs: Vec<_> = misf
        .outputs()
        .iter()
        .map(|isf| minimizer.minimize(isf))
        .collect();
    let candidate = MultiOutputFunction::new(&space, outputs).unwrap();
    // The candidate implements the MISF…
    assert!(misf.admits(&candidate));
    // …and any conflict with R can only involve the input vertex 10, the
    // only vertex whose output set is not expressible with don't cares.
    let conflicts = r.conflicting_inputs(&candidate);
    if !conflicts.is_zero() {
        let vertex = conflicts.pick_cube().unwrap().to_minterm(2, true);
        assert_eq!(vertex, vec![true, false]);
    }
}

#[test]
fn step_d_split_partitions_and_step_e_recursion_solves() {
    let (_space, r) = figures::fig1();
    // Split at the potentially conflicting vertex 10 on output y1.
    let (r_neg, r_pos) = r.split(&[true, false], 0).unwrap();
    assert!(r_neg.is_well_defined());
    assert!(r_pos.is_well_defined());
    assert_eq!(r_neg.union(&r_pos).unwrap(), r);
    // Each branch is an MISF (its flexibility is now cube-expressible at 10),
    // so solving each branch's MISF gives compatible functions directly.
    for branch in [r_neg, r_pos] {
        let solution = BrelSolver::new(BrelConfig::exact()).solve(&branch).unwrap();
        assert!(branch.is_compatible(&solution.function));
        assert!(r.is_compatible(&solution.function));
    }
}

#[test]
fn full_recursive_run_records_the_paradigm_events() {
    let (_space, r) = figures::fig1();
    let solution = BrelSolver::new(BrelConfig::exact().with_trace(true))
        .solve(&r)
        .unwrap();
    assert!(r.is_compatible(&solution.function));
    // The trace must contain at least one exploration event and one
    // improvement (the seeded quick solution).
    assert!(solution
        .trace
        .iter()
        .any(|e| matches!(e, TraceEvent::Explored { .. })));
    assert!(solution
        .trace
        .iter()
        .any(|e| matches!(e, TraceEvent::Improved { .. })));
}
