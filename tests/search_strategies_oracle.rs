//! Property-based oracle for the strategy-driven search core: every
//! [`SearchStrategy`] must return a relation-compatible solution no worse
//! than the quick solver's, and in exact mode the frontier discipline must
//! not change the optimum — best-first and FIFO agree cost-for-cost.

use proptest::prelude::*;

use brel_core::{
    BrelConfig, BrelSolver, CostFn, CostFunction, ExploreStatus, Explorer, QuickSolver,
    SearchStrategy,
};
use brel_suite::benchdata::random_well_defined_relation;

/// Strategy: a seed plus small dimensions for a random well-defined
/// relation (kept small enough that exact mode terminates quickly).
fn relation_params() -> impl Strategy<Value = (usize, usize, u64)> {
    (2usize..=3, 1usize..=2, any::<u64>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every strategy's solution is compatible and no worse than the quick
    /// seed, under the default (bounded) budget.
    #[test]
    fn every_strategy_is_compatible_and_no_worse_than_quick(
        (ni, no, seed) in relation_params()
    ) {
        let (_space, r) = random_well_defined_relation(ni, no, 0.3, seed);
        let quick = QuickSolver::new().solve(&r).unwrap();
        let quick_cost = CostFn::SumBddSize.cost(&quick);
        for strategy in SearchStrategy::all() {
            let solution = BrelSolver::new(BrelConfig::default().with_strategy(strategy))
                .solve(&r)
                .unwrap();
            prop_assert!(
                r.is_compatible(&solution.function),
                "{strategy} returned an incompatible function"
            );
            prop_assert!(
                solution.cost <= quick_cost,
                "{strategy} cost {} beats quick {}",
                solution.cost,
                quick_cost
            );
            prop_assert_eq!(solution.cost, CostFn::SumBddSize.cost(&solution.function));
            prop_assert!(solution.stats.frontier_peak >= 1);
        }
    }

    /// Exact mode is strategy-independent: best-first's dominance pruning
    /// and DFS's dives reach the same optimal cost FIFO proves.
    #[test]
    fn exact_mode_optimum_is_strategy_independent((ni, no, seed) in relation_params()) {
        let (_space, r) = random_well_defined_relation(ni, no, 0.3, seed);
        let fifo = BrelSolver::new(BrelConfig::exact())
            .solve(&r)
            .unwrap();
        prop_assert!(fifo.stats.complete);
        for strategy in [SearchStrategy::Dfs, SearchStrategy::BestFirst] {
            let other = BrelSolver::new(BrelConfig::exact().with_strategy(strategy))
                .solve(&r)
                .unwrap();
            prop_assert!(other.stats.complete);
            prop_assert_eq!(
                other.cost,
                fifo.cost,
                "{} exact optimum {} != fifo {}",
                strategy,
                other.cost,
                fifo.cost
            );
            prop_assert!(r.is_compatible(&other.function));
        }
    }

    /// The anytime explorer, paused and resumed one step at a time, lands
    /// exactly where the one-shot solver does — node for node.
    #[test]
    fn stepwise_exploration_matches_the_one_shot_solve((ni, no, seed) in relation_params()) {
        let (_space, r) = random_well_defined_relation(ni, no, 0.25, seed);
        let config = BrelConfig::default().with_strategy(SearchStrategy::BestFirst);
        let one_shot = BrelSolver::new(config.clone()).solve(&r).unwrap();
        let mut explorer = Explorer::new(config, &r).unwrap();
        let mut last = explorer.best_cost();
        while let ExploreStatus::Paused = explorer.run_budget(Some(1)).unwrap() {
            prop_assert!(explorer.best_cost() <= last, "incumbent regressed");
            last = explorer.best_cost();
        }
        let stepped = explorer.into_solution();
        prop_assert_eq!(stepped.cost, one_shot.cost);
        prop_assert_eq!(stepped.stats.explored, one_shot.stats.explored);
        prop_assert_eq!(stepped.stats.splits, one_shot.stats.splits);
        prop_assert_eq!(stepped.stats.frontier_peak, one_shot.stats.frontier_peak);
        prop_assert_eq!(
            stepped.function.outputs().to_vec(),
            one_shot.function.outputs().to_vec()
        );
    }

    /// The split-point fallback hardening: `select_split_point` always finds
    /// a Theorem-5.2 vertex/output pair for a conflicting candidate, so no
    /// strategy ever surfaces `RelationError::NoSplitPoint` on well-defined
    /// relations (the unreachability proof in `brel_core::search::expand`).
    #[test]
    fn no_split_point_error_is_unreachable_on_well_defined_relations(
        (ni, no, seed) in relation_params()
    ) {
        let (_space, r) = random_well_defined_relation(ni, no, 0.4, seed);
        for strategy in SearchStrategy::all() {
            let result = BrelSolver::new(BrelConfig::exact().with_strategy(strategy)).solve(&r);
            prop_assert!(result.is_ok(), "{strategy} errored: {:?}", result.err());
        }
    }
}

mod wide_invariance {
    use super::*;
    use brel_suite::engine::{
        BackendKind, Engine, JobSpec, RelationSpec, StaggerPlan, WideOptions,
    };

    /// One seeded batch run in wide mode at the given worker count.
    fn run_wide(jobs: &[JobSpec], workers: usize, options: WideOptions) -> (String, String) {
        let report = Engine::with_workers(workers)
            .with_wide(options)
            .solve_batch(jobs);
        (report.to_json(false), report.to_csv(false))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Steal-order invariance: seeded per-worker stagger delays
        /// scramble which thread claims (and steals) each subproblem, yet
        /// the committed sequence — and therefore the timing-free JSON and
        /// CSV reports — stays byte-identical across 1, 2, and 8 workers.
        #[test]
        fn stagger_scrambled_wide_runs_are_byte_identical_across_worker_counts(
            seed in any::<u64>(),
            stagger_seed in any::<u64>(),
            max_micros in 1u64..200,
        ) {
            let mut jobs = Vec::new();
            for j in 0..2u64 {
                let (_space, r) =
                    random_well_defined_relation(4, 2, 0.3, seed.wrapping_add(j));
                jobs.push(JobSpec::single(
                    format!("inv{j}"),
                    RelationSpec::from_relation(&r).unwrap(),
                    BackendKind::Brel,
                ));
            }
            let options = WideOptions {
                lookahead: 4,
                steal_threshold: 2,
                stagger: Some(StaggerPlan { seed: stagger_seed, max_micros }),
            };
            let baseline = run_wide(&jobs, 1, options);
            for workers in [2usize, 8] {
                let scrambled = run_wide(&jobs, workers, options);
                prop_assert_eq!(
                    &baseline.0,
                    &scrambled.0,
                    "JSON drifted at {} workers",
                    workers
                );
                prop_assert_eq!(
                    &baseline.1,
                    &scrambled.1,
                    "CSV drifted at {} workers",
                    workers
                );
            }
        }
    }
}
