//! Oracle tests for the rebuilt BDD kernel: every cached/optimized
//! operation is checked node-for-node against a naive reference on randomly
//! generated functions, and a cache-eviction stress test proves correctness
//! survives a deliberately tiny operation cache.
//!
//! The oracle is a plain truth table maintained *outside* the BDD package:
//! random expressions are built op by op, with each Boolean connective
//! applied both to the BDD and to the table, so a kernel bug cannot hide in
//! a shared code path. Canonicity turns semantic equality into node
//! identity: two constructions of the same function in one manager must
//! return the same `NodeId`.

//! The lifecycle oracles at the bottom of this file additionally pin the
//! node-lifecycle machinery: the solver must produce node-for-node
//! identical solutions under an aggressively collecting kernel, sifting
//! must preserve semantics and canonicity, and a sweep must evict every
//! cached result so no stale hit can resurrect a reclaimed `NodeId`.

use proptest::prelude::*;

use brel_suite::bdd::{Bdd, BddConfig, BddManager, BddSession, NodeId, Var};
use brel_suite::benchdata::random_relation::random_well_defined_relation_with;
use brel_suite::brel::{BrelConfig, BrelSolver};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A function built two ways: as a BDD node and as a truth table indexed by
/// assignments (variable `i` is bit `i` of the index).
#[derive(Clone)]
struct Checked {
    node: NodeId,
    table: Vec<bool>,
}

/// Builds `ops` random connectives over `num_vars` variables, keeping the
/// BDD and the truth table in lockstep.
fn random_checked(m: &mut BddManager, num_vars: usize, ops: usize, seed: u64) -> Checked {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows = 1usize << num_vars;
    let mut pool: Vec<Checked> = (0..num_vars)
        .map(|i| Checked {
            node: m.literal(Var(i as u32), true),
            table: (0..rows).map(|idx| idx & (1 << i) != 0).collect(),
        })
        .collect();
    for _ in 0..ops {
        let a = pool[rng.gen_range(0..pool.len() as u32) as usize].clone();
        let b = pool[rng.gen_range(0..pool.len() as u32) as usize].clone();
        let (node, table): (NodeId, Vec<bool>) = match rng.gen_range(0..4u32) {
            0 => (
                m.and(a.node, b.node),
                a.table
                    .iter()
                    .zip(&b.table)
                    .map(|(&x, &y)| x && y)
                    .collect(),
            ),
            1 => (
                m.or(a.node, b.node),
                a.table
                    .iter()
                    .zip(&b.table)
                    .map(|(&x, &y)| x || y)
                    .collect(),
            ),
            2 => (
                m.xor(a.node, b.node),
                a.table.iter().zip(&b.table).map(|(&x, &y)| x ^ y).collect(),
            ),
            _ => (m.not(a.node), a.table.iter().map(|&x| !x).collect()),
        };
        pool.push(Checked { node, table });
    }
    pool.pop().expect("pool is never empty")
}

/// The naive reference construction: a bottom-up Shannon expansion of a
/// truth table through `mk` only (no `ite`, no operation cache).
fn bdd_from_truth_table(m: &mut BddManager, var: u32, table: &[bool]) -> NodeId {
    if table.len() == 1 {
        return if table[0] { NodeId::ONE } else { NodeId::ZERO };
    }
    // Variable `var` is the LSB of the index: even rows are var=0.
    let lo_rows: Vec<bool> = table.iter().copied().step_by(2).collect();
    let hi_rows: Vec<bool> = table.iter().copied().skip(1).step_by(2).collect();
    let lo = bdd_from_truth_table(m, var + 1, &lo_rows);
    let hi = bdd_from_truth_table(m, var + 1, &hi_rows);
    m.mk(Var(var), lo, hi)
}

fn assignment(num_vars: usize, idx: usize) -> Vec<bool> {
    (0..num_vars).map(|i| idx & (1 << i) != 0).collect()
}

fn params() -> impl Strategy<Value = (usize, usize, u64)> {
    (3usize..=6, 4usize..=24, any::<u64>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `ite`-built functions equal the naive truth-table construction
    /// node-for-node (canonicity makes this an identity check).
    #[test]
    fn ite_agrees_with_truth_table_reference((nv, ops, seed) in params()) {
        let mut m = BddManager::new(nv);
        let f = random_checked(&mut m, nv, ops, seed);
        let reference = bdd_from_truth_table(&mut m, 0, &f.table);
        prop_assert_eq!(f.node, reference);
        for idx in 0..f.table.len() {
            prop_assert_eq!(m.eval(f.node, &assignment(nv, idx)), f.table[idx]);
        }
    }

    /// `exists_many` equals iterated single-variable `exists` node-for-node
    /// and matches the semantic quantification of the truth table.
    #[test]
    fn exists_many_agrees_with_iterated_and_semantics((nv, ops, seed) in params()) {
        let mut m = BddManager::new(nv);
        let f = random_checked(&mut m, nv, ops, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let vars: Vec<Var> = (0..nv as u32)
            .filter(|_| rng.gen_bool(0.5))
            .map(Var)
            .collect();
        let via_set = m.exists_many(f.node, &vars);
        let mut via_iter = f.node;
        for &v in &vars {
            via_iter = m.exists(via_iter, v);
        }
        prop_assert_eq!(via_set, via_iter);
        // Semantic oracle on the table: OR over the quantified positions.
        let mask: usize = vars.iter().map(|v| 1usize << v.index()).sum();
        for idx in 0..f.table.len() {
            let mut any = false;
            // Enumerate every override of the quantified bits via submask walk.
            let mut sub = mask;
            loop {
                any |= f.table[(idx & !mask) | sub];
                if sub == 0 {
                    break;
                }
                sub = (sub - 1) & mask;
            }
            prop_assert_eq!(m.eval(via_set, &assignment(nv, idx)), any);
        }
    }

    /// `forall_many` (direct dual recursion) equals the double-negation
    /// construction it replaced, node-for-node.
    #[test]
    fn forall_many_agrees_with_double_negation((nv, ops, seed) in params()) {
        let mut m = BddManager::new(nv);
        let f = random_checked(&mut m, nv, ops, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa11);
        let vars: Vec<Var> = (0..nv as u32)
            .filter(|_| rng.gen_bool(0.5))
            .map(Var)
            .collect();
        let direct = m.forall_many(f.node, &vars);
        let nf = m.not(f.node);
        let e = m.exists_many(nf, &vars);
        let dual = m.not(e);
        prop_assert_eq!(direct, dual);
    }

    /// The single-pass `restrict_assignment` equals the chain of
    /// single-variable cofactors it replaced, node-for-node, and matches
    /// the semantic restriction of the truth table.
    #[test]
    fn restrict_agrees_with_chained_cofactors((nv, ops, seed) in params()) {
        let mut m = BddManager::new(nv);
        let f = random_checked(&mut m, nv, ops, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
        let mut pairs: Vec<(Var, bool)> = Vec::new();
        for i in 0..nv as u32 {
            if rng.gen_bool(0.6) {
                let value = rng.gen_bool(0.5);
                pairs.push((Var(i), value));
            }
        }
        let single_pass = m.restrict_assignment(f.node, &pairs);
        let mut chained = f.node;
        for &(v, b) in &pairs {
            chained = m.cofactor(chained, v, b);
        }
        prop_assert_eq!(single_pass, chained);
        for idx in 0..f.table.len() {
            let mut forced = idx;
            for &(v, b) in &pairs {
                let bit = 1usize << v.index();
                forced = if b { forced | bit } else { forced & !bit };
            }
            prop_assert_eq!(
                m.eval(single_pass, &assignment(nv, idx)),
                f.table[forced]
            );
        }
    }

    /// Monotone `rename_vars` (persistently cached via interned maps)
    /// matches the semantic variable substitution.
    #[test]
    fn rename_matches_semantics((nv, ops, seed) in params()) {
        let total = nv * 2;
        let mut m = BddManager::new(total);
        let f = random_checked(&mut m, nv, ops, seed);
        let map: std::collections::HashMap<Var, Var> = (0..nv as u32)
            .map(|i| (Var(i), Var(i + nv as u32)))
            .collect();
        let g = m.rename_vars(f.node, &map);
        // Renaming twice through the same interned map must hit the cache
        // and return the identical node.
        prop_assert_eq!(m.rename_vars(f.node, &map), g);
        for idx in 0..f.table.len() {
            let mut asg = vec![false; total];
            for i in 0..nv {
                asg[nv + i] = idx & (1 << i) != 0;
            }
            prop_assert_eq!(m.eval(g, &asg), f.table[idx]);
        }
    }

    /// Eviction stress: a manager pinned to a 2-slot operation cache (every
    /// insert collides almost immediately) builds the same functions as a
    /// default manager, operation for operation.
    #[test]
    fn tiny_cache_survives_eviction_storm((nv, ops, seed) in params()) {
        let mut tiny = BddManager::new(nv);
        tiny.resize_op_cache(2);
        let mut full = BddManager::new(nv);
        let a = random_checked(&mut tiny, nv, ops, seed);
        let b = random_checked(&mut full, nv, ops, seed);
        // Same truth table, same canonical size, in both managers.
        prop_assert_eq!(&a.table, &b.table);
        prop_assert_eq!(tiny.size(a.node), full.size(b.node));
        for idx in 0..a.table.len() {
            let asg = assignment(nv, idx);
            prop_assert_eq!(tiny.eval(a.node, &asg), a.table[idx]);
            prop_assert_eq!(full.eval(b.node, &asg), b.table[idx]);
        }
        // Quantification and restriction also survive the storm.
        let vars: Vec<Var> = (0..nv as u32 / 2).map(Var).collect();
        let e_tiny = tiny.exists_many(a.node, &vars);
        let e_full = full.exists_many(b.node, &vars);
        for idx in 0..a.table.len() {
            let asg = assignment(nv, idx);
            prop_assert_eq!(tiny.eval(e_tiny, &asg), full.eval(e_full, &asg));
        }
        let stats = tiny.cache_stats();
        prop_assert_eq!(stats.cache_slots, 2);
    }

    /// The solver under an aggressive GC threshold produces node-for-node
    /// identical solutions (same truth tables, same cost, same search
    /// trajectory) as the append-only run: collection reclaims memory but
    /// may never change a function or a BDD size.
    #[test]
    fn solver_under_aggressive_gc_matches_append_only_run(
        seed in 0u64..256,
        extra in 0u32..3,
    ) {
        let prob = f64::from(extra) * 0.15;
        let append_only = BddConfig::new().auto_gc(false).auto_reorder(false);
        let aggressive = BddConfig::new()
            .auto_gc(true)
            .gc_min_nodes(8)
            .auto_reorder(false);
        let (space_a, rel_a) =
            random_well_defined_relation_with(3, 2, prob, seed, append_only);
        let (space_b, rel_b) =
            random_well_defined_relation_with(3, 2, prob, seed, aggressive);
        let solver = BrelSolver::new(BrelConfig::default());
        let sol_a = solver.solve(&rel_a).expect("well defined");
        let sol_b = solver.solve(&rel_b).expect("well defined");
        prop_assert_eq!(sol_a.cost, sol_b.cost);
        prop_assert_eq!(sol_a.stats.explored, sol_b.stats.explored);
        prop_assert_eq!(sol_a.stats.splits, sol_b.stats.splits);
        prop_assert!(sol_b.stats.gc_collections > 0,
            "an 8-node threshold must force collections");
        for j in 0..2 {
            for input in space_a.enumerate_inputs() {
                let asg_a = space_a.full_assignment(&input, &[]);
                let asg_b = space_b.full_assignment(&input, &[]);
                prop_assert_eq!(
                    sol_a.function.output(j).eval(&asg_a),
                    sol_b.function.output(j).eval(&asg_b),
                    "output {} differs on {:?}", j, input
                );
            }
        }
    }

    /// The solver under aggressive GC *and* forced auto-reordering stays
    /// sound: the solution is compatible, and on functional relations
    /// (whose compatible function is unique) it is node-for-node identical
    /// to the untouched run even though the variable order moved.
    #[test]
    fn solver_under_forced_sifting_stays_sound(seed in 0u64..256) {
        let pinned = BddConfig::new().auto_gc(false).auto_reorder(false);
        let sifting = BddConfig::new()
            .auto_gc(true)
            .gc_min_nodes(32)
            .auto_reorder(true);
        let (space_ref, rel_ref) =
            random_well_defined_relation_with(4, 2, 0.0, seed, pinned);
        let (space_gc, rel_gc) =
            random_well_defined_relation_with(4, 2, 0.0, seed, sifting);
        let solver = BrelSolver::new(BrelConfig::default());
        let sol_ref = solver.solve(&rel_ref).expect("well defined");
        let sol_gc = solver.solve(&rel_gc).expect("well defined");
        prop_assert!(
            space_gc.gc_stats().reorder_passes > 0,
            "the aggressive threshold must actually force sifting passes"
        );
        prop_assert!(rel_gc.is_compatible(&sol_gc.function));
        for j in 0..2 {
            for input in space_ref.enumerate_inputs() {
                let asg_ref = space_ref.full_assignment(&input, &[]);
                let asg_gc = space_gc.full_assignment(&input, &[]);
                prop_assert_eq!(
                    sol_ref.function.output(j).eval(&asg_ref),
                    sol_gc.function.output(j).eval(&asg_gc),
                    "functional relations have one solution; output {} differs on {:?}",
                    j, input
                );
            }
        }
    }

    /// Sifting preserves the semantics of every rooted function and keeps
    /// the manager canonical: rebuilding a sifted function from its truth
    /// table under the *new* order returns the identical handle.
    #[test]
    fn sifting_preserves_semantics_and_canonicity((nv, ops, seed) in params()) {
        let mgr = BddSession::new(nv);
        let checked = random_checked_handles(&mgr, nv, ops, seed);
        mgr.reorder_sift();
        for (f, table) in &checked {
            for (idx, &expected) in table.iter().enumerate() {
                prop_assert_eq!(f.eval(&assignment(nv, idx)), expected);
            }
            let rebuilt = handle_from_table(&mgr, nv, table);
            prop_assert_eq!(&rebuilt, f, "canonicity under the new order");
            // Counting goes through the level permutation, so it must be
            // unaffected by where sifting parked each variable.
            let expected_count = table.iter().filter(|&&bit| bit).count() as u128;
            prop_assert_eq!(f.sat_count(nv), expected_count);
        }
    }
}

/// Handle-based sibling of `random_checked`: random connectives through
/// rooted `Bdd`s, each paired with its truth table.
fn random_checked_handles(
    mgr: &BddSession,
    num_vars: usize,
    ops: usize,
    seed: u64,
) -> Vec<(Bdd, Vec<bool>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows = 1usize << num_vars;
    let mut pool: Vec<(Bdd, Vec<bool>)> = (0..num_vars)
        .map(|i| {
            (
                mgr.var(i as u32),
                (0..rows).map(|idx| idx & (1 << i) != 0).collect(),
            )
        })
        .collect();
    for _ in 0..ops {
        let a = pool[rng.gen_range(0..pool.len() as u32) as usize].clone();
        let b = pool[rng.gen_range(0..pool.len() as u32) as usize].clone();
        let entry = match rng.gen_range(0..4u32) {
            0 => (
                a.0.and(&b.0),
                a.1.iter().zip(&b.1).map(|(&x, &y)| x && y).collect(),
            ),
            1 => (
                a.0.or(&b.0),
                a.1.iter().zip(&b.1).map(|(&x, &y)| x || y).collect(),
            ),
            2 => (
                a.0.xor(&b.0),
                a.1.iter().zip(&b.1).map(|(&x, &y)| x ^ y).collect(),
            ),
            _ => (a.0.complement(), a.1.iter().map(|&x| !x).collect()),
        };
        pool.push(entry);
    }
    pool
}

/// Rebuilds a function from its truth table through handle operations
/// (valid under any variable order, unlike the `mk`-based reference).
fn handle_from_table(mgr: &BddSession, num_vars: usize, table: &[bool]) -> Bdd {
    let mut acc = mgr.zero();
    for (idx, &bit) in table.iter().enumerate() {
        if bit {
            acc = acc.or(&mgr.minterm(&assignment(num_vars, idx)));
        }
    }
    acc
}

/// The pinned eviction-after-sweep case: before a sweep the repeated
/// operation is a pure cache hit; after dropping the result and sweeping,
/// the same operation must *recompute* (inserts, not a stale hit), reuse
/// the reclaimed arena slots, and still evaluate correctly — no stale
/// cache or unique-table entry can resurrect a reclaimed `NodeId`.
#[test]
fn sweep_evicts_cached_results_and_recycles_slots_safely() {
    let mgr = BddSession::with_config(6, 1024, BddConfig::new().auto_gc(false));
    let a = mgr.var(0);
    let b = mgr.var(1);
    let c = mgr.var(2);
    let d = mgr.var(3);
    let f = a.xor(&b).or(&c);
    let g = b.iff(&d);

    let x = f.and(&g);
    let truth: Vec<bool> = (0..64u32)
        .map(|bits| {
            let asg: Vec<bool> = (0..6).map(|k| bits & (1 << k) != 0).collect();
            x.eval(&asg)
        })
        .collect();
    let before_hit = mgr.cache_stats();
    let x2 = f.and(&g);
    let after_hit = mgr.cache_stats();
    assert_eq!(
        after_hit.cache_hits,
        before_hit.cache_hits + 1,
        "repeating the op before the sweep is a pure cache hit"
    );
    assert_eq!(after_hit.cache_inserts, before_hit.cache_inserts);

    let arena_before = mgr.num_nodes();
    drop(x);
    drop(x2);
    let reclaimed = mgr.collect_garbage();
    assert!(reclaimed > 0, "the conjunction's nodes must be reclaimed");
    assert!(mgr.gc_stats().nodes_reclaimed >= reclaimed as u64);

    let before_redo = mgr.cache_stats();
    let x3 = f.and(&g);
    let after_redo = mgr.cache_stats();
    assert!(
        after_redo.cache_inserts > before_redo.cache_inserts,
        "after the sweep the op must recompute — a stale hit would have \
         resurrected a reclaimed node id"
    );
    assert_eq!(
        mgr.num_nodes(),
        arena_before,
        "the recomputation reuses the reclaimed slots instead of growing"
    );
    for (bits, &expected) in truth.iter().enumerate() {
        let asg: Vec<bool> = (0..6).map(|k| bits & (1 << k) != 0).collect();
        assert_eq!(x3.eval(&asg), expected);
    }
}
