//! Oracle tests for the rebuilt BDD kernel: every cached/optimized
//! operation is checked node-for-node against a naive reference on randomly
//! generated functions, and a cache-eviction stress test proves correctness
//! survives a deliberately tiny operation cache.
//!
//! The oracle is a plain truth table maintained *outside* the BDD package:
//! random expressions are built op by op, with each Boolean connective
//! applied both to the BDD and to the table, so a kernel bug cannot hide in
//! a shared code path. Canonicity turns semantic equality into node
//! identity: two constructions of the same function in one manager must
//! return the same `NodeId`.

use proptest::prelude::*;

use brel_suite::bdd::{BddManager, NodeId, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A function built two ways: as a BDD node and as a truth table indexed by
/// assignments (variable `i` is bit `i` of the index).
#[derive(Clone)]
struct Checked {
    node: NodeId,
    table: Vec<bool>,
}

/// Builds `ops` random connectives over `num_vars` variables, keeping the
/// BDD and the truth table in lockstep.
fn random_checked(m: &mut BddManager, num_vars: usize, ops: usize, seed: u64) -> Checked {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows = 1usize << num_vars;
    let mut pool: Vec<Checked> = (0..num_vars)
        .map(|i| Checked {
            node: m.literal(Var(i as u32), true),
            table: (0..rows).map(|idx| idx & (1 << i) != 0).collect(),
        })
        .collect();
    for _ in 0..ops {
        let a = pool[rng.gen_range(0..pool.len() as u32) as usize].clone();
        let b = pool[rng.gen_range(0..pool.len() as u32) as usize].clone();
        let (node, table): (NodeId, Vec<bool>) = match rng.gen_range(0..4u32) {
            0 => (
                m.and(a.node, b.node),
                a.table
                    .iter()
                    .zip(&b.table)
                    .map(|(&x, &y)| x && y)
                    .collect(),
            ),
            1 => (
                m.or(a.node, b.node),
                a.table
                    .iter()
                    .zip(&b.table)
                    .map(|(&x, &y)| x || y)
                    .collect(),
            ),
            2 => (
                m.xor(a.node, b.node),
                a.table.iter().zip(&b.table).map(|(&x, &y)| x ^ y).collect(),
            ),
            _ => (m.not(a.node), a.table.iter().map(|&x| !x).collect()),
        };
        pool.push(Checked { node, table });
    }
    pool.pop().expect("pool is never empty")
}

/// The naive reference construction: a bottom-up Shannon expansion of a
/// truth table through `mk` only (no `ite`, no operation cache).
fn bdd_from_truth_table(m: &mut BddManager, var: u32, table: &[bool]) -> NodeId {
    if table.len() == 1 {
        return if table[0] { NodeId::ONE } else { NodeId::ZERO };
    }
    // Variable `var` is the LSB of the index: even rows are var=0.
    let lo_rows: Vec<bool> = table.iter().copied().step_by(2).collect();
    let hi_rows: Vec<bool> = table.iter().copied().skip(1).step_by(2).collect();
    let lo = bdd_from_truth_table(m, var + 1, &lo_rows);
    let hi = bdd_from_truth_table(m, var + 1, &hi_rows);
    m.mk(Var(var), lo, hi)
}

fn assignment(num_vars: usize, idx: usize) -> Vec<bool> {
    (0..num_vars).map(|i| idx & (1 << i) != 0).collect()
}

fn params() -> impl Strategy<Value = (usize, usize, u64)> {
    (3usize..=6, 4usize..=24, any::<u64>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `ite`-built functions equal the naive truth-table construction
    /// node-for-node (canonicity makes this an identity check).
    #[test]
    fn ite_agrees_with_truth_table_reference((nv, ops, seed) in params()) {
        let mut m = BddManager::new(nv);
        let f = random_checked(&mut m, nv, ops, seed);
        let reference = bdd_from_truth_table(&mut m, 0, &f.table);
        prop_assert_eq!(f.node, reference);
        for idx in 0..f.table.len() {
            prop_assert_eq!(m.eval(f.node, &assignment(nv, idx)), f.table[idx]);
        }
    }

    /// `exists_many` equals iterated single-variable `exists` node-for-node
    /// and matches the semantic quantification of the truth table.
    #[test]
    fn exists_many_agrees_with_iterated_and_semantics((nv, ops, seed) in params()) {
        let mut m = BddManager::new(nv);
        let f = random_checked(&mut m, nv, ops, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let vars: Vec<Var> = (0..nv as u32)
            .filter(|_| rng.gen_bool(0.5))
            .map(Var)
            .collect();
        let via_set = m.exists_many(f.node, &vars);
        let mut via_iter = f.node;
        for &v in &vars {
            via_iter = m.exists(via_iter, v);
        }
        prop_assert_eq!(via_set, via_iter);
        // Semantic oracle on the table: OR over the quantified positions.
        let mask: usize = vars.iter().map(|v| 1usize << v.index()).sum();
        for idx in 0..f.table.len() {
            let mut any = false;
            // Enumerate every override of the quantified bits via submask walk.
            let mut sub = mask;
            loop {
                any |= f.table[(idx & !mask) | sub];
                if sub == 0 {
                    break;
                }
                sub = (sub - 1) & mask;
            }
            prop_assert_eq!(m.eval(via_set, &assignment(nv, idx)), any);
        }
    }

    /// `forall_many` (direct dual recursion) equals the double-negation
    /// construction it replaced, node-for-node.
    #[test]
    fn forall_many_agrees_with_double_negation((nv, ops, seed) in params()) {
        let mut m = BddManager::new(nv);
        let f = random_checked(&mut m, nv, ops, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa11);
        let vars: Vec<Var> = (0..nv as u32)
            .filter(|_| rng.gen_bool(0.5))
            .map(Var)
            .collect();
        let direct = m.forall_many(f.node, &vars);
        let nf = m.not(f.node);
        let e = m.exists_many(nf, &vars);
        let dual = m.not(e);
        prop_assert_eq!(direct, dual);
    }

    /// The single-pass `restrict_assignment` equals the chain of
    /// single-variable cofactors it replaced, node-for-node, and matches
    /// the semantic restriction of the truth table.
    #[test]
    fn restrict_agrees_with_chained_cofactors((nv, ops, seed) in params()) {
        let mut m = BddManager::new(nv);
        let f = random_checked(&mut m, nv, ops, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
        let mut pairs: Vec<(Var, bool)> = Vec::new();
        for i in 0..nv as u32 {
            if rng.gen_bool(0.6) {
                let value = rng.gen_bool(0.5);
                pairs.push((Var(i), value));
            }
        }
        let single_pass = m.restrict_assignment(f.node, &pairs);
        let mut chained = f.node;
        for &(v, b) in &pairs {
            chained = m.cofactor(chained, v, b);
        }
        prop_assert_eq!(single_pass, chained);
        for idx in 0..f.table.len() {
            let mut forced = idx;
            for &(v, b) in &pairs {
                let bit = 1usize << v.index();
                forced = if b { forced | bit } else { forced & !bit };
            }
            prop_assert_eq!(
                m.eval(single_pass, &assignment(nv, idx)),
                f.table[forced]
            );
        }
    }

    /// Monotone `rename_vars` (persistently cached via interned maps)
    /// matches the semantic variable substitution.
    #[test]
    fn rename_matches_semantics((nv, ops, seed) in params()) {
        let total = nv * 2;
        let mut m = BddManager::new(total);
        let f = random_checked(&mut m, nv, ops, seed);
        let map: std::collections::HashMap<Var, Var> = (0..nv as u32)
            .map(|i| (Var(i), Var(i + nv as u32)))
            .collect();
        let g = m.rename_vars(f.node, &map);
        // Renaming twice through the same interned map must hit the cache
        // and return the identical node.
        prop_assert_eq!(m.rename_vars(f.node, &map), g);
        for idx in 0..f.table.len() {
            let mut asg = vec![false; total];
            for i in 0..nv {
                asg[nv + i] = idx & (1 << i) != 0;
            }
            prop_assert_eq!(m.eval(g, &asg), f.table[idx]);
        }
    }

    /// Eviction stress: a manager pinned to a 2-slot operation cache (every
    /// insert collides almost immediately) builds the same functions as a
    /// default manager, operation for operation.
    #[test]
    fn tiny_cache_survives_eviction_storm((nv, ops, seed) in params()) {
        let mut tiny = BddManager::new(nv);
        tiny.resize_op_cache(2);
        let mut full = BddManager::new(nv);
        let a = random_checked(&mut tiny, nv, ops, seed);
        let b = random_checked(&mut full, nv, ops, seed);
        // Same truth table, same canonical size, in both managers.
        prop_assert_eq!(&a.table, &b.table);
        prop_assert_eq!(tiny.size(a.node), full.size(b.node));
        for idx in 0..a.table.len() {
            let asg = assignment(nv, idx);
            prop_assert_eq!(tiny.eval(a.node, &asg), a.table[idx]);
            prop_assert_eq!(full.eval(b.node, &asg), b.table[idx]);
        }
        // Quantification and restriction also survive the storm.
        let vars: Vec<Var> = (0..nv as u32 / 2).map(Var).collect();
        let e_tiny = tiny.exists_many(a.node, &vars);
        let e_full = full.exists_many(b.node, &vars);
        for idx in 0..a.table.len() {
            let asg = assignment(nv, idx);
            prop_assert_eq!(tiny.eval(e_tiny, &asg), full.eval(e_full, &asg));
        }
        let stats = tiny.cache_stats();
        prop_assert_eq!(stats.cache_slots, 2);
    }
}
