//! The quick solver of Fig. 4 and its order-dependence (Example 6.1).

use brel_benchdata::figures;
use brel_core::{CostFn, CostFunction, QuickSolver};

#[test]
fn quick_solution_is_always_compatible() {
    for (_space, r) in [
        figures::fig1(),
        figures::fig5(),
        figures::fig7(),
        figures::fig8(),
    ] {
        let f = QuickSolver::new().solve(&r).unwrap();
        assert!(r.is_compatible(&f));
    }
}

#[test]
fn fig5_order_dependence_produces_unbalanced_solutions() {
    // Example 6.1: solving x first steals the flexibility from y, giving the
    // unbalanced (x ⇔ 1)(y ⇔ a·b + ā·b̄) instead of the optimal (x ⇔ b)(y ⇔ a).
    let (space, r) = figures::fig5();
    let f = QuickSolver::new().with_order(vec![0, 1]).solve(&r).unwrap();
    assert!(r.is_compatible(&f));
    // The first output ends up constant (all the flexibility used)…
    assert!(f.output(0).is_one());
    // …and the second inherits the expensive equivalence function.
    assert_eq!(f.output(1), &space.input(0).iff(&space.input(1)));
    // Total cost is strictly worse than the optimum of 2.
    assert!(CostFn::SumBddSize.cost(&f) > 2);
}

#[test]
fn different_orders_remain_compatible_even_when_costs_differ() {
    let (_space, r) = figures::fig5();
    let forward = QuickSolver::new().with_order(vec![0, 1]).solve(&r).unwrap();
    let backward = QuickSolver::new().with_order(vec![1, 0]).solve(&r).unwrap();
    assert!(r.is_compatible(&forward));
    assert!(r.is_compatible(&backward));
}
