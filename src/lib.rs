//! Umbrella crate for the BREL reproduction workspace.
//!
//! Re-exports the member crates under short names so the examples and
//! integration tests can use a single dependency.

pub use brel_bdd as bdd;
pub use brel_benchdata as benchdata;
pub use brel_core as brel;
pub use brel_engine as engine;
pub use brel_gyocro as gyocro;
pub use brel_network as network;
pub use brel_obs as obs;
pub use brel_relation as relation;
pub use brel_serve as serve;
pub use brel_sop as sop;
