//! Section 7.7 symmetry-detection ablation: prints the quality/runtime
//! comparison and times the solver with the pruning on and off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use brel_benchdata::table2;
use brel_core::{BrelConfig, BrelSolver};

fn print_table() {
    let rows = brel_bench::symmetry_ablation::run(8, 30);
    println!("\n{}", brel_bench::symmetry_ablation::render(&rows));
}

fn bench_symmetry(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("symmetry_ablation");
    group.sample_size(10);
    let (_space, relation) = table2::generate(&table2::instance("int5").unwrap());
    for (label, enabled) in [("off", false), ("on", true)] {
        group.bench_with_input(
            BenchmarkId::new("brel_int5", label),
            &enabled,
            |b, &enabled| {
                b.iter(|| {
                    BrelSolver::new(
                        BrelConfig::default()
                            .with_max_explored(Some(30))
                            .with_symmetry(enabled),
                    )
                    .solve(&relation)
                    .unwrap()
                    .cost
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_symmetry);
criterion_main!(benches);
