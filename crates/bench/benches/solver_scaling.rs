//! Scaling of the BREL solver and the baselines with relation size and with
//! the exploration budget (the runtime knob of Section 7.6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use brel_benchdata::random_well_defined_relation;
use brel_core::{BrelConfig, BrelSolver, QuickSolver};
use brel_gyocro::GyocroSolver;

fn bench_solver_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_scaling");
    group.sample_size(10);

    for &num_inputs in &[4usize, 6, 8] {
        let (_space, relation) =
            random_well_defined_relation(num_inputs, 3, 0.25, 7_000 + num_inputs as u64);
        group.bench_with_input(BenchmarkId::new("quick", num_inputs), &relation, |b, r| {
            b.iter(|| QuickSolver::new().solve(r).unwrap().sum_of_sizes())
        });
        group.bench_with_input(
            BenchmarkId::new("brel_budget10", num_inputs),
            &relation,
            |b, r| b.iter(|| BrelSolver::new(BrelConfig::table2()).solve(r).unwrap().cost),
        );
        group.bench_with_input(BenchmarkId::new("gyocro", num_inputs), &relation, |b, r| {
            b.iter(|| GyocroSolver::default().solve(r).unwrap().final_cost)
        });
    }

    // Exploration-budget sweep on a fixed relation.
    let (_space, relation) = random_well_defined_relation(6, 3, 0.3, 99);
    for &budget in &[1usize, 5, 20, 50] {
        group.bench_with_input(
            BenchmarkId::new("brel_budget_sweep", budget),
            &budget,
            |b, &budget| {
                b.iter(|| {
                    BrelSolver::new(BrelConfig::default().with_max_explored(Some(budget)))
                        .solve(&relation)
                        .unwrap()
                        .cost
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_solver_scaling);
criterion_main!(benches);
