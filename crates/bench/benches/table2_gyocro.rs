//! Table 2 reproduction: prints the BREL-vs-gyocro comparison, then times
//! both solvers on a representative instance with Criterion.

use criterion::{criterion_group, criterion_main, Criterion};

use brel_benchdata::table2;
use brel_core::{BrelConfig, BrelSolver};
use brel_gyocro::GyocroSolver;

fn print_table() {
    // A subset keeps `cargo bench` turnaround reasonable; run the
    // `table2_gyocro` binary for the full family.
    let rows = brel_bench::table2::run(8);
    println!("\n{}", brel_bench::table2::render(&rows));
}

fn bench_solvers(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("table2_gyocro");
    group.sample_size(10);
    let instance = table2::instance("b9").expect("known instance");
    let (_space, relation) = table2::generate(&instance);
    group.bench_function("gyocro_b9", |b| {
        b.iter(|| GyocroSolver::default().solve(&relation).unwrap().final_cost)
    });
    group.bench_function("brel_b9", |b| {
        b.iter(|| {
            BrelSolver::new(BrelConfig::table2())
                .solve(&relation)
                .unwrap()
                .cost
        })
    });
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
