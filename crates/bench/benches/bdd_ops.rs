//! Micro-benchmarks of the BDD substrate: the primitive operations every
//! solver step is built from (ite, quantification, ISOP, projection).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use brel_benchdata::table2;
use brel_relation::RelationSpace;

fn build_relation() -> (RelationSpace, brel_relation::BooleanRelation) {
    let instance = table2::instance("int9").expect("known instance");
    table2::generate(&instance)
}

fn bench_bdd_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd_ops");
    group.sample_size(20);

    group.bench_function("characteristic_construction_int9", |b| {
        let instance = table2::instance("int9").unwrap();
        b.iter(|| table2::generate(&instance).1.size())
    });

    let (space, relation) = build_relation();
    group.bench_function("projection_all_outputs_int9", |b| {
        b.iter(|| {
            (0..space.num_outputs())
                .map(|i| relation.projection(i).on().size())
                .sum::<usize>()
        })
    });

    group.bench_function("misf_overapproximation_int9", |b| {
        b.iter(|| relation.to_misf().to_relation().size())
    });

    group.bench_function("isop_of_characteristic_int9", |b| {
        b.iter(|| relation.characteristic().isop().num_literals())
    });

    group.bench_function("split_on_flexible_vertex_int9", |b| {
        let flexible = relation.projection_flexible_inputs(0);
        let cube = flexible.shortest_path().expect("flexibility exists");
        let vertex: Vec<bool> = space
            .input_vars()
            .iter()
            .map(|&v| cube.value_of(v).unwrap_or(true))
            .collect();
        b.iter_batched(
            || vertex.clone(),
            |v| relation.split(&v, 0).unwrap().0.size(),
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_bdd_ops);
criterion_main!(benches);
