//! Micro-benchmarks of the BDD substrate: the primitive operations every
//! solver step is built from (ite, quantification, ISOP, projection), plus
//! a `bdd_kernel` group covering the hashing/caching layer itself (the
//! workloads mirrored by the `bdd_kernel` binary that feeds
//! `BENCH_bdd_kernel.json`).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use brel_bdd::Var;
use brel_benchdata::table2;
use brel_relation::RelationSpace;

fn build_relation() -> (RelationSpace, brel_relation::BooleanRelation) {
    let instance = table2::instance("int9").expect("known instance");
    table2::generate(&instance)
}

fn bench_bdd_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd_ops");
    group.sample_size(20);

    group.bench_function("characteristic_construction_int9", |b| {
        let instance = table2::instance("int9").unwrap();
        b.iter(|| table2::generate(&instance).1.size())
    });

    let (space, relation) = build_relation();
    group.bench_function("projection_all_outputs_int9", |b| {
        b.iter(|| {
            (0..space.num_outputs())
                .map(|i| relation.projection(i).on().size())
                .sum::<usize>()
        })
    });

    group.bench_function("misf_overapproximation_int9", |b| {
        b.iter(|| relation.to_misf().to_relation().size())
    });

    group.bench_function("isop_of_characteristic_int9", |b| {
        b.iter(|| relation.characteristic().isop().num_literals())
    });

    group.bench_function("split_on_flexible_vertex_int9", |b| {
        let flexible = relation.projection_flexible_inputs(0);
        let cube = flexible.shortest_path().expect("flexibility exists");
        let vertex: Vec<bool> = space
            .input_vars()
            .iter()
            .map(|&v| cube.value_of(v).unwrap_or(true))
            .collect();
        b.iter_batched(
            || vertex.clone(),
            |v| relation.split(&v, 0).unwrap().0.size(),
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

fn bench_bdd_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd_kernel");
    group.sample_size(20);

    let (space, relation) = build_relation();
    let chi = relation.characteristic().clone();
    let num_vars = space.mgr().num_vars();
    let all_vars: Vec<Var> = (0..num_vars).map(Var::from).collect();
    let output_vars: Vec<Var> = space.output_vars().to_vec();

    group.bench_function("cofactor_sweep_int9", |b| {
        b.iter(|| {
            // Resolve the rooted id before `with`: the session lock is not
            // reentrant, so handle calls inside the closure would deadlock.
            let f = chi.node_id();
            space.mgr().with(|m| {
                let mut acc = 0usize;
                for &v in &all_vars {
                    acc += m.cofactor(f, v, false).index();
                    acc += m.cofactor(f, v, true).index();
                }
                acc
            })
        })
    });

    group.bench_function("exists_forall_outputs_int9", |b| {
        b.iter(|| {
            let f = chi.node_id();
            space.mgr().with(|m| {
                let e = m.exists_many(f, &output_vars);
                let a = m.forall_many(f, &output_vars);
                (e, a)
            })
        })
    });

    group.bench_function("restrict_assignment_int9", |b| {
        let assignment: Vec<(Var, bool)> = space
            .input_vars()
            .iter()
            .take(4)
            .enumerate()
            .map(|(i, &v)| (v, i % 2 == 0))
            .collect();
        b.iter(|| {
            let f = chi.node_id();
            space.mgr().with(|m| m.restrict_assignment(f, &assignment))
        })
    });

    group.bench_function("support_size_int9", |b| {
        b.iter(|| {
            let f = chi.node_id();
            space.mgr().with(|m| m.size(f) + m.support(f).len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_bdd_ops, bench_bdd_kernel);
criterion_main!(benches);
