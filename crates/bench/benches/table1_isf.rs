//! Table 1 reproduction: prints the normalized ISF-minimization comparison,
//! then times each strategy inside the solver loop with Criterion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use brel_benchdata::table2;
use brel_core::{BrelConfig, BrelSolver, IsfMinimizer};

fn print_table() {
    // A moderate subset keeps `cargo bench` turnaround reasonable; run the
    // `table1_isf` binary for the full family.
    let rows = brel_bench::table1::run(6);
    println!("\n{}", brel_bench::table1::render(&rows));
}

fn bench_strategies(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("table1_isf");
    group.sample_size(10);
    let instance = table2::instance("int3").expect("known instance");
    let (_space, relation) = table2::generate(&instance);
    for (name, minimizer) in IsfMinimizer::table1_strategies() {
        group.bench_with_input(BenchmarkId::new("brel_int3", name), &minimizer, |b, &m| {
            b.iter(|| {
                let config = BrelConfig {
                    minimizer: m,
                    ..BrelConfig::table2()
                };
                BrelSolver::new(config).solve(&relation).unwrap().cost
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
