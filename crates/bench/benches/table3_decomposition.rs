//! Table 3 reproduction: prints the mux-latch decomposition results for both
//! cost functions, then times the per-flip-flop decomposition kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use brel_benchdata::iscas_like;
use brel_core::BrelConfig;
use brel_network::decompose::decompose_mux_latches;

fn print_table() {
    // A subset of the circuits and a reduced exploration budget keep
    // `cargo bench` turnaround reasonable; the `table3_decomposition` binary
    // runs the full family with the paper's budget of 200.
    for delay_oriented in [true, false] {
        let rows = brel_bench::table3::run(6, delay_oriented, 50);
        println!("\n{}", brel_bench::table3::render(&rows, delay_oriented));
    }
}

fn bench_decomposition(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("table3_decomposition");
    group.sample_size(10);
    let net = iscas_like::generate(&iscas_like::instance("s27").unwrap());
    for (label, delay_oriented) in [("area", false), ("delay", true)] {
        group.bench_with_input(
            BenchmarkId::new("decompose_s27", label),
            &delay_oriented,
            |b, &delay_oriented| {
                b.iter(|| {
                    decompose_mux_latches(&net, delay_oriented, 50)
                        .unwrap()
                        .latches
                        .len()
                })
            },
        );
    }
    // The per-function kernel used inside the flow.
    let _ = BrelConfig::decomposition(true);
    group.finish();
}

criterion_group!(benches, bench_decomposition);
criterion_main!(benches);
