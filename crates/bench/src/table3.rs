//! Table 3: logic decomposition for mux latches on the sequential benchmark
//! family, for the delay-oriented (sum of squared BDD sizes) and the
//! area-oriented (sum of BDD sizes) cost functions.
//!
//! For every circuit the baseline is the collapsed original next-state /
//! output logic, technology mapped; the decomposed variant replaces each
//! next-state function by the three mux-input functions synthesized with
//! BREL (the mux itself being absorbed by the flip-flop, as the paper
//! assumes).

use std::time::{Duration, Instant};

use brel_benchdata::iscas_like as family;
use brel_network::decompose::decompose_mux_latches;
use brel_network::mapper::{map, MappingOptions};
use brel_network::speedup::collapse;
use brel_network::Library;

/// One row of Table 3 (for one cost function).
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Circuit name.
    pub name: &'static str,
    /// Primary inputs.
    pub num_inputs: usize,
    /// Primary outputs.
    pub num_outputs: usize,
    /// Flip-flops.
    pub num_flip_flops: usize,
    /// Mapped area of the baseline (original next-state logic).
    pub baseline_area: f64,
    /// Mapped delay of the baseline.
    pub baseline_delay: f64,
    /// Mapped area after mux-latch decomposition.
    pub decomposed_area: f64,
    /// Mapped delay after mux-latch decomposition.
    pub decomposed_delay: f64,
    /// Decomposition + mapping runtime.
    pub cpu: Duration,
}

/// Runs the flow over the first `num_instances` circuits with the given
/// cost orientation and per-relation exploration budget.
pub fn run(num_instances: usize, delay_oriented: bool, max_explored: usize) -> Vec<Table3Row> {
    let library = Library::lib2_like();
    let options = MappingOptions::default();
    let mut rows = Vec::new();
    for instance in family::instances().into_iter().take(num_instances) {
        let net = family::generate(&instance);
        let baseline_net = collapse(&net).expect("generated circuits are acyclic");
        let baseline = map(&baseline_net, &library, &options).expect("acyclic");

        let start = Instant::now();
        let decomposed =
            decompose_mux_latches(&net, delay_oriented, max_explored).expect("solvable");
        let mapped = map(&decomposed.network, &library, &options).expect("acyclic");
        let cpu = start.elapsed();

        rows.push(Table3Row {
            name: instance.name,
            num_inputs: instance.num_inputs,
            num_outputs: instance.num_outputs,
            num_flip_flops: instance.num_flip_flops,
            baseline_area: baseline.area,
            baseline_delay: baseline.delay,
            decomposed_area: mapped.area,
            decomposed_delay: mapped.delay,
            cpu,
        });
    }
    rows
}

/// Totals over the rows: `(baseline area, decomposed area, baseline delay,
/// decomposed delay)` — the "global improvement" row of the paper's table.
pub fn totals(rows: &[Table3Row]) -> (f64, f64, f64, f64) {
    rows.iter().fold((0.0, 0.0, 0.0, 0.0), |acc, r| {
        (
            acc.0 + r.baseline_area,
            acc.1 + r.decomposed_area,
            acc.2 + r.baseline_delay,
            acc.3 + r.decomposed_delay,
        )
    })
}

/// Renders the rows in the layout of the paper's Table 3.
pub fn render(rows: &[Table3Row], delay_oriented: bool) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Table 3 ({} cost): logic decomposition for mux latches\n",
        if delay_oriented {
            "delay-oriented, sum of squared BDD sizes"
        } else {
            "area-oriented, sum of BDD sizes"
        }
    ));
    out.push_str(
        "name     PI PO FF |   base area  base delay |   mux area   mux delay |   CPU[s]\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:8} {:2} {:2} {:2} | {:10.1} {:11.2} | {:10.1} {:11.2} | {:8.3}\n",
            r.name,
            r.num_inputs,
            r.num_outputs,
            r.num_flip_flops,
            r.baseline_area,
            r.baseline_delay,
            r.decomposed_area,
            r.decomposed_delay,
            r.cpu.as_secs_f64(),
        ));
    }
    let (ba, da, bd, dd) = totals(rows);
    out.push_str(&format!(
        "TOTAL                 | {:10.1} {:11.2} | {:10.1} {:11.2} |  area x{:.3}, delay x{:.3}\n",
        ba,
        bd,
        da,
        dd,
        if ba > 0.0 { da / ba } else { 1.0 },
        if bd > 0.0 { dd / bd } else { 1.0 },
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_produces_plausible_rows() {
        let rows = run(2, false, 20);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.baseline_area > 0.0);
            assert!(r.decomposed_area > 0.0);
            assert!(r.baseline_delay > 0.0);
            assert!(r.decomposed_delay > 0.0);
        }
    }

    #[test]
    fn delay_cost_tends_to_reduce_delay_relative_to_area_cost() {
        // Shape expectation: with the delay-oriented cost the decomposed
        // delay total is not worse than with the area-oriented cost.
        let area_rows = run(2, false, 20);
        let delay_rows = run(2, true, 20);
        let (_, _, _, area_cost_delay) = totals(&area_rows);
        let (_, _, _, delay_cost_delay) = totals(&delay_rows);
        assert!(delay_cost_delay <= area_cost_delay * 1.25);
    }

    #[test]
    fn render_has_a_total_row() {
        let rows = run(1, true, 10);
        let text = render(&rows, true);
        assert!(text.contains("TOTAL"));
        assert!(text.contains(rows[0].name));
    }
}
