//! Table 2: BREL vs gyocro on the Boolean-relation benchmark family.
//!
//! For every instance both solvers are run; the solutions are then pushed
//! through the same downstream flow the paper uses: two-level metrics (CB,
//! LIT), the algebraic multilevel optimization (`ALG` — factored literal
//! count after the algebraic script stand-in) and technology mapping
//! (`AREA`), plus the solver runtime (`CPU`).

use std::time::{Duration, Instant};

use brel_benchdata::table2 as family;
use brel_core::{BrelConfig, BrelSolver};
use brel_engine::Json;
use brel_gyocro::GyocroSolver;
use brel_network::algebraic;
use brel_network::mapper::{map, MappingOptions};
use brel_network::Library;
use brel_relation::MultiOutputFunction;

/// Metrics of one solver on one instance.
#[derive(Debug, Clone)]
pub struct SolverMetrics {
    /// Number of cubes of the two-level solution (CB).
    pub cubes: usize,
    /// Number of literals of the two-level solution (LIT).
    pub literals: usize,
    /// Factored literal count after algebraic optimization (ALG).
    pub algebraic_literals: usize,
    /// Mapped area (AREA).
    pub area: f64,
    /// Solver runtime (CPU).
    pub cpu: Duration,
}

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Instance name.
    pub name: &'static str,
    /// Number of inputs (PI).
    pub num_inputs: usize,
    /// Number of outputs (PO).
    pub num_outputs: usize,
    /// gyocro metrics.
    pub gyocro: SolverMetrics,
    /// BREL metrics.
    pub brel: SolverMetrics,
}

fn downstream(name: &str, f: &MultiOutputFunction, cpu: Duration) -> SolverMetrics {
    let cover = f.to_multicover();
    let mut net = crate::network_from_function(name, f);
    algebraic::optimize(&mut net).expect("acyclic by construction");
    let algebraic_literals = algebraic::network_factored_literals(&net);
    let mapped = map(&net, &Library::lib2_like(), &MappingOptions::default())
        .expect("acyclic by construction");
    SolverMetrics {
        cubes: cover.num_cubes(),
        literals: cover.num_literals(),
        algebraic_literals,
        area: mapped.area,
        cpu,
    }
}

/// Runs the comparison over the first `num_instances` of the family.
pub fn run(num_instances: usize) -> Vec<Table2Row> {
    let mut rows = Vec::new();
    for instance in family::instances().into_iter().take(num_instances) {
        let (_space, relation) = family::generate(&instance);

        let start = Instant::now();
        let gyocro = GyocroSolver::default()
            .solve(&relation)
            .expect("well defined");
        let gyocro_cpu = start.elapsed();

        let start = Instant::now();
        let brel = BrelSolver::new(BrelConfig::table2())
            .solve(&relation)
            .expect("well defined");
        let brel_cpu = start.elapsed();

        rows.push(Table2Row {
            name: instance.name,
            num_inputs: instance.num_inputs,
            num_outputs: instance.num_outputs,
            gyocro: downstream(
                &format!("{}_gyocro", instance.name),
                &gyocro.function,
                gyocro_cpu,
            ),
            brel: downstream(&format!("{}_brel", instance.name), &brel.function, brel_cpu),
        });
    }
    rows
}

/// Summary ratios over a set of rows: average BREL/gyocro ratio of the ALG
/// and AREA columns (the paper reports an 11% and 14% average improvement).
pub fn summary(rows: &[Table2Row]) -> (f64, f64) {
    let mut alg_ratio = 0.0;
    let mut area_ratio = 0.0;
    let mut count = 0.0;
    for r in rows {
        if r.gyocro.algebraic_literals > 0 && r.gyocro.area > 0.0 {
            alg_ratio += r.brel.algebraic_literals as f64 / r.gyocro.algebraic_literals as f64;
            area_ratio += r.brel.area / r.gyocro.area;
            count += 1.0;
        }
    }
    if count == 0.0 {
        (1.0, 1.0)
    } else {
        (alg_ratio / count, area_ratio / count)
    }
}

/// Renders the rows in the layout of the paper's Table 2.
pub fn render(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    out.push_str("Table 2: comparison with gyocro\n");
    out.push_str("               |            gyocro                  |             BREL\n");
    out.push_str(
        "name     PI PO |  CB  LIT  ALG    AREA    CPU[s]    |  CB  LIT  ALG    AREA    CPU[s]\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:8} {:2} {:2} | {:3}  {:3}  {:3}  {:7.1}  {:8.3}  | {:3}  {:3}  {:3}  {:7.1}  {:8.3}\n",
            r.name,
            r.num_inputs,
            r.num_outputs,
            r.gyocro.cubes,
            r.gyocro.literals,
            r.gyocro.algebraic_literals,
            r.gyocro.area,
            r.gyocro.cpu.as_secs_f64(),
            r.brel.cubes,
            r.brel.literals,
            r.brel.algebraic_literals,
            r.brel.area,
            r.brel.cpu.as_secs_f64(),
        ));
    }
    let (alg, area) = summary(rows);
    out.push_str(&format!(
        "average BREL/gyocro ratio: ALG {:.3}  AREA {:.3}  (paper: 0.89 and 0.86)\n",
        alg, area
    ));
    out
}

fn metrics_json(m: &SolverMetrics) -> Json {
    Json::object(vec![
        ("cubes", Json::UInt(m.cubes as u64)),
        ("literals", Json::UInt(m.literals as u64)),
        (
            "algebraic_literals",
            Json::UInt(m.algebraic_literals as u64),
        ),
        ("area", Json::Float(m.area)),
        ("cpu_micros", Json::UInt(m.cpu.as_micros() as u64)),
    ])
}

/// Serializes the rows through the shared `brel-engine` JSON writer (the
/// `--json` output of the `table2_gyocro` binary, suitable for
/// `BENCH_*.json` perf trajectories).
pub fn to_json(rows: &[Table2Row]) -> String {
    let (alg, area) = summary(rows);
    Json::object(vec![
        ("schema", Json::str("brel-bench/table2-v1")),
        (
            "rows",
            Json::Array(
                rows.iter()
                    .map(|r| {
                        Json::object(vec![
                            ("name", Json::str(r.name)),
                            ("inputs", Json::UInt(r.num_inputs as u64)),
                            ("outputs", Json::UInt(r.num_outputs as u64)),
                            ("gyocro", metrics_json(&r.gyocro)),
                            ("brel", metrics_json(&r.brel)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("avg_alg_ratio", Json::Float(alg)),
        ("avg_area_ratio", Json::Float(area)),
    ])
    .render_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_output_lists_every_instance() {
        let rows = run(2);
        let text = to_json(&rows);
        assert!(text.contains("\"schema\": \"brel-bench/table2-v1\""));
        for r in &rows {
            assert!(text.contains(&format!("\"name\": \"{}\"", r.name)));
        }
        assert!(text.contains("\"avg_area_ratio\""));
    }

    #[test]
    fn rows_carry_consistent_metrics() {
        let rows = run(3);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.gyocro.cubes > 0);
            assert!(r.brel.cubes > 0);
            assert!(r.gyocro.literals >= r.gyocro.cubes);
            assert!(r.brel.literals >= r.brel.cubes);
            assert!(r.gyocro.area > 0.0);
            assert!(r.brel.area > 0.0);
        }
    }

    #[test]
    fn brel_is_competitive_on_average() {
        // Shape expectation of Table 2: averaged over the family, BREL's
        // mapped area is not worse than gyocro's.
        let rows = run(5);
        let (_alg, area) = summary(&rows);
        assert!(
            area <= 1.10,
            "BREL should stay within 10% of gyocro's mapped area on average, got ratio {area}"
        );
    }

    #[test]
    fn render_lists_every_instance() {
        let rows = run(2);
        let text = render(&rows);
        for r in &rows {
            assert!(text.contains(r.name));
        }
        assert!(text.contains("average BREL/gyocro ratio"));
    }
}
