//! Table 1: normalized comparison of the BDD-based ISF-minimization
//! strategies (ISOP, Constrain, Restrict, LICompact, each with and without
//! the elimination of non-essential variables).
//!
//! As in the paper, each strategy is plugged into the full BREL solver and
//! run over the Boolean-relation benchmark family; the reported numbers are
//! the total literal count of the final solutions (LIT) and the total CPU
//! time, both normalized to the default strategy (ISOP with variable
//! elimination).

use std::time::{Duration, Instant};

use brel_benchdata::table2 as family;
use brel_core::{BrelConfig, BrelSolver, IsfMinimizer};
use brel_engine::Json;

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Strategy name.
    pub strategy: &'static str,
    /// Total literal count of the final solutions.
    pub literals: usize,
    /// Total CPU time.
    pub cpu: Duration,
    /// Literal count normalized to the reference strategy.
    pub lit_ratio: f64,
    /// CPU time normalized to the reference strategy.
    pub cpu_ratio: f64,
}

/// Runs the experiment over the first `num_instances` relations of the
/// Table 2 family (use `usize::MAX` for all of them).
pub fn run(num_instances: usize) -> Vec<Table1Row> {
    let instances: Vec<_> = family::instances()
        .into_iter()
        .take(num_instances)
        .collect();
    let relations: Vec<_> = instances.iter().map(family::generate).collect();

    let mut raw: Vec<(&'static str, usize, Duration)> = Vec::new();
    for (name, minimizer) in IsfMinimizer::table1_strategies() {
        let start = Instant::now();
        let mut literals = 0usize;
        for (_space, relation) in &relations {
            let config = BrelConfig {
                minimizer,
                ..BrelConfig::table2()
            };
            let solution = BrelSolver::new(config)
                .solve(relation)
                .expect("family relations are well defined");
            literals += solution.function.num_literals();
        }
        raw.push((name, literals, start.elapsed()));
    }

    let (ref_lit, ref_cpu) = (raw[0].1 as f64, raw[0].2.as_secs_f64());
    raw.into_iter()
        .map(|(strategy, literals, cpu)| Table1Row {
            strategy,
            literals,
            cpu,
            lit_ratio: crate::normalized(literals as f64, ref_lit),
            cpu_ratio: crate::normalized(cpu.as_secs_f64(), ref_cpu),
        })
        .collect()
}

/// Renders the rows in the layout of the paper's Table 1.
pub fn render(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str("Table 1: normalized comparison of ISF minimization strategies\n");
    out.push_str("strategy          LIT     LIT/ISOP+elim   CPU [s]   CPU/ISOP+elim\n");
    for r in rows {
        out.push_str(&format!(
            "{:16} {:6}   {:>12.3}   {:7.3}   {:>12.3}\n",
            r.strategy,
            r.literals,
            r.lit_ratio,
            r.cpu.as_secs_f64(),
            r.cpu_ratio
        ));
    }
    out
}

/// Serializes the rows through the shared `brel-engine` JSON writer (the
/// `--json` output of the `table1_isf` binary, suitable for `BENCH_*.json`
/// perf trajectories).
pub fn to_json(rows: &[Table1Row]) -> String {
    Json::object(vec![
        ("schema", Json::str("brel-bench/table1-v1")),
        (
            "rows",
            Json::Array(
                rows.iter()
                    .map(|r| {
                        Json::object(vec![
                            ("strategy", Json::str(r.strategy)),
                            ("literals", Json::UInt(r.literals as u64)),
                            ("cpu_micros", Json::UInt(r.cpu.as_micros() as u64)),
                            ("lit_ratio", Json::Float(r.lit_ratio)),
                            ("cpu_ratio", Json::Float(r.cpu_ratio)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .render_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_output_lists_every_strategy() {
        let rows = run(1);
        let text = to_json(&rows);
        assert!(text.contains("\"schema\": \"brel-bench/table1-v1\""));
        for r in &rows {
            assert!(text.contains(&format!("\"strategy\": \"{}\"", r.strategy)));
        }
    }

    #[test]
    fn reference_strategy_is_normalized_to_one() {
        let rows = run(3);
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0].strategy, "ISOP+elim");
        assert!((rows[0].lit_ratio - 1.0).abs() < 1e-9);
        assert!((rows[0].cpu_ratio - 1.0).abs() < 1e-9);
        // Every strategy produced some literals.
        assert!(rows.iter().all(|r| r.literals > 0));
    }

    #[test]
    fn isop_with_elimination_is_competitive_in_literals() {
        // The paper's conclusion is that ISOP + variable elimination is the
        // best strategy *on average*; individual instances can go either way
        // (different minimizers steer the branch-and-bound differently), so
        // the check is a competitiveness bound rather than strict dominance.
        let rows = run(4);
        let lit = |name: &str| rows.iter().find(|r| r.strategy == name).unwrap().literals;
        let best = rows.iter().map(|r| r.literals).min().unwrap();
        assert!(
            (lit("ISOP+elim") as f64) <= best as f64 * 1.15,
            "ISOP+elim ({}) should stay within 15% of the best strategy ({best})",
            lit("ISOP+elim")
        );
    }

    #[test]
    fn render_contains_all_rows() {
        let rows = run(2);
        let text = render(&rows);
        for r in &rows {
            assert!(text.contains(r.strategy));
        }
    }
}
