//! The BDD-kernel measurement harness: microbenchmarks of the hashing and
//! caching layer every solver bottoms out in, plus seeded end-to-end solve
//! timings, emitted as the `BENCH_bdd_kernel.json` perf trajectory.
//!
//! Every workload is a pure function of fixed seeds, so two runs of the
//! harness on the same machine measure the same operation stream and the
//! recorded numbers are comparable across kernel revisions. The checked-in
//! `BENCH_bdd_kernel.json` keeps one labelled run per kernel generation;
//! regenerate a run with
//! `cargo run --release -p brel-bench --bin bdd_kernel -- --label <name>`.

use std::collections::HashMap;
use std::time::Instant;

use brel_bdd::{Bdd, BddConfig, BddManager, BddSession, CacheStats, GcStats, NodeId, Var};
use brel_benchdata::table2 as family;
use brel_engine::Json;
use brel_relation::RelationSpace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::engine_batch;

/// Harness configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelBenchOptions {
    /// Timed iterations per microbenchmark (after one warm-up iteration).
    pub iters: usize,
    /// Table-2 instances in the end-to-end batch.
    pub table2_instances: usize,
    /// Seeded random relations in the end-to-end batch.
    pub random_relations: usize,
    /// Label recorded in the emitted JSON (names the kernel generation).
    pub label: String,
}

impl KernelBenchOptions {
    /// The full measurement configuration.
    pub fn full(label: impl Into<String>) -> Self {
        KernelBenchOptions {
            iters: 40,
            table2_instances: usize::MAX,
            random_relations: 8,
            label: label.into(),
        }
    }

    /// The CI smoke configuration: few iterations, small batch, so the
    /// harness finishes in seconds while still exercising every workload.
    pub fn smoke(label: impl Into<String>) -> Self {
        KernelBenchOptions {
            iters: 5,
            table2_instances: 4,
            random_relations: 2,
            label: label.into(),
        }
    }
}

/// One timed microbenchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Workload name.
    pub name: &'static str,
    /// Timed iterations.
    pub iters: usize,
    /// Total wall time of the timed iterations, in nanoseconds. Sub-µs
    /// workloads run thousands of iterations, so the mean stays well above
    /// timer resolution.
    pub total_nanos: u64,
}

impl BenchResult {
    /// Mean wall time per iteration in nanoseconds.
    pub fn per_iter_nanos(&self) -> u64 {
        if self.iters == 0 {
            0
        } else {
            self.total_nanos / self.iters as u64
        }
    }

    /// Total wall time in microseconds (for JSON output).
    pub fn total_micros(&self) -> u64 {
        self.total_nanos / 1000
    }
}

/// The complete harness output.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelReport {
    /// The configuration label (kernel generation name).
    pub label: String,
    /// Every microbenchmark result, in execution order.
    pub benches: Vec<BenchResult>,
    /// End-to-end batch: number of jobs solved.
    pub batch_jobs: usize,
    /// End-to-end batch: total winner cost (a determinism fingerprint —
    /// it must not change when only the kernel gets faster).
    pub batch_total_cost: u64,
    /// End-to-end batch: wall time on one worker, in microseconds.
    pub batch_wall_micros: u64,
    /// Table-1 ISF-minimization sweep wall time, in microseconds.
    pub table1_wall_micros: u64,
    /// Kernel cache counters accumulated by the microbenchmark managers.
    pub kernel: Vec<(&'static str, u64)>,
    /// Memory-lifecycle measurements: churn peaks with/without GC and the
    /// sifting before/after sizes, as ordered `(name, value)` pairs.
    pub gc: Vec<(&'static str, u64)>,
}

fn time<F: FnMut()>(name: &'static str, iters: usize, mut routine: F) -> BenchResult {
    routine(); // warm-up
    let start = Instant::now();
    for _ in 0..iters {
        routine();
    }
    BenchResult {
        name,
        iters,
        total_nanos: u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
    }
}

/// Builds a deterministic random SOP over `num_vars` variables: `num_cubes`
/// cubes of six literals each, or-ed together. The workload every
/// characteristic-function construction reduces to.
fn random_sop(mgr: &mut BddManager, num_vars: usize, num_cubes: usize, seed: u64) -> NodeId {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acc = NodeId::ZERO;
    for _ in 0..num_cubes {
        let mut cube = NodeId::ONE;
        for _ in 0..6 {
            let v = Var(rng.gen_range(0..num_vars as u32));
            let lit = mgr.literal(v, rng.gen_bool(0.5));
            cube = mgr.and(cube, lit);
        }
        acc = mgr.or(acc, cube);
    }
    acc
}

/// Handle-based (rooted) variant of [`random_sop`]: same seeds, same
/// sampling sequence, but every intermediate goes through `Bdd` handles so
/// the lifecycle machinery (roots, GC safe points) is exercised.
fn random_sop_handle(mgr: &BddSession, num_vars: usize, num_cubes: usize, seed: u64) -> Bdd {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acc = mgr.zero();
    for _ in 0..num_cubes {
        let mut cube = mgr.one();
        for _ in 0..6 {
            let v = Var(rng.gen_range(0..num_vars as u32));
            let lit = if rng.gen_bool(0.5) {
                mgr.var(v)
            } else {
                mgr.nvar(v)
            };
            cube = cube.and(&lit);
        }
        acc = acc.or(&cube);
    }
    acc
}

/// How many round-salted derivations the churn workload performs.
const CHURN_ROUNDS: u32 = 256;
/// GC growth floor used by the churn workload (small enough that the
/// collector has to work, large enough to stay out of the noise).
const CHURN_GC_THRESHOLD: usize = 1024;

/// One churn round: derives a round-salted function from the int9
/// characteristic (xor with a fresh input polarity cube, then output
/// abstraction) and drops it. Each round builds distinct nodes, so an
/// append-only arena grows linearly while a collecting one stays near the
/// GC threshold.
fn churn_round(space: &RelationSpace, chi: &Bdd, round: u32) -> usize {
    let lits: Vec<(Var, bool)> = space
        .input_vars()
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, (round >> (i % 16)) & 1 == 1))
        .collect();
    let cube = space.mgr().cube(&lits);
    let salted = chi.xor(&cube);
    let abstracted = salted.exists(space.output_vars());
    salted.size() + abstracted.size()
}

/// Runs the churn workload on a fresh int9 manager and reports the
/// lifecycle counters of the churn phase alone (peak live nodes is the
/// headline number).
pub fn churn_int9(auto_gc: bool, rounds: u32) -> GcStats {
    let instance = family::instance("int9").expect("known instance");
    // The workload isolates collection: the space is built with a pinned
    // explicit config (the `BREL_BDD_*` environment cannot override it),
    // auto-reorder stays off in both modes (reorder_sift ends with a
    // sweep, so forced sifting would silently collect the "append-only"
    // baseline and void the peak comparison), and both the peak gauge and
    // the counters are attributed from after construction — whatever
    // collecting happened while building the relation must not leak into
    // the comparison.
    let config = BddConfig::new()
        .auto_gc(auto_gc)
        .gc_min_nodes(CHURN_GC_THRESHOLD)
        .auto_reorder(false);
    let (space, relation) = family::generate_with_config(&instance, config);
    let mgr = space.mgr().clone();
    mgr.reset_peak_live_nodes();
    let base = mgr.gc_stats();
    let chi = relation.characteristic().clone();
    let mut acc = 0usize;
    for round in 0..rounds {
        acc += churn_round(&space, &chi, round);
    }
    std::hint::black_box(acc);
    mgr.gc_stats().delta_since(&base)
}

/// Runs the harness and collects the report.
pub fn run(options: &KernelBenchOptions) -> KernelReport {
    let mut benches = Vec::new();
    let iters = options.iters;
    // Warm-manager workloads are fast (ns–µs); run two orders of magnitude
    // more iterations so their means sit far above timer resolution.
    let fast_iters = options.iters * 100;

    // Cold-manager construction: unique-table insertion and ite from an
    // empty arena; nothing can hit a warm cache.
    benches.push(time("build_random_sop_24v", iters, || {
        let mut m = BddManager::new(24);
        let f = random_sop(&mut m, 24, 220, 7);
        std::hint::black_box(m.size(f));
    }));

    // Characteristic construction through the relation layer, as the
    // Table-2 generators do it.
    let int9 = family::instance("int9").expect("known instance");
    benches.push(time("characteristic_int9", iters, || {
        let (_space, relation) = family::generate(&int9);
        std::hint::black_box(relation.size());
    }));

    // Cold quantification/cofactor path: a fresh manager per iteration, so
    // nothing can come out of a persistent cache and the recursion + `mk`
    // compute path is what gets timed. Guards the warm benches below
    // against a compute-path regression hiding behind cache hits.
    benches.push(time("quantify_cold_int9", iters, || {
        let (cold_space, cold_relation) = family::generate(&int9);
        // Resolve the rooted id before `with`: the session lock is not
        // reentrant, so handle calls inside the closure would deadlock.
        let f = cold_relation.characteristic().node_id();
        let outputs = cold_space.output_vars().to_vec();
        let num_inputs = cold_space.num_inputs() as u32;
        cold_space.mgr().with(|m| {
            let e = m.exists_many(f, &outputs);
            let a = m.forall_many(f, &outputs);
            let mut acc = e.index() + a.index();
            for v in 0..num_inputs {
                acc += m.cofactor(f, Var(v), true).index();
            }
            std::hint::black_box(acc);
        });
    }));

    // Warm-manager workloads share one manager across iterations, the way
    // the solvers hammer one manager during branch-and-bound; these measure
    // the persistent-cache hit path deliberately (the rebuilt kernel's
    // design point), while the cold benches above keep the compute path
    // honest.
    let (space, relation) = family::generate(&int9);
    let chi = relation.characteristic().clone();
    let num_vars = space.mgr().num_vars();
    let all_vars: Vec<Var> = (0..num_vars).map(Var::from).collect();
    let output_vars: Vec<Var> = space.output_vars().to_vec();

    benches.push(time("ite_products_int9", fast_iters, || {
        let total: usize = (0..output_vars.len())
            .map(|i| {
                let p = relation.projection(i);
                let f = p.on().xor(&chi).and(&p.upper()).or(p.on());
                f.size()
            })
            .sum();
        std::hint::black_box(total);
    }));

    benches.push(time("cofactor_sweep_int9", fast_iters, || {
        let mut acc = 0usize;
        let f = chi.node_id();
        space.mgr().with(|m| {
            for &v in &all_vars {
                acc += m.cofactor(f, v, false).index();
                acc += m.cofactor(f, v, true).index();
            }
        });
        std::hint::black_box(acc);
    }));

    benches.push(time("exists_outputs_int9", fast_iters, || {
        let f = chi.node_id();
        space.mgr().with(|m| {
            let e = m.exists_many(f, &output_vars);
            let a = m.forall_many(f, &output_vars);
            std::hint::black_box((e, a));
        });
    }));

    benches.push(time("restrict_assignment_int9", fast_iters, || {
        let f = chi.node_id();
        space.mgr().with(|m| {
            let assignment: Vec<(Var, bool)> = space
                .input_vars()
                .iter()
                .take(4)
                .enumerate()
                .map(|(i, &v)| (v, i % 2 == 0))
                .collect();
            std::hint::black_box(m.restrict_assignment(f, &assignment));
        });
    }));

    benches.push(time("support_size_int9", fast_iters, || {
        let f = chi.node_id();
        space.mgr().with(|m| {
            let s = m.size(f) + m.support(f).len() + m.shared_size(&[f, NodeId::ONE]);
            std::hint::black_box(s);
        });
    }));

    // Monotone variable renaming, the relation layer's "shift outputs after
    // inputs" workload, on a dedicated manager so the shifted region exists.
    let mut rename_mgr = BddManager::new(16);
    let rename_f = random_sop(&mut rename_mgr, 8, 120, 11);
    let shift: HashMap<Var, Var> = (0..8u32).map(|i| (Var(i), Var(i + 8))).collect();
    benches.push(time("rename_shift_16v", fast_iters, || {
        std::hint::black_box(rename_mgr.rename_vars(rename_f, &shift));
    }));

    // Lifecycle workloads. `gc_churn_int9` times the collecting kernel
    // under sustained build-and-drop churn; the one-shot peak comparison
    // against an append-only arena (auto-GC off) is recorded in the `gc`
    // block below. `sift_random_sop_24v` times a handle-built random SOP
    // plus one full sifting pass.
    benches.push(time("gc_churn_int9", iters, || {
        std::hint::black_box(churn_int9(true, CHURN_ROUNDS));
    }));
    let churn_gc = churn_int9(true, CHURN_ROUNDS);
    let churn_append = churn_int9(false, CHURN_ROUNDS);

    let sift_iters = iters.clamp(1, 5);
    let mut sift_before = 0u64;
    let mut sift_after = 0u64;
    benches.push(time("sift_random_sop_24v", sift_iters, || {
        let mgr = BddSession::new(24);
        let f = random_sop_handle(&mgr, 24, 48, 7);
        sift_before = f.size() as u64;
        mgr.reorder_sift();
        sift_after = f.size() as u64;
        std::hint::black_box(sift_after);
    }));

    let gc = vec![
        ("churn_rounds", CHURN_ROUNDS as u64),
        ("churn_peak_live_append_only", churn_append.peak_live_nodes),
        ("churn_peak_live_gc", churn_gc.peak_live_nodes),
        ("churn_collections", churn_gc.collections),
        ("churn_nodes_reclaimed", churn_gc.nodes_reclaimed),
        ("sift_nodes_before", sift_before),
        ("sift_nodes_after", sift_after),
    ];

    // Counters summed over every microbenchmark manager: the shared int9
    // space manager (ite/cofactor/quantification/restrict/support
    // workloads) plus the dedicated rename manager.
    let kernel = kernel_counters(&[space.mgr().cache_stats(), rename_mgr.cache_stats()]);

    // End-to-end: the seeded Table-2 + random-relation portfolio batch on a
    // single worker (so wall time is solver time, not scheduling noise).
    let jobs = engine_batch::corpus(&engine_batch::CorpusOptions {
        table2_instances: options.table2_instances,
        random_relations: options.random_relations,
        ..engine_batch::CorpusOptions::full()
    });
    let batch_start = Instant::now();
    let batch = engine_batch::run(&jobs, 1);
    let batch_wall_micros = brel_obs::wall_micros(batch_start);
    let batch_total_cost = batch.total_winner_cost();

    // End-to-end: the Table-1 ISF-minimization strategy sweep.
    let table1_instances = if options.table2_instances == usize::MAX {
        usize::MAX
    } else {
        options.table2_instances.min(4)
    };
    let t1_start = Instant::now();
    let rows = crate::table1::run(table1_instances);
    let table1_wall_micros = brel_obs::wall_micros(t1_start);
    std::hint::black_box(rows.len());

    KernelReport {
        label: options.label.clone(),
        benches,
        batch_jobs: batch.jobs.len(),
        batch_total_cost,
        batch_wall_micros,
        table1_wall_micros,
        kernel,
        gc,
    }
}

/// Sums the kernel's cache counters over the microbenchmark managers, as
/// ordered `(name, value)` pairs ready for JSON (gauges are omitted — a
/// sum of load factors or slot counts across managers means nothing).
fn kernel_counters(stats: &[CacheStats]) -> Vec<(&'static str, u64)> {
    let sum = |f: fn(&CacheStats) -> u64| stats.iter().map(f).sum();
    vec![
        ("unique_lookups", sum(|s| s.unique_lookups)),
        ("unique_hits", sum(|s| s.unique_hits)),
        ("cache_lookups", sum(|s| s.cache_lookups)),
        ("cache_hits", sum(|s| s.cache_hits)),
        ("cache_inserts", sum(|s| s.cache_inserts)),
        ("cache_evictions", sum(|s| s.cache_evictions)),
    ]
}

impl KernelReport {
    /// The JSON representation of one harness run.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("schema", Json::str("brel-bench/bdd-kernel-run-v1")),
            ("label", Json::str(&self.label)),
            (
                "benches",
                Json::Array(
                    self.benches
                        .iter()
                        .map(|b| {
                            Json::object(vec![
                                ("name", Json::str(b.name)),
                                ("iters", Json::UInt(b.iters as u64)),
                                ("total_micros", Json::UInt(b.total_micros())),
                                ("per_iter_nanos", Json::UInt(b.per_iter_nanos())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "end_to_end",
                Json::object(vec![
                    ("batch_jobs", Json::UInt(self.batch_jobs as u64)),
                    ("batch_total_cost", Json::UInt(self.batch_total_cost)),
                    ("batch_wall_micros", Json::UInt(self.batch_wall_micros)),
                    ("table1_wall_micros", Json::UInt(self.table1_wall_micros)),
                ]),
            ),
            (
                "kernel_counters",
                Json::Object(
                    self.kernel
                        .iter()
                        .map(|(k, v)| (k.to_string(), Json::UInt(*v)))
                        .collect(),
                ),
            ),
            (
                "gc",
                Json::Object(
                    self.gc
                        .iter()
                        .map(|(k, v)| (k.to_string(), Json::UInt(*v)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = format!("BDD kernel harness [{}]\n", self.label);
        for b in &self.benches {
            out.push_str(&format!(
                "{:26} {:>12} ns/iter  ({} iters)\n",
                b.name,
                b.per_iter_nanos(),
                b.iters
            ));
        }
        out.push_str(&format!(
            "table2_batch               {:>12} us  ({} jobs, total cost {})\n",
            self.batch_wall_micros, self.batch_jobs, self.batch_total_cost
        ));
        out.push_str(&format!(
            "table1_sweep               {:>12} us\n",
            self.table1_wall_micros
        ));
        for (name, value) in &self.gc {
            out.push_str(&format!("gc.{name:24} {value:>12}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_times_every_workload() {
        let options = KernelBenchOptions {
            iters: 1,
            table2_instances: 1,
            random_relations: 1,
            label: "test".into(),
        };
        let report = run(&options);
        assert_eq!(report.label, "test");
        assert_eq!(report.benches.len(), 11);
        assert!(report.benches.iter().all(|b| b.iters >= 1));
        assert_eq!(report.batch_jobs, 2);
        assert!(report.batch_total_cost > 0);
        let json = report.to_json().render();
        assert!(json.contains("\"schema\":\"brel-bench/bdd-kernel-run-v1\""));
        assert!(json.contains("build_random_sop_24v"));
        assert!(json.contains("batch_total_cost"));
        assert!(json.contains("gc_churn_int9"));
        assert!(json.contains("sift_random_sop_24v"));
        assert!(json.contains("churn_peak_live_gc"));
        let text = report.render();
        assert!(text.contains("table2_batch"));
        assert!(text.contains("gc.churn_peak_live_gc"));
    }

    #[test]
    fn gc_churn_peak_drops_at_least_3x_vs_append_only() {
        // The acceptance criterion of the lifecycle PR: on the churn
        // workload the collecting kernel's peak live node count is at
        // least 3x below the append-only kernel's, at identical results.
        let append_only = churn_int9(false, CHURN_ROUNDS);
        let collected = churn_int9(true, CHURN_ROUNDS);
        assert_eq!(append_only.collections, 0);
        assert!(collected.collections > 0);
        assert!(collected.nodes_reclaimed > 0);
        assert!(
            append_only.peak_live_nodes >= 3 * collected.peak_live_nodes,
            "peak {} (append-only) vs {} (GC): expected >= 3x reduction",
            append_only.peak_live_nodes,
            collected.peak_live_nodes
        );
    }

    #[test]
    fn per_iter_handles_zero_iters() {
        let b = BenchResult {
            name: "x",
            iters: 0,
            total_nanos: 5_000,
        };
        assert_eq!(b.per_iter_nanos(), 0);
        assert_eq!(b.total_micros(), 5);
    }
}
