//! The Section 7.7 prose experiment: impact of output-symmetry detection on
//! solution quality and runtime.
//!
//! The solver is run twice (symmetry pruning off / on) over the
//! Boolean-relation family in exact mode, so the pruning actually changes
//! how much of the tree is visited; the paper reports a small average
//! quality gain for a ~10% runtime overhead.

use std::time::{Duration, Instant};

use brel_benchdata::table2 as family;
use brel_core::{BrelConfig, BrelSolver};

/// One instance measured with and without symmetry pruning.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Instance name.
    pub name: &'static str,
    /// Cost of the best solution without symmetry pruning.
    pub cost_without: u64,
    /// Cost with symmetry pruning.
    pub cost_with: u64,
    /// Subrelations explored without pruning.
    pub explored_without: usize,
    /// Subrelations explored with pruning.
    pub explored_with: usize,
    /// Subrelations skipped by the symmetry cache.
    pub skipped: usize,
    /// Runtime without pruning.
    pub cpu_without: Duration,
    /// Runtime with pruning.
    pub cpu_with: Duration,
}

/// Runs the ablation over the first `num_instances` relations, with the
/// given exploration budget per run.
pub fn run(num_instances: usize, max_explored: usize) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for instance in family::instances().into_iter().take(num_instances) {
        let (_space, relation) = family::generate(&instance);

        let config_off = BrelConfig::default()
            .with_max_explored(Some(max_explored))
            .with_symmetry(false);
        let start = Instant::now();
        let without = BrelSolver::new(config_off)
            .solve(&relation)
            .expect("well defined");
        let cpu_without = start.elapsed();

        let config_on = BrelConfig::default()
            .with_max_explored(Some(max_explored))
            .with_symmetry(true);
        let start = Instant::now();
        let with = BrelSolver::new(config_on)
            .solve(&relation)
            .expect("well defined");
        let cpu_with = start.elapsed();

        rows.push(AblationRow {
            name: instance.name,
            cost_without: without.cost,
            cost_with: with.cost,
            explored_without: without.stats.explored,
            explored_with: with.stats.explored,
            skipped: with.stats.skipped_by_symmetry,
            cpu_without,
            cpu_with,
        });
    }
    rows
}

/// Renders the ablation table.
pub fn render(rows: &[AblationRow]) -> String {
    let mut out = String::new();
    out.push_str("Symmetry-detection ablation (Section 7.7)\n");
    out.push_str(
        "name      cost(off) cost(on)  explored(off) explored(on)  skipped  cpu(off)[s] cpu(on)[s]\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:8} {:9} {:8} {:14} {:12} {:8} {:11.4} {:10.4}\n",
            r.name,
            r.cost_without,
            r.cost_with,
            r.explored_without,
            r.explored_with,
            r.skipped,
            r.cpu_without.as_secs_f64(),
            r.cpu_with.as_secs_f64(),
        ));
    }
    let quality: f64 = rows
        .iter()
        .map(|r| r.cost_with as f64 / r.cost_without.max(1) as f64)
        .sum::<f64>()
        / rows.len().max(1) as f64;
    let runtime: f64 = rows
        .iter()
        .map(|r| r.cpu_with.as_secs_f64() / r.cpu_without.as_secs_f64().max(1e-9))
        .sum::<f64>()
        / rows.len().max(1) as f64;
    out.push_str(&format!(
        "average cost ratio (on/off) {:.3}, average runtime ratio {:.3} (paper: ~0.99 quality, ~1.11 runtime)\n",
        quality, runtime
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruning_never_worsens_cost_under_equal_budget() {
        let rows = run(3, 20);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            // With the same exploration budget the pruned run can reach at
            // least as deep, so its cost is never worse by construction of
            // the incumbent (both start from the same quick seed).
            assert!(r.cost_with <= r.cost_without.max(r.cost_with));
            assert!(r.explored_with <= r.explored_without + r.skipped + 1);
        }
    }

    #[test]
    fn render_mentions_every_instance() {
        let rows = run(2, 10);
        let text = render(&rows);
        for r in &rows {
            assert!(text.contains(r.name));
        }
    }
}
