//! The search-strategy comparison harness: runs the same workloads through
//! every [`SearchStrategy`] (FIFO / DFS / best-first) so the frontier
//! disciplines can be measured against each other, and emits one labelled
//! JSON run for the `BENCH_search.json` trajectory.
//!
//! Three workload families per strategy:
//!
//! * **batch** — the Table-2 family plus seeded random relations, solved by
//!   the BREL backend alone on one engine worker (so `explored`, `splits`
//!   and `frontier_peak` are the strategy's own footprint, and
//!   `total_cost` doubles as the determinism fingerprint for the default
//!   FIFO strategy);
//! * **fig10** — the paper's Section 9.1 local-minimum relation in exact
//!   mode: every strategy must land on the cost-2 optimum, and best-first
//!   must get there with no more explored subrelations than FIFO (the
//!   bounding payoff);
//! * **churn** — a `gc_churn`-class memory workload: one Table-2 instance
//!   explored under a deep budget with a small GC threshold, where the
//!   strategies' frontier shapes (DFS's stack vs. BFS's queue) show up as
//!   different peak live-node counts.
//!
//! A **wide** block re-runs the batch in the engine's wide mode (the
//! asynchronous work-stealing search) on 1 and 4 workers and records that
//! the timing-free outputs agree — the determinism demonstration the CI
//! smoke re-checks per PR. Each wide number carries the provenance tag of
//! the corpus it was measured on.
//!
//! A **hard** block (full runs only) solves the checked-in hard corpus
//! ([`engine_batch::hard_corpus`], tag
//! [`engine_batch::HARD_CORPUS_NAME`]) sequentially and then wide on 8
//! workers: the sequential solve takes on the order of a second, long
//! enough for the stealing workers to win outright. It records both
//! walls, the speedup, and that every job's winning cost matched across
//! the two modes — the CI perf gate asserts wide ≤ sequential here.
//!
//! A **reuse** block (once per run, not per strategy) measures what the
//! engine's warm pool buys: the FIFO portfolio corpus, with every job
//! submitted twice, solved cold (one manager per job, reuse off) and then
//! warm (per-worker sessions + the solved-subrelation cache). It records
//! both wall clocks, the reuse counters, and that the timing-free outputs
//! were byte-identical — the cache is a pure speedup or it is a bug.
//!
//! An **obs** block (once per run) re-runs the FIFO wide batch under a
//! [`brel_obs::RecordingCollector`] and records the wide-mode phase
//! breakdown (seed / drive / expand / steal-build / idle / rehydrate,
//! with total and self times), the steal count, the share of the
//! coordinator track's `wide_solve` time attributed to named phases, the
//! disabled-span cost, and the traced-vs-untraced walls — pinning both
//! the attribution and the zero-overhead contracts in the trajectory
//! file.
//!
//! A **chaos** block (once per run) fires a seeded [`brel_engine::FaultPlan`]
//! — one panic, one quota trip, one step deadline on three distinct jobs —
//! into the FIFO portfolio corpus and records the fault-tolerance
//! contracts: every injection fired, every targeted job came back with a
//! structured non-`solved` outcome *and* a recovered solution, faulted
//! sessions were quarantined, the chaos run itself is worker-count
//! invariant, and the untargeted jobs' timing-free reports are
//! byte-identical to a no-fault run (fault isolation is perfect or it is
//! a bug).

use std::sync::Arc;
use std::time::Instant;

use brel_benchdata::figures;
use brel_benchdata::table2 as family;
use brel_core::{BrelConfig, BrelSolver, SearchStrategy};
use brel_engine::{BackendKind, FaultPlan, JobOutcome, JobSpec, Json, WideOptions};

use crate::engine_batch::{self, CorpusOptions};

/// The wide configuration every harness measurement uses: a modest
/// speculation window, default steal threshold, no stagger.
fn wide_options() -> WideOptions {
    WideOptions {
        lookahead: 4,
        ..WideOptions::default()
    }
}

/// Harness configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchBenchOptions {
    /// Table-2 instances in the batch workload.
    pub table2_instances: usize,
    /// Seeded random relations in the batch workload.
    pub random_relations: usize,
    /// Exploration budget of the churn workload.
    pub churn_budget: usize,
    /// Whether to run the hard wide-vs-sequential workload (skipped by
    /// the smoke preset: its sequential leg alone takes about a second).
    pub hard: bool,
    /// Label recorded in the emitted JSON (names the solver generation).
    pub label: String,
}

impl SearchBenchOptions {
    /// The full measurement configuration.
    pub fn full(label: impl Into<String>) -> Self {
        SearchBenchOptions {
            table2_instances: usize::MAX,
            random_relations: 8,
            churn_budget: 200,
            hard: true,
            label: label.into(),
        }
    }

    /// The CI smoke configuration: a small batch and a shallow churn budget
    /// so the harness finishes in seconds.
    pub fn smoke(label: impl Into<String>) -> Self {
        SearchBenchOptions {
            table2_instances: 4,
            random_relations: 2,
            churn_budget: 40,
            hard: false,
            label: label.into(),
        }
    }
}

/// Aggregated metrics of one strategy's batch run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchMetrics {
    /// Sum of the winning costs (the determinism fingerprint).
    pub total_cost: u64,
    /// Sum of subrelations explored by the BREL attempts.
    pub explored: u64,
    /// Sum of splits performed by the BREL attempts.
    pub splits: u64,
    /// Largest pending-subproblem high-water mark over the batch.
    pub frontier_peak: u64,
    /// Wall time of the batch on one worker, in microseconds.
    pub wall_micros: u64,
}

/// One strategy's full measurement row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrategyRow {
    /// The strategy measured.
    pub strategy: SearchStrategy,
    /// The single-backend batch workload.
    pub batch: BatchMetrics,
    /// Fig. 10 exact mode: (cost, explored).
    pub fig10_cost: u64,
    /// Fig. 10 exact mode: subrelations explored to prove the optimum.
    pub fig10_explored: u64,
    /// Churn workload: peak live BDD nodes (the frontier's memory shape).
    pub churn_peak_live_nodes: u64,
    /// Churn workload: pending-subproblem high-water mark.
    pub churn_frontier_peak: u64,
    /// Churn workload: kernel collections triggered.
    pub churn_gc_collections: u64,
    /// Churn workload: incumbent cost when the budget ran out.
    pub churn_cost: u64,
    /// Wide mode (4 workers): total winner cost — must equal the 1-worker
    /// wide run's, recorded to pin the determinism demonstration.
    pub wide_total_cost: u64,
    /// Wide mode: whether the 1-worker and 4-worker timing-free outputs
    /// were byte-identical.
    pub wide_deterministic: bool,
    /// Wide mode (4 workers): batch wall time in microseconds.
    pub wide_wall_micros: u64,
}

/// The warm-vs-cold measurement: the same doubled corpus solved with
/// cross-job reuse off and then on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReuseMetrics {
    /// Jobs in the doubled corpus.
    pub num_jobs: u64,
    /// Wall time with reuse off (cold manager per job), microseconds.
    pub cold_wall_micros: u64,
    /// Wall time with reuse on (warm pool + subrelation cache), microseconds.
    pub warm_wall_micros: u64,
    /// Warm-session resets counted by the warm run.
    pub warm_reuses: u64,
    /// Cold manager builds counted by the warm run.
    pub cold_builds: u64,
    /// Solved-subrelation cache hits in the warm run.
    pub subrel_cache_hits: u64,
    /// Solved-subrelation cache misses in the warm run.
    pub subrel_cache_misses: u64,
    /// Total winner cost (shared by both runs when `identical_output`).
    pub total_cost: u64,
    /// Whether the cold and warm timing-free outputs were byte-identical.
    pub identical_output: bool,
}

/// One phase of the wide-mode breakdown in the [`ObsMetrics`] block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsPhase {
    /// The phase name (an engine/session span name).
    pub name: &'static str,
    /// Completed span count over the traced batch.
    pub count: u64,
    /// Total wall time across all spans of the phase, microseconds.
    pub total_us: u64,
    /// Self time (total minus directly nested spans), microseconds.
    pub self_us: u64,
}

/// The observability measurement: the FIFO wide batch traced end to end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsMetrics {
    /// Wall of the traced wide run (4 workers), microseconds.
    pub traced_wall_micros: u64,
    /// Wall of the identical untraced run, microseconds.
    pub untraced_wall_micros: u64,
    /// Per-call cost of a disabled span, nanoseconds (the zero-overhead
    /// contract, measured with no collector installed).
    pub disabled_span_ns: u64,
    /// Cross-worker steals across the traced batch (subproblems shipped
    /// as rows to a worker that did not create them).
    pub steals: u64,
    /// Percent of the coordinator track's `wide_solve` time attributed
    /// to its named phases (seed + the parallel section), rounded down.
    /// Computed per-track so concurrent workers' time cannot inflate it
    /// past 100.
    pub attributed_pct: u64,
    /// Whether the traced and untraced timing-free outputs were
    /// byte-identical (tracing is write-only or it is a bug).
    pub identical_output: bool,
    /// The wide-mode phase breakdown, in call-structure order.
    pub phases: Vec<ObsPhase>,
}

/// The hard wide-vs-sequential measurement: the checked-in hard corpus
/// solved sequentially and then by the work-stealing wide mode on 8
/// workers. The corpus is sized so the sequential leg takes on the order
/// of a second — long enough that the wide walk's coordination overhead
/// is noise and the measured ratio is the parallel speedup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HardMetrics {
    /// Provenance tag of the corpus both walls were measured on.
    pub corpus: &'static str,
    /// Jobs in the corpus.
    pub num_jobs: u64,
    /// Total winner cost (shared by both runs when `cost_parity`).
    pub total_cost: u64,
    /// Wall of the sequential run (1 worker, narrow mode), microseconds.
    pub sequential_wall_micros: u64,
    /// Wall of the wide run (8 workers), microseconds.
    pub wide_wall_micros: u64,
    /// Whether every job's winning cost matched between the sequential
    /// and the wide run (wide mode is a speedup at equal cost or it is a
    /// bug). Full-output byte identity is asserted *across wide worker
    /// counts*, not across modes: wide scopes its kernel cache/GC
    /// counters to the deterministic seed phase, so those stat blocks
    /// legitimately differ from a narrow run's.
    pub cost_parity: bool,
}

/// The fault-tolerance measurement: a seeded fault plan fired into the
/// FIFO portfolio corpus, with every contract recorded as data so the run
/// (and the CI gate over it) can prove the engine degrades instead of
/// failing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosMetrics {
    /// Seed of the injected [`FaultPlan`].
    pub seed: u64,
    /// Injections the plan carried (one per [`brel_engine::FaultKind`],
    /// clamped to the corpus size).
    pub injections: u64,
    /// Injections that actually fired — must equal `injections`.
    pub fired: u64,
    /// Jobs whose outcome was not `solved` — must equal `injections`
    /// (every fault is attributed, no fault leaks onto a clean job).
    pub non_solved: u64,
    /// Whether every targeted job still produced a verified solution
    /// (the degradation ladder or surviving portfolio attempts won).
    pub all_recovered: bool,
    /// Warm sessions quarantined and rebuilt cold by the 2-worker chaos run.
    pub quarantines: u64,
    /// Whether the 1- and 2-worker chaos runs' timing-free outputs were
    /// byte-identical (fault injection preserves determinism).
    pub deterministic: bool,
    /// Whether every *untargeted* job's timing-free report was
    /// byte-identical to the no-fault run (fault isolation).
    pub clean_identical: bool,
}

/// The complete harness output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchReport {
    /// The configuration label.
    pub label: String,
    /// One row per strategy, in [`SearchStrategy::all`] order.
    pub rows: Vec<StrategyRow>,
    /// The warm-vs-cold engine measurement (once per run).
    pub reuse: ReuseMetrics,
    /// The traced wide-mode phase breakdown (once per run).
    pub obs: ObsMetrics,
    /// The seeded fault-injection measurement (once per run).
    pub chaos: ChaosMetrics,
    /// The hard wide-vs-sequential measurement (full runs only).
    pub hard: Option<HardMetrics>,
}

/// Brel-only jobs over the harness corpus (the portfolio's quick/gyocro
/// attempts would dilute the strategy signal).
fn brel_jobs(options: &SearchBenchOptions, strategy: SearchStrategy) -> Vec<JobSpec> {
    engine_batch::corpus(&CorpusOptions {
        table2_instances: options.table2_instances,
        random_relations: options.random_relations,
        strategy,
        ..CorpusOptions::full()
    })
    .into_iter()
    .map(|mut job| {
        job.backends = vec![BackendKind::Brel];
        job
    })
    .collect()
}

fn batch_metrics(jobs: &[JobSpec]) -> BatchMetrics {
    let start = Instant::now();
    let report = engine_batch::run(jobs, 1);
    let wall_micros = brel_obs::wall_micros(start);
    let brel_attempts = || {
        report
            .jobs
            .iter()
            .flat_map(|j| j.attempts.iter())
            .filter(|a| a.backend == BackendKind::Brel)
    };
    BatchMetrics {
        total_cost: report.total_winner_cost(),
        explored: brel_attempts().map(|a| a.explored as u64).sum(),
        splits: brel_attempts().map(|a| a.splits as u64).sum(),
        frontier_peak: brel_attempts()
            .map(|a| a.frontier_peak as u64)
            .max()
            .unwrap_or(0),
        wall_micros,
    }
}

/// The churn-class workload: one Table-2 instance under a deep exploration
/// budget and a small GC threshold, so the frontier's rooted subrelations
/// are what keeps nodes alive between sweeps.
fn churn_metrics(strategy: SearchStrategy, budget: usize) -> (u64, u64, u64, u64) {
    let instance = family::instance("int9").expect("known instance");
    let (_space, relation) = family::generate_with_config(
        &instance,
        brel_bdd::BddConfig::from_env().gc_min_nodes(1024),
    );
    let config = BrelConfig::default()
        .with_strategy(strategy)
        .with_max_explored(Some(budget))
        .with_fifo_capacity(None);
    let solution = BrelSolver::new(config)
        .solve(&relation)
        .expect("table-2 instances are well defined");
    (
        solution.stats.peak_live_nodes,
        solution.stats.frontier_peak as u64,
        solution.stats.gc_collections,
        solution.cost,
    )
}

/// The warm-vs-cold workload: the FIFO portfolio corpus with every job
/// submitted twice (second copies renamed), so warm runs hit both reuse
/// layers — session resets across distinct jobs and whole-portfolio cache
/// hits on the duplicates.
fn reuse_metrics(options: &SearchBenchOptions) -> ReuseMetrics {
    let base = engine_batch::corpus(&CorpusOptions {
        table2_instances: options.table2_instances,
        random_relations: options.random_relations,
        ..CorpusOptions::full()
    });
    let mut jobs = base.clone();
    for job in base {
        let name = format!("{}_again", job.name);
        jobs.push(JobSpec { name, ..job });
    }
    let workers = 2;
    let cold_start = Instant::now();
    let cold = engine_batch::run_cold(&jobs, workers);
    let cold_wall_micros = brel_obs::wall_micros(cold_start);
    let warm_start = Instant::now();
    let warm = engine_batch::run(&jobs, workers);
    let warm_wall_micros = brel_obs::wall_micros(warm_start);
    ReuseMetrics {
        num_jobs: jobs.len() as u64,
        cold_wall_micros,
        warm_wall_micros,
        warm_reuses: warm.reuse.warm_reuses,
        cold_builds: warm.reuse.cold_builds,
        subrel_cache_hits: warm.reuse.subrel_cache_hits,
        subrel_cache_misses: warm.reuse.subrel_cache_misses,
        total_cost: warm.total_winner_cost(),
        identical_output: cold.to_json(false) == warm.to_json(false)
            && cold.to_csv(false) == warm.to_csv(false),
    }
}

/// The observability workload: the FIFO wide batch run untraced and then
/// under a full [`brel_obs::RecordingCollector`], so the trajectory pins
/// the wide-mode phase breakdown, the attribution share, and the cost of
/// both the enabled and the disabled instrumentation paths.
fn obs_metrics(options: &SearchBenchOptions) -> ObsMetrics {
    let jobs = brel_jobs(options, SearchStrategy::Fifo);

    let untraced_start = Instant::now();
    let untraced = engine_batch::run_wide(&jobs, 4, wide_options());
    let untraced_wall_micros = brel_obs::wall_micros(untraced_start);

    let collector = Arc::new(brel_obs::RecordingCollector::new());
    brel_obs::install(collector.clone());
    let traced_start = Instant::now();
    let traced = engine_batch::run_wide(&jobs, 4, wide_options());
    let traced_wall_micros = brel_obs::wall_micros(traced_start);
    brel_obs::uninstall();

    let report = collector.phase_report();
    // The wide phases in call-structure order: per-job solve, its seed,
    // then each worker's drive loop and the stages inside it.
    let phases = [
        "wide_solve",
        "seed",
        "parallel",
        "drive",
        "expand",
        "steal_build",
        "idle",
        "prepare",
        "rehydrate",
        "reset",
    ]
    .iter()
    .filter_map(|&name| {
        report
            .rows
            .iter()
            .find(|row| row.name == name)
            .map(|row| ObsPhase {
                name,
                count: row.count,
                total_us: row.total_us,
                self_us: row.self_us,
            })
    })
    .collect::<Vec<_>>();
    // Attribution is per-track: on the coordinator's track the seed and
    // the parallel section (worker spawn, the inline worker's drive,
    // join) nest directly under `wide_solve`, so their share is
    // meaningful (concurrent workers' drive time lives on their own
    // tracks and is excluded).
    let (wide_solve_us, attributed_us) = report
        .track_with("wide_solve")
        .map(|t| {
            (
                t.total_us("wide_solve"),
                t.total_us("seed") + t.total_us("parallel"),
            )
        })
        .unwrap_or((0, 0));
    ObsMetrics {
        traced_wall_micros,
        untraced_wall_micros,
        disabled_span_ns: brel_obs::disabled_span_ns(),
        steals: collector
            .events()
            .iter()
            .filter(|e| e.name == "steal")
            .count() as u64,
        attributed_pct: (attributed_us * 100)
            .checked_div(wide_solve_us)
            .unwrap_or(0),
        identical_output: untraced.to_json(false) == traced.to_json(false)
            && untraced.to_csv(false) == traced.to_csv(false),
        phases,
    }
}

/// The hard workload: the checked-in hard corpus solved sequentially and
/// then wide on 8 workers. Every job must land on the same winning cost;
/// the walls are the wide-vs-sequential comparison the CI perf gate
/// asserts on.
fn hard_metrics() -> HardMetrics {
    let jobs = engine_batch::hard_corpus();
    let sequential_start = Instant::now();
    let sequential = engine_batch::run(&jobs, 1);
    let sequential_wall_micros = brel_obs::wall_micros(sequential_start);
    let wide_start = Instant::now();
    let wide = engine_batch::run_wide(&jobs, 8, wide_options());
    let wide_wall_micros = brel_obs::wall_micros(wide_start);
    let cost_parity = sequential.jobs.len() == wide.jobs.len()
        && sequential
            .jobs
            .iter()
            .zip(&wide.jobs)
            .all(|(s, w)| s.winning().map(|a| a.cost) == w.winning().map(|a| a.cost));
    HardMetrics {
        corpus: engine_batch::HARD_CORPUS_NAME,
        num_jobs: jobs.len() as u64,
        total_cost: wide.total_winner_cost(),
        sequential_wall_micros,
        wide_wall_micros,
        cost_parity,
    }
}

/// The chaos workload: the FIFO portfolio corpus under a seeded
/// [`FaultPlan`], run at 1 and 2 workers (a fresh plan each — injections
/// are armed-once) and compared against a no-fault reference. Everything
/// recorded is deterministic in `(seed, corpus)`.
fn chaos_metrics(options: &SearchBenchOptions) -> ChaosMetrics {
    let jobs = engine_batch::corpus(&CorpusOptions {
        table2_instances: options.table2_instances,
        random_relations: options.random_relations,
        ..CorpusOptions::full()
    });
    let names: Vec<&str> = jobs.iter().map(|j| j.name.as_str()).collect();
    let seed = 29;
    let clean = engine_batch::run(&jobs, 2);
    let chaos_run = |workers: usize| {
        let plan = Arc::new(FaultPlan::seeded(seed, &names));
        (engine_batch::run_chaos(&jobs, workers, plan.clone()), plan)
    };
    let (two, plan) = chaos_run(2);
    let (one, _) = chaos_run(1);
    let targets = plan.targets();
    let non_solved = two
        .jobs
        .iter()
        .filter(|j| j.outcome != Some(JobOutcome::Solved))
        .count() as u64;
    let all_recovered = two
        .jobs
        .iter()
        .filter(|j| targets.contains(&j.name.as_str()))
        .all(|j| j.winner.is_some());
    let clean_identical = two
        .jobs
        .iter()
        .zip(clean.jobs.iter())
        .filter(|(j, _)| !targets.contains(&j.name.as_str()))
        .all(|(chaotic, reference)| {
            chaotic.to_json(false).render() == reference.to_json(false).render()
        });
    ChaosMetrics {
        seed,
        injections: plan.injections().len() as u64,
        fired: plan.num_fired() as u64,
        non_solved,
        all_recovered,
        quarantines: two.reuse.quarantines,
        deterministic: one.to_json(false) == two.to_json(false)
            && one.to_csv(false) == two.to_csv(false),
        clean_identical,
    }
}

/// Runs the harness and collects the report.
pub fn run(options: &SearchBenchOptions) -> SearchReport {
    let mut rows = Vec::new();
    for strategy in SearchStrategy::all() {
        let jobs = brel_jobs(options, strategy);
        let batch = batch_metrics(&jobs);

        // Fig. 10 exact mode: the bounding payoff on the paper's example.
        let (_space, fig10) = figures::fig10();
        let solution = BrelSolver::new(BrelConfig::exact().with_strategy(strategy))
            .solve(&fig10)
            .expect("fig10 is well defined");
        let (fig10_cost, fig10_explored) = (solution.cost, solution.stats.explored as u64);

        let (churn_peak_live_nodes, churn_frontier_peak, churn_gc_collections, churn_cost) =
            churn_metrics(strategy, options.churn_budget);

        // Wide mode: 1 vs 4 workers must agree byte for byte.
        let wide_start = Instant::now();
        let wide4 = engine_batch::run_wide(&jobs, 4, wide_options());
        let wide_wall_micros = brel_obs::wall_micros(wide_start);
        let wide1 = engine_batch::run_wide(&jobs, 1, wide_options());
        rows.push(StrategyRow {
            strategy,
            batch,
            fig10_cost,
            fig10_explored,
            churn_peak_live_nodes,
            churn_frontier_peak,
            churn_gc_collections,
            churn_cost,
            wide_total_cost: wide4.total_winner_cost(),
            wide_deterministic: wide1.to_json(false) == wide4.to_json(false),
            wide_wall_micros,
        });
    }
    SearchReport {
        label: options.label.clone(),
        rows,
        reuse: reuse_metrics(options),
        obs: obs_metrics(options),
        chaos: chaos_metrics(options),
        hard: options.hard.then(hard_metrics),
    }
}

impl SearchReport {
    /// The JSON representation of one harness run.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema", Json::str("brel-bench/search-strategies-run-v4")),
            ("label", Json::str(&self.label)),
            (
                "strategies",
                Json::Array(
                    self.rows
                        .iter()
                        .map(|row| {
                            Json::object(vec![
                                ("strategy", Json::str(row.strategy.name())),
                                (
                                    "batch",
                                    Json::object(vec![
                                        ("total_cost", Json::UInt(row.batch.total_cost)),
                                        ("explored", Json::UInt(row.batch.explored)),
                                        ("splits", Json::UInt(row.batch.splits)),
                                        ("frontier_peak", Json::UInt(row.batch.frontier_peak)),
                                        ("wall_micros", Json::UInt(row.batch.wall_micros)),
                                    ]),
                                ),
                                (
                                    "fig10_exact",
                                    Json::object(vec![
                                        ("cost", Json::UInt(row.fig10_cost)),
                                        ("explored", Json::UInt(row.fig10_explored)),
                                    ]),
                                ),
                                (
                                    "churn",
                                    Json::object(vec![
                                        ("peak_live_nodes", Json::UInt(row.churn_peak_live_nodes)),
                                        ("frontier_peak", Json::UInt(row.churn_frontier_peak)),
                                        ("gc_collections", Json::UInt(row.churn_gc_collections)),
                                        ("cost", Json::UInt(row.churn_cost)),
                                    ]),
                                ),
                                (
                                    "wide",
                                    Json::object(vec![
                                        ("corpus", Json::str(engine_batch::DEFAULT_CORPUS_NAME)),
                                        ("total_cost", Json::UInt(row.wide_total_cost)),
                                        ("deterministic", Json::Bool(row.wide_deterministic)),
                                        ("wall_micros", Json::UInt(row.wide_wall_micros)),
                                    ]),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "reuse",
                Json::object(vec![
                    ("num_jobs", Json::UInt(self.reuse.num_jobs)),
                    ("cold_wall_micros", Json::UInt(self.reuse.cold_wall_micros)),
                    ("warm_wall_micros", Json::UInt(self.reuse.warm_wall_micros)),
                    ("warm_reuses", Json::UInt(self.reuse.warm_reuses)),
                    ("cold_builds", Json::UInt(self.reuse.cold_builds)),
                    (
                        "subrel_cache_hits",
                        Json::UInt(self.reuse.subrel_cache_hits),
                    ),
                    (
                        "subrel_cache_misses",
                        Json::UInt(self.reuse.subrel_cache_misses),
                    ),
                    ("total_cost", Json::UInt(self.reuse.total_cost)),
                    ("identical_output", Json::Bool(self.reuse.identical_output)),
                ]),
            ),
            (
                "obs",
                Json::object(vec![
                    (
                        "traced_wall_micros",
                        Json::UInt(self.obs.traced_wall_micros),
                    ),
                    (
                        "untraced_wall_micros",
                        Json::UInt(self.obs.untraced_wall_micros),
                    ),
                    ("disabled_span_ns", Json::UInt(self.obs.disabled_span_ns)),
                    ("steals", Json::UInt(self.obs.steals)),
                    ("attributed_pct", Json::UInt(self.obs.attributed_pct)),
                    ("identical_output", Json::Bool(self.obs.identical_output)),
                    (
                        "phases",
                        Json::Array(
                            self.obs
                                .phases
                                .iter()
                                .map(|phase| {
                                    Json::object(vec![
                                        ("name", Json::str(phase.name)),
                                        ("count", Json::UInt(phase.count)),
                                        ("total_micros", Json::UInt(phase.total_us)),
                                        ("self_micros", Json::UInt(phase.self_us)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "chaos",
                Json::object(vec![
                    ("seed", Json::UInt(self.chaos.seed)),
                    ("injections", Json::UInt(self.chaos.injections)),
                    ("fired", Json::UInt(self.chaos.fired)),
                    ("non_solved", Json::UInt(self.chaos.non_solved)),
                    ("all_recovered", Json::Bool(self.chaos.all_recovered)),
                    ("quarantines", Json::UInt(self.chaos.quarantines)),
                    ("deterministic", Json::Bool(self.chaos.deterministic)),
                    ("clean_identical", Json::Bool(self.chaos.clean_identical)),
                ]),
            ),
        ];
        if let Some(hard) = &self.hard {
            fields.push((
                "hard",
                Json::object(vec![
                    ("corpus", Json::str(hard.corpus)),
                    ("num_jobs", Json::UInt(hard.num_jobs)),
                    ("total_cost", Json::UInt(hard.total_cost)),
                    (
                        "sequential_wall_micros",
                        Json::UInt(hard.sequential_wall_micros),
                    ),
                    ("wide_wall_micros", Json::UInt(hard.wide_wall_micros)),
                    ("cost_parity", Json::Bool(hard.cost_parity)),
                ]),
            ));
        }
        Json::object(fields)
    }

    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = format!("Search-strategy harness [{}]\n", self.label);
        out.push_str(
            "strategy    batch_cost expl split  peak    wall[s] | fig10 expl | churn_peak front | wide_cost det\n",
        );
        for row in &self.rows {
            out.push_str(&format!(
                "{:11} {:10} {:4} {:5} {:5} {:10.4} | {:5} {:4} | {:10} {:5} | {:9} {}\n",
                row.strategy.name(),
                row.batch.total_cost,
                row.batch.explored,
                row.batch.splits,
                row.batch.frontier_peak,
                row.batch.wall_micros as f64 / 1e6,
                row.fig10_cost,
                row.fig10_explored,
                row.churn_peak_live_nodes,
                row.churn_frontier_peak,
                row.wide_total_cost,
                if row.wide_deterministic {
                    "ok"
                } else {
                    "DRIFT"
                },
            ));
        }
        out.push_str(&format!(
            "reuse: {} jobs, cold {:.4}s -> warm {:.4}s ({} warm resets, {} cache hits, output {})\n",
            self.reuse.num_jobs,
            self.reuse.cold_wall_micros as f64 / 1e6,
            self.reuse.warm_wall_micros as f64 / 1e6,
            self.reuse.warm_reuses,
            self.reuse.subrel_cache_hits,
            if self.reuse.identical_output {
                "identical"
            } else {
                "DRIFT"
            },
        ));
        out.push_str(&format!(
            "obs: wide traced {:.4}s vs untraced {:.4}s, {} steals, {}% of wide_solve attributed, disabled span {} ns, output {}\n",
            self.obs.traced_wall_micros as f64 / 1e6,
            self.obs.untraced_wall_micros as f64 / 1e6,
            self.obs.steals,
            self.obs.attributed_pct,
            self.obs.disabled_span_ns,
            if self.obs.identical_output {
                "identical"
            } else {
                "DRIFT"
            },
        ));
        out.push_str(&format!(
            "chaos: seed {}, {}/{} injections fired, {} non-solved, {} quarantines, recovery {}, workers {}, clean jobs {}\n",
            self.chaos.seed,
            self.chaos.fired,
            self.chaos.injections,
            self.chaos.non_solved,
            self.chaos.quarantines,
            if self.chaos.all_recovered { "ok" } else { "FAILED" },
            if self.chaos.deterministic {
                "deterministic"
            } else {
                "DRIFT"
            },
            if self.chaos.clean_identical {
                "identical"
            } else {
                "POLLUTED"
            },
        ));
        if let Some(hard) = &self.hard {
            out.push_str(&format!(
                "hard[{}]: {} jobs, sequential {:.4}s -> wide(8) {:.4}s ({:.2}x, cost {}, output {})\n",
                hard.corpus,
                hard.num_jobs,
                hard.sequential_wall_micros as f64 / 1e6,
                hard.wide_wall_micros as f64 / 1e6,
                hard.sequential_wall_micros as f64 / hard.wide_wall_micros.max(1) as f64,
                hard.total_cost,
                if hard.cost_parity { "cost-parity" } else { "COST DRIFT" },
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_measures_every_strategy() {
        let options = SearchBenchOptions {
            table2_instances: 1,
            random_relations: 1,
            churn_budget: 5,
            hard: false,
            label: "test".into(),
        };
        let report = run(&options);
        assert_eq!(report.rows.len(), 3);
        assert_eq!(report.rows[0].strategy, SearchStrategy::Fifo);
        for row in &report.rows {
            // Every strategy proves the fig10 optimum in exact mode.
            assert_eq!(row.fig10_cost, 2);
            assert!(row.wide_deterministic, "{} wide drifted", row.strategy);
            assert!(row.batch.explored >= 1);
        }
        // The bounding payoff: best-first never explores more than FIFO on
        // fig10 (the acceptance criterion the full run pins).
        let fifo = &report.rows[0];
        let best = &report.rows[2];
        assert!(best.fig10_explored <= fifo.fig10_explored);
        let json = report.to_json().render();
        assert!(json.contains("\"schema\":\"brel-bench/search-strategies-run-v4\""));
        assert!(json.contains("\"corpus\":\"table2+rand5x3\""));
        assert!(json.contains("\"fig10_exact\""));
        assert!(json.contains("\"churn\""));
        assert!(json.contains("\"subrel_cache_hits\""));
        assert!(json.contains("\"attributed_pct\""));
        assert!(json.contains("\"chaos\""));
        assert!(json.contains("\"clean_identical\""));
        let text = report.render();
        assert!(text.contains("best-first"));
        assert!(text.contains("reuse:"));
        assert!(text.contains("obs:"));
        assert!(text.contains("chaos:"));
        // The warm pool is invisible in the output and the duplicated
        // corpus guarantees cache traffic.
        assert!(report.reuse.identical_output);
        assert!(report.reuse.subrel_cache_hits >= 1);
        assert_eq!(report.reuse.num_jobs, 4); // 2 base jobs, doubled
                                              // Tracing the wide batch is write-only, catches every round, and
                                              // attributes the wide solve to its seed/round phases.
        assert!(report.obs.identical_output);
        assert!(
            report.obs.attributed_pct >= 90,
            "attributed {}%",
            report.obs.attributed_pct
        );
        // The work-stealing walk has no rounds and no barrier: the old
        // barrier_wait phase must be gone for good, and the whole batch
        // rehydrates once per wide solve (in its seed), not per steal.
        assert!(report.obs.phases.iter().any(|p| p.name == "wide_solve"));
        assert!(report.obs.phases.iter().all(|p| p.name != "barrier_wait"));
        let wide_solves = report
            .obs
            .phases
            .iter()
            .find(|p| p.name == "wide_solve")
            .map_or(0, |p| p.count);
        if let Some(rehydrate) = report.obs.phases.iter().find(|p| p.name == "rehydrate") {
            assert!(
                rehydrate.count <= wide_solves,
                "{} rehydrates across {} wide solves",
                rehydrate.count,
                wide_solves
            );
        }
        // Every chaos contract holds on the tiny corpus: the plan clamps to
        // the corpus size, fires completely, attributes every fault, keeps
        // recovered solutions, and leaves clean jobs untouched.
        assert_eq!(report.chaos.injections, 2); // 2 jobs -> 2 fault kinds
        assert_eq!(report.chaos.fired, report.chaos.injections);
        assert_eq!(report.chaos.non_solved, report.chaos.injections);
        assert!(report.chaos.all_recovered);
        assert!(report.chaos.deterministic);
        assert!(report.chaos.clean_identical);
        assert!(report.chaos.quarantines >= 1);
    }
}
