//! Runs the BDD-kernel measurement harness and emits one labelled JSON run
//! for the `BENCH_bdd_kernel.json` perf trajectory.
//!
//! Usage: `cargo run --release -p brel-bench --bin bdd_kernel -- [flags]`
//!
//! Flags:
//!
//! * `--smoke`       few iterations and a small end-to-end batch (CI gate)
//! * `--label NAME`  label recorded in the JSON (default: `dev`)
//! * `--iters N`     override the per-benchmark iteration count
//! * `--out FILE`    write the JSON run to FILE (default: stdout)
//!
//! The human-readable table always goes to stderr so `--out -`-style
//! pipelines stay clean.

use std::process::ExitCode;

use brel_bench::bdd_kernel::{run, KernelBenchOptions};

fn main() -> ExitCode {
    let mut smoke = false;
    let mut label = String::from("dev");
    let mut iters: Option<usize> = None;
    let mut out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--label" => match args.next() {
                Some(v) => label = v,
                None => return usage("--label needs a value"),
            },
            "--iters" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => iters = Some(n),
                None => return usage("--iters needs a number"),
            },
            "--out" => match args.next() {
                Some(v) => out = Some(v),
                None => return usage("--out needs a path"),
            },
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }

    let mut options = if smoke {
        KernelBenchOptions::smoke(label)
    } else {
        KernelBenchOptions::full(label)
    };
    if let Some(n) = iters {
        options.iters = n;
    }

    let report = run(&options);
    eprint!("{}", report.render());
    let json = report.to_json().render_pretty();
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("bdd_kernel: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("bdd_kernel: wrote {path}");
        }
        None => print!("{json}"),
    }
    ExitCode::SUCCESS
}

fn usage(error: &str) -> ExitCode {
    eprintln!("bdd_kernel: {error}");
    eprintln!("usage: bdd_kernel [--smoke] [--label NAME] [--iters N] [--out FILE]");
    ExitCode::FAILURE
}
