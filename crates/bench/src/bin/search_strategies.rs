//! Runs the search-strategy comparison harness and emits one labelled JSON
//! run for the `BENCH_search.json` trajectory.
//!
//! Usage: `cargo run --release -p brel-bench --bin search_strategies -- [flags]`
//!
//! Flags:
//!
//! * `--smoke`       small batch and shallow churn budget (CI gate)
//! * `--label NAME`  label recorded in the JSON (default: `dev`)
//! * `--out FILE`    write the JSON run to FILE (default: stdout)
//!
//! The human-readable table always goes to stderr. Exits 1 if any strategy
//! misses the Fig. 10 optimum, if best-first explores more than FIFO on
//! it, if a wide-mode run was not worker-count deterministic, if the
//! warm-pool run differed from the cold run (or never hit the subrelation
//! cache on the doubled corpus), if tracing the wide batch changed its
//! output, if the phase report attributes less than 90% of the wide
//! solve to named phases, if any chaos contract broke (an injection
//! never fired, a fault leaked onto a clean job, a targeted job lost its
//! solution, or the chaos run drifted across worker counts), or — on
//! full runs — if the hard workload's wide wall exceeded its sequential
//! wall or any job's cost differed between the modes (the wide perf
//! gate) — the harness is its own acceptance gate.

use std::process::ExitCode;

use brel_bench::search_strategies::{run, SearchBenchOptions};
use brel_core::SearchStrategy;

fn main() -> ExitCode {
    let mut smoke = false;
    let mut label = String::from("dev");
    let mut out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--label" => match args.next() {
                Some(v) => label = v,
                None => return usage("--label needs a value"),
            },
            "--out" => match args.next() {
                Some(v) => out = Some(v),
                None => return usage("--out needs a path"),
            },
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }

    let options = if smoke {
        SearchBenchOptions::smoke(label)
    } else {
        SearchBenchOptions::full(label)
    };
    let report = run(&options);
    eprint!("{}", report.render());

    // Self-gating: the acceptance criteria of the strategy core.
    let fifo = report
        .rows
        .iter()
        .find(|r| r.strategy == SearchStrategy::Fifo)
        .expect("fifo row");
    for row in &report.rows {
        if row.fig10_cost != 2 {
            eprintln!(
                "search_strategies: {} missed the fig10 optimum (cost {})",
                row.strategy, row.fig10_cost
            );
            return ExitCode::FAILURE;
        }
        if !row.wide_deterministic {
            eprintln!(
                "search_strategies: {} wide mode differed between 1 and 4 workers",
                row.strategy
            );
            return ExitCode::FAILURE;
        }
        if row.strategy == SearchStrategy::BestFirst && row.fig10_explored > fifo.fig10_explored {
            eprintln!(
                "search_strategies: best-first explored {} > fifo {} on fig10",
                row.fig10_explored, fifo.fig10_explored
            );
            return ExitCode::FAILURE;
        }
    }

    if !report.reuse.identical_output {
        eprintln!("search_strategies: warm-pool output differed from the cold run");
        return ExitCode::FAILURE;
    }
    if report.reuse.subrel_cache_hits == 0 {
        eprintln!("search_strategies: the doubled corpus never hit the subrelation cache");
        return ExitCode::FAILURE;
    }
    if !report.obs.identical_output {
        eprintln!("search_strategies: tracing changed the wide batch output");
        return ExitCode::FAILURE;
    }
    if report.obs.attributed_pct < 90 {
        eprintln!(
            "search_strategies: only {}% of the wide solve attributed to named phases",
            report.obs.attributed_pct
        );
        return ExitCode::FAILURE;
    }

    // The chaos contracts: every injected fault fires, is attributed to a
    // structured non-solved outcome, recovers a solution, and leaves the
    // rest of the batch byte-untouched and worker-count deterministic.
    let chaos = &report.chaos;
    if chaos.fired != chaos.injections || chaos.non_solved != chaos.injections {
        eprintln!(
            "search_strategies: chaos fired {}/{} injections with {} non-solved outcomes",
            chaos.fired, chaos.injections, chaos.non_solved
        );
        return ExitCode::FAILURE;
    }
    if !chaos.all_recovered {
        eprintln!("search_strategies: a chaos-targeted job lost its solution");
        return ExitCode::FAILURE;
    }
    if chaos.quarantines == 0 {
        eprintln!("search_strategies: chaos faults never quarantined a session");
        return ExitCode::FAILURE;
    }
    if !chaos.deterministic {
        eprintln!("search_strategies: the chaos run drifted between 1 and 2 workers");
        return ExitCode::FAILURE;
    }
    if !chaos.clean_identical {
        eprintln!("search_strategies: a chaos fault polluted an untargeted job");
        return ExitCode::FAILURE;
    }

    // The wide perf gate: on the hard workload the stealing workers must
    // beat the sequential walk outright, landing on the same costs.
    if let Some(hard) = &report.hard {
        if !hard.cost_parity {
            eprintln!(
                "search_strategies: wide costs differed from sequential on {}",
                hard.corpus
            );
            return ExitCode::FAILURE;
        }
        if hard.wide_wall_micros > hard.sequential_wall_micros {
            eprintln!(
                "search_strategies: wide (8 workers) took {:.4}s vs sequential {:.4}s on {}",
                hard.wide_wall_micros as f64 / 1e6,
                hard.sequential_wall_micros as f64 / 1e6,
                hard.corpus
            );
            return ExitCode::FAILURE;
        }
    }

    let json = report.to_json().render_pretty();
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("search_strategies: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("search_strategies: wrote {path}");
        }
        None => print!("{json}"),
    }
    ExitCode::SUCCESS
}

fn usage(error: &str) -> ExitCode {
    eprintln!("search_strategies: {error}");
    eprintln!("usage: search_strategies [--smoke] [--label NAME] [--out FILE]");
    ExitCode::FAILURE
}
