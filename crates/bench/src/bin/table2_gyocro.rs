//! Prints the reproduction of Table 2 (BREL vs gyocro).
//!
//! Usage: `cargo run --release -p brel-bench --bin table2_gyocro [num_instances] [--json]`
//!
//! With `--json` the rows are emitted through the shared `brel-engine`
//! serializer (redirect to a `BENCH_*.json` file to capture a perf
//! trajectory).

use std::process::ExitCode;

fn main() -> ExitCode {
    let (num, json) = match brel_bench::parse_table_args(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(error) => {
            eprintln!("table2_gyocro: {error}");
            eprintln!("usage: table2_gyocro [num_instances] [--json]");
            return ExitCode::FAILURE;
        }
    };
    let rows = brel_bench::table2::run(num);
    if json {
        print!("{}", brel_bench::table2::to_json(&rows));
    } else {
        print!("{}", brel_bench::table2::render(&rows));
    }
    ExitCode::SUCCESS
}
