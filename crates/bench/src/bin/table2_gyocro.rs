//! Prints the reproduction of Table 2 (BREL vs gyocro).
//!
//! Usage: `cargo run --release -p brel-bench --bin table2_gyocro [num_instances]`

fn main() {
    let num = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX);
    let rows = brel_bench::table2::run(num);
    print!("{}", brel_bench::table2::render(&rows));
}
