//! Prints the reproduction of Table 1 (ISF-minimization comparison).
//!
//! Usage: `cargo run --release -p brel-bench --bin table1_isf [num_instances]`

fn main() {
    let num = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX);
    let rows = brel_bench::table1::run(num);
    print!("{}", brel_bench::table1::render(&rows));
}
