//! Prints the reproduction of Table 1 (ISF-minimization comparison).
//!
//! Usage: `cargo run --release -p brel-bench --bin table1_isf [num_instances] [--json]`
//!
//! With `--json` the rows are emitted through the shared `brel-engine`
//! serializer (redirect to a `BENCH_*.json` file to capture a perf
//! trajectory).

use std::process::ExitCode;

fn main() -> ExitCode {
    let (num, json) = match brel_bench::parse_table_args(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(error) => {
            eprintln!("table1_isf: {error}");
            eprintln!("usage: table1_isf [num_instances] [--json]");
            return ExitCode::FAILURE;
        }
    };
    let rows = brel_bench::table1::run(num);
    if json {
        print!("{}", brel_bench::table1::to_json(&rows));
    } else {
        print!("{}", brel_bench::table1::render(&rows));
    }
    ExitCode::SUCCESS
}
