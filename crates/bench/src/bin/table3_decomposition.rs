//! Prints the reproduction of Table 3 (mux-latch decomposition) for both
//! cost functions.
//!
//! Usage: `cargo run --release -p brel-bench --bin table3_decomposition
//!         [num_instances] [max_explored]`

fn main() {
    let num = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX);
    let max_explored = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    for delay_oriented in [true, false] {
        let rows = brel_bench::table3::run(num, delay_oriented, max_explored);
        print!("{}", brel_bench::table3::render(&rows, delay_oriented));
        println!();
    }
}
