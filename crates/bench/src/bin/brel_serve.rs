//! The solver daemon and its load-test harness.
//!
//! Usage: `cargo run --release -p brel-bench --bin brel_serve -- [flags]`
//!
//! Modes (pick one):
//!
//! * `--listen ADDR` run as a daemon: bind `ADDR`, print the bound
//!   address, serve until a `shutdown` frame arrives, drain, exit 0
//! * `--selftest`    boot in-process daemons and drive the full synthetic
//!   workload against them (load, forced mid-stream cancel, forced
//!   shedding, chaos, serial replay), self-gate every phase, and write
//!   the measurements to `--out`
//! * `--smoke`       the CI-sized selftest: 8 clients, 2 jobs each, one
//!   forced cancel, one forced-shed phase, chaos, and the serial-replay
//!   determinism gate
//!
//! Harness flags:
//!
//! * `--workers N`     daemon worker threads (default: up to 4)
//! * `--clients N`     concurrent load-phase clients (default: 8)
//! * `--rounds N`      jobs per load-phase client (default: 6; smoke: 2)
//! * `--chaos SEED`    fault-plan seed for the chaos phase (default: 9)
//! * `--fingerprint N` fail unless the serial replay's total winner cost
//!   equals `N` (CI passes 81, the smoke-corpus anchor)
//! * `--out PATH`      write the harness report as pretty JSON
//! * `--trace-out PATH` write a Chrome trace of the whole harness
//! * `--obs-report`    print the phase report and the unified metrics
//!   registry (`serve.*`, `reuse.*`) to stderr
//!
//! Every phase boots its own daemon so the per-phase stats gates are
//! exact: admitted == completed after every drain, sheds only where the
//! harness forced them, quarantines only in the chaos phase.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Arc;
use std::thread::JoinHandle;

use brel_bench::engine_batch::{self, CorpusOptions};
use brel_benchdata::random_relation::random_well_defined_relation;
use brel_engine::{BackendKind, FaultPlan, JobBudget, JobSpec, Json, RelationSpec};
use brel_obs::{MetricsRegistry, RecordingCollector};
use brel_serve::{
    drive, percentile_us, AdmissionConfig, Client, DrainReport, Frame, LoadOptions, LoadReport,
    ServeConfig, Server, Submit,
};

fn main() -> ExitCode {
    let mut listen: Option<String> = None;
    let mut selftest = false;
    let mut smoke = false;
    let mut workers: Option<usize> = None;
    let mut clients = 8usize;
    let mut rounds: Option<usize> = None;
    let mut chaos_seed = 9u64;
    let mut fingerprint: Option<u64> = None;
    let mut out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut obs_report = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => match args.next() {
                Some(addr) => listen = Some(addr),
                None => return usage("--listen needs an address"),
            },
            "--selftest" => selftest = true,
            "--smoke" => smoke = true,
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => workers = Some(n),
                None => return usage("--workers needs a number"),
            },
            "--clients" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => clients = Some(n).filter(|n| *n > 0).unwrap_or(1),
                None => return usage("--clients needs a number"),
            },
            "--rounds" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => rounds = Some(n),
                None => return usage("--rounds needs a number"),
            },
            "--chaos" => match args.next().and_then(|v| v.parse().ok()) {
                Some(seed) => chaos_seed = seed,
                None => return usage("--chaos needs a seed"),
            },
            "--fingerprint" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => fingerprint = Some(n),
                None => return usage("--fingerprint needs a number"),
            },
            "--out" => match args.next() {
                Some(path) => out = Some(path),
                None => return usage("--out needs a path"),
            },
            "--trace-out" => match args.next() {
                Some(path) => trace_out = Some(path),
                None => return usage("--trace-out needs a path"),
            },
            "--obs-report" => obs_report = true,
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }

    if listen.is_some() as usize + selftest as usize + smoke as usize != 1 {
        return usage("pick exactly one of --listen, --selftest, --smoke");
    }

    let collector = (trace_out.is_some() || obs_report).then(|| {
        let collector = Arc::new(RecordingCollector::new());
        brel_obs::install(collector.clone());
        collector
    });

    if let Some(addr) = listen {
        return run_daemon(&addr, workers);
    }

    let mut harness = Harness {
        workers: workers.unwrap_or_else(default_workers),
        clients,
        rounds: rounds.unwrap_or(if smoke { 2 } else { 6 }),
        chaos_seed,
        fingerprint,
        failures: Vec::new(),
        registry: MetricsRegistry::new(),
    };
    let report = harness.run();

    if let Some(collector) = &collector {
        if let Some(path) = &trace_out {
            if let Err(e) = std::fs::write(path, collector.chrome_trace()) {
                eprintln!("brel_serve: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("brel_serve: wrote trace to {path}");
        }
        if obs_report {
            eprint!("{}", collector.phase_report().render());
            eprint!("{}", harness.registry.render());
        }
    }

    let rendered = report.render_pretty();
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("brel_serve: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("brel_serve: wrote report to {path}");
        }
        None => println!("{rendered}"),
    }

    if harness.failures.is_empty() {
        eprintln!("brel_serve: all gates OK");
        ExitCode::SUCCESS
    } else {
        for failure in &harness.failures {
            eprintln!("brel_serve: gate failed — {failure}");
        }
        ExitCode::FAILURE
    }
}

fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(2)
}

/// Daemon mode: serve until a `shutdown` frame drains us.
fn run_daemon(addr: &str, workers: Option<usize>) -> ExitCode {
    let config = ServeConfig {
        addr: addr.to_string(),
        workers: workers.unwrap_or_else(default_workers),
        ..ServeConfig::default()
    };
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("brel_serve: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The bound address goes to stdout so scripts can `read` it even when
    // the caller asked for port 0.
    println!("listening on {}", server.addr());
    let drain = server.run_until_shutdown();
    eprintln!(
        "brel_serve: drained — {} admitted, {} completed, {} shed, {} cancelled, {} quarantines",
        drain.stats.admitted,
        drain.stats.completed,
        drain.stats.shed,
        drain.stats.cancelled,
        drain.stats.quarantines,
    );
    ExitCode::SUCCESS
}

struct Harness {
    workers: usize,
    clients: usize,
    rounds: usize,
    chaos_seed: u64,
    fingerprint: Option<u64>,
    failures: Vec<String>,
    registry: MetricsRegistry,
}

impl Harness {
    fn run(&mut self) -> Json {
        let load = self.load_phase();
        let cancel = self.cancel_phase();
        let shed = self.shed_phase();
        let chaos = self.chaos_phase();
        let replay = self.replay_phase();
        Json::object(vec![
            (
                "config",
                Json::object(vec![
                    ("workers", Json::UInt(self.workers as u64)),
                    ("clients", Json::UInt(self.clients as u64)),
                    ("rounds", Json::UInt(self.rounds as u64)),
                    ("chaos_seed", Json::UInt(self.chaos_seed)),
                ]),
            ),
            ("load", load),
            ("cancel", cancel),
            ("shed", shed),
            ("chaos", chaos),
            ("replay", replay),
            (
                "gates",
                Json::object(vec![
                    ("passed", Json::Bool(self.failures.is_empty())),
                    (
                        "failures",
                        Json::Array(self.failures.iter().map(Json::str).collect()),
                    ),
                ]),
            ),
        ])
    }

    fn gate(&mut self, ok: bool, what: &str) {
        if !ok {
            self.failures.push(what.to_string());
        }
    }

    fn start(&self, config: ServeConfig) -> (SocketAddr, JoinHandle<DrainReport>) {
        let server = Server::start(config).expect("bind an ephemeral port");
        let addr = server.addr();
        (
            addr,
            std::thread::spawn(move || server.run_until_shutdown()),
        )
    }

    fn drain(
        &mut self,
        addr: SocketAddr,
        handle: JoinHandle<DrainReport>,
        phase: &str,
    ) -> DrainReport {
        let mut client = Client::connect(addr).expect("connect for shutdown");
        client.shutdown_and_wait().expect("drain stats");
        let drain = handle.join().expect("server threads join cleanly");
        self.gate(
            drain.stats.admitted == drain.stats.completed,
            &format!(
                "{phase}: drain must complete every admitted job ({} admitted, {} completed)",
                drain.stats.admitted, drain.stats.completed
            ),
        );
        self.gate(
            drain.stats.inflight == 0 && drain.stats.queue_depth == 0,
            &format!("{phase}: drain must leave no inflight or queued work"),
        );
        self.registry.absorb_delta("serve", &drain.stats.metrics());
        self.registry
            .absorb_delta("reuse", &drain.stats.reuse_metrics());
        drain
    }

    /// Mixed open-loop load: N clients, cycled deadlines, opportunistic
    /// mid-stream cancels, shed-then-retry. Produces the latency
    /// distributions the report records.
    fn load_phase(&mut self) -> Json {
        let (addr, handle) = self.start(ServeConfig {
            workers: self.workers,
            ..ServeConfig::default()
        });
        let corpus = engine_batch::corpus(&CorpusOptions::smoke());
        let options = LoadOptions {
            clients: self.clients,
            jobs_per_client: self.rounds,
            deadlines_ms: vec![None, Some(400), Some(40)],
            cancel_every: 5,
            retry_after_shed: true,
        };
        let load = drive(addr, &corpus, &options);
        let drain = self.drain(addr, handle, "load");

        self.gate(load.io_errors == 0, "load: no client I/O errors");
        self.gate(
            load.finals == load.admitted,
            "load: every admitted job returned a final frame",
        );
        self.gate(
            load.incumbents >= load.admitted,
            "load: anytime streaming sent at least one incumbent per job",
        );
        self.gate(
            drain.stats.admitted >= (self.clients * self.rounds) as u64 - load.shed,
            "load: the daemon admitted the driven workload",
        );
        load_to_json(&load, &drain)
    }

    /// The forced mid-stream cancel and the `max_cost` early-stop: both
    /// must come back `degraded` carrying the best streamed incumbent.
    fn cancel_phase(&mut self) -> Json {
        let (addr, handle) = self.start(ServeConfig {
            workers: self.workers,
            ..ServeConfig::default()
        });
        let mut client = Client::connect(addr).expect("connect");

        let outcome = client
            .solve(&long_job(11), "cancel-phase", None, None, true)
            .expect("cancel solve");
        let first_cost = outcome.incumbents.first().map_or(0, |(cost, _)| *cost);
        let report = outcome.final_report.clone();
        self.gate(
            report
                .as_ref()
                .is_some_and(|r| r.degraded && r.outcome == "degraded"),
            "cancel: a mid-stream cancel degrades instead of killing",
        );
        self.gate(
            report
                .as_ref()
                .and_then(|r| r.fault.as_deref())
                .is_some_and(|f| f.contains("cancelled")),
            "cancel: the final records the cancellation fault",
        );
        self.gate(
            report
                .as_ref()
                .and_then(|r| r.cost)
                .is_some_and(|c| c <= first_cost),
            "cancel: the final carries an incumbent no worse than the first streamed one",
        );

        // Early stop by cost target: the first incumbent at or under
        // `max_cost` cancels the search server-side.
        let early = client
            .solve(&long_job(13), "cancel-phase", None, Some(u64::MAX), false)
            .expect("max-cost solve");
        let early_report = early.final_report.clone();
        self.gate(
            early_report.as_ref().is_some_and(|r| r.degraded),
            "cancel: a reached max_cost target stops the search early",
        );

        let drain = self.drain(addr, handle, "cancel");
        self.gate(
            drain.stats.cancelled >= 2,
            "cancel: both stops are accounted as cancellations",
        );
        Json::object(vec![
            (
                "first_incumbent_us",
                Json::UInt(outcome.first_incumbent_us.unwrap_or(0)),
            ),
            ("first_incumbent_cost", Json::UInt(first_cost)),
            (
                "final_cost",
                report
                    .as_ref()
                    .and_then(|r| r.cost)
                    .map_or(Json::Null, Json::UInt),
            ),
            (
                "outcome",
                report
                    .as_ref()
                    .map_or(Json::Null, |r| Json::str(&r.outcome)),
            ),
            (
                "max_cost_outcome",
                early_report
                    .as_ref()
                    .map_or(Json::Null, |r| Json::str(&r.outcome)),
            ),
            ("incumbents", Json::UInt(outcome.incumbents.len() as u64)),
        ])
    }

    /// Forced load-shedding on a deliberately tiny daemon: one worker,
    /// queue capacity 1, one job per client. Exercises all three
    /// non-draining shed reasons and the jittered backoff contract.
    fn shed_phase(&mut self) -> Json {
        let (addr, handle) = self.start(ServeConfig {
            workers: 1,
            admission: AdmissionConfig {
                capacity: 1,
                per_client: 1,
                ..AdmissionConfig::default()
            },
            ..ServeConfig::default()
        });
        let backoff = AdmissionConfig::default().backoff_ms;
        let mut sheds: Vec<(String, u64)> = Vec::new();

        // The hog occupies the only worker with an unbounded job.
        let mut hog = Client::connect(addr).expect("connect hog");
        hog.send(&Frame::Submit(Submit {
            client: "hog".to_string(),
            job: long_job(17),
            deadline_ms: None,
            max_cost: None,
        }))
        .expect("submit hog");
        let hog_ticket = match recv_skipping_incumbents(&mut hog) {
            Frame::Admitted { job, .. } => job,
            other => panic!("hog admission, got {other:?}"),
        };

        // Same client again: the per-client budget sheds it.
        hog.send(&Frame::Submit(Submit {
            client: "hog".to_string(),
            job: quick_job("hog-encore", 31),
            deadline_ms: None,
            max_cost: None,
        }))
        .expect("submit encore");
        match recv_skipping_incumbents(&mut hog) {
            Frame::Rejected {
                reason,
                retry_after_ms,
            } => sheds.push((reason, retry_after_ms)),
            other => panic!("expected client-budget shed, got {other:?}"),
        }

        // A second client fills the queue (capacity 1)...
        let mut queued = Client::connect(addr).expect("connect queued");
        queued
            .send(&Frame::Submit(Submit {
                client: "queued".to_string(),
                job: quick_job("queued-job", 32),
                deadline_ms: None,
                max_cost: None,
            }))
            .expect("submit queued");
        assert!(matches!(
            recv_skipping_incumbents(&mut queued),
            Frame::Admitted { .. }
        ));

        // ...so a zero-deadline submission is infeasible...
        let mut hasty = Client::connect(addr).expect("connect hasty");
        let hasty_outcome = hasty
            .solve(&quick_job("hasty-job", 33), "hasty", Some(0), None, false)
            .expect("hasty solve");
        if let Some((reason, retry_after_ms)) = hasty_outcome.rejected.clone() {
            sheds.push((reason, retry_after_ms));
        }

        // ...and a fourth client finds the queue full.
        let mut late = Client::connect(addr).expect("connect late");
        let late_outcome = late
            .solve(&quick_job("late-job", 34), "late", None, None, false)
            .expect("late solve");
        if let Some((reason, retry_after_ms)) = late_outcome.rejected.clone() {
            sheds.push((reason, retry_after_ms));
        }

        // Unblock the worker and let the queued job finish.
        hog.cancel(hog_ticket).expect("cancel hog");
        let hog_final = wait_for_final(&mut hog, hog_ticket);
        let queued_final = match recv_skipping_incumbents(&mut queued) {
            Frame::Final(report) => report,
            other => panic!("queued final, got {other:?}"),
        };

        let drain = self.drain(addr, handle, "shed");
        let reasons: Vec<&str> = sheds.iter().map(|(reason, _)| reason.as_str()).collect();
        self.gate(
            reasons == ["client-budget", "infeasible-deadline", "queue-full"],
            &format!("shed: all three shed reasons observed, got {reasons:?}"),
        );
        self.gate(
            sheds
                .iter()
                .all(|(_, hint)| *hint >= backoff && *hint <= 2 * backoff),
            "shed: every retry hint honours the jittered backoff window",
        );
        self.gate(
            hog_final.degraded && queued_final.outcome == "solved",
            "shed: the cancelled hog degrades and the queued job still solves",
        );
        self.gate(drain.stats.shed == 3, "shed: the daemon counted the sheds");
        Json::object(vec![
            (
                "sheds",
                Json::Array(
                    sheds
                        .iter()
                        .map(|(reason, hint)| {
                            Json::object(vec![
                                ("reason", Json::str(reason)),
                                ("retry_after_ms", Json::UInt(*hint)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "backoff_window_ms",
                Json::Array(vec![Json::UInt(backoff), Json::UInt(2 * backoff)]),
            ),
        ])
    }

    /// The chaos phase: a seeded fault plan armed inside the daemon. The
    /// injected faults must stay contained to their targets and every
    /// quarantined session must surface in the final stats.
    fn chaos_phase(&mut self) -> Json {
        let corpus = engine_batch::corpus(&CorpusOptions::smoke());
        let names: Vec<&str> = corpus.iter().map(|j| j.name.as_str()).collect();
        let plan = Arc::new(FaultPlan::seeded(self.chaos_seed, &names));
        let targets: Vec<String> = plan.targets().iter().map(|t| t.to_string()).collect();

        let (addr, handle) = self.start(ServeConfig {
            workers: self.workers,
            fault_plan: Some(Arc::clone(&plan)),
            ..ServeConfig::default()
        });
        let mut client = Client::connect(addr).expect("connect");
        let mut non_solved = Vec::new();
        for job in &corpus {
            let outcome = client
                .solve(job, "chaos", None, None, false)
                .expect("chaos solve");
            let report = outcome.final_report.expect("chaos final");
            if report.outcome != "solved" {
                self.gate(
                    report.cost.is_some(),
                    &format!(
                        "chaos: faulted job {} keeps a recovered solution",
                        report.name
                    ),
                );
                non_solved.push(report.name.clone());
            }
        }
        let drain = self.drain(addr, handle, "chaos");

        let mut expected = targets.clone();
        expected.sort();
        let mut actual = non_solved.clone();
        actual.sort();
        self.gate(
            actual == expected,
            &format!("chaos: only targeted jobs fault (targets {expected:?}, got {actual:?})"),
        );
        self.gate(
            plan.num_fired() == plan.injections().len(),
            "chaos: every injection fired",
        );
        self.gate(
            drain.stats.quarantines >= 1,
            "chaos: the injected panic quarantined a session and the stats report it",
        );
        Json::object(vec![
            ("seed", Json::UInt(self.chaos_seed)),
            (
                "targets",
                Json::Array(targets.iter().map(Json::str).collect()),
            ),
            ("injections_fired", Json::UInt(plan.num_fired() as u64)),
            (
                "non_solved",
                Json::Array(non_solved.iter().map(Json::str).collect()),
            ),
            ("quarantines", Json::UInt(drain.stats.quarantines)),
        ])
    }

    /// The determinism gate: a single-worker daemon fed the smoke corpus
    /// serially must produce finals byte-identical (timing-free) to the
    /// batch engine's reports, with the pinned corpus fingerprint.
    fn replay_phase(&mut self) -> Json {
        let corpus = engine_batch::corpus(&CorpusOptions::smoke());
        let (addr, handle) = self.start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let mut client = Client::connect(addr).expect("connect");
        let mut served = Vec::new();
        for job in &corpus {
            let outcome = client
                .solve(job, "replay", None, None, false)
                .expect("replay solve");
            served.push(outcome.final_report.expect("replay final"));
        }
        self.drain(addr, handle, "replay");

        let batch = engine_batch::run(&corpus, 1);
        let mut identical = served.len() == batch.jobs.len();
        for (ticket, (from_serve, from_batch)) in served.iter().zip(&batch.jobs).enumerate() {
            let reference = brel_serve::FinalReport::from_report(ticket as u64, from_batch, 0, 0);
            if from_serve.deterministic_json().render() != reference.deterministic_json().render() {
                identical = false;
            }
        }
        self.gate(
            identical,
            "replay: serial daemon output is byte-identical to the batch engine",
        );
        let total_cost: u64 = served.iter().filter_map(|r| r.cost).sum();
        let batch_cost = batch.total_winner_cost();
        self.gate(
            total_cost == batch_cost,
            "replay: served winner costs sum to the batch fingerprint",
        );
        if let Some(expected) = self.fingerprint {
            self.gate(
                total_cost == expected,
                &format!("replay: fingerprint drift — total winner cost {total_cost}, expected {expected}"),
            );
        }
        Json::object(vec![
            ("jobs", Json::UInt(served.len() as u64)),
            ("total_winner_cost", Json::UInt(total_cost)),
            ("byte_identical", Json::Bool(identical)),
        ])
    }
}

fn load_to_json(load: &LoadReport, drain: &DrainReport) -> Json {
    Json::object(vec![
        ("submitted", Json::UInt(load.submitted)),
        ("admitted", Json::UInt(load.admitted)),
        ("shed", Json::UInt(load.shed)),
        ("finals", Json::UInt(load.finals)),
        ("degraded", Json::UInt(load.degraded)),
        ("cancelled_finals", Json::UInt(load.cancelled_finals)),
        ("cancels_sent", Json::UInt(load.cancels_sent)),
        ("incumbents", Json::UInt(load.incumbents)),
        ("io_errors", Json::UInt(load.io_errors)),
        ("admission_us", latency_json(&load.admission_us)),
        ("first_incumbent_us", latency_json(&load.first_incumbent_us)),
        (
            "server",
            Json::object(
                drain
                    .stats
                    .metrics()
                    .iter()
                    .map(|(name, value)| (*name, Json::UInt(*value)))
                    .collect(),
            ),
        ),
    ])
}

fn latency_json(samples: &[u64]) -> Json {
    Json::object(vec![
        ("samples", Json::UInt(samples.len() as u64)),
        ("p50", Json::UInt(percentile_us(samples, 50.0))),
        ("p99", Json::UInt(percentile_us(samples, 99.0))),
    ])
}

/// An unbounded single-backend BREL job: streams incumbents until it is
/// cancelled, never finishing on its own within harness timescales.
fn long_job(seed: u64) -> JobSpec {
    let (_space, relation) = random_well_defined_relation(7, 4, 0.4, seed);
    let mut job = JobSpec::single(
        format!("long{seed}"),
        RelationSpec::from_relation(&relation).expect("random spaces are enumerable"),
        BackendKind::Brel,
    );
    job.budget = JobBudget {
        max_explored: None,
        fifo_capacity: None,
        ..JobBudget::default()
    };
    job
}

/// A small default-budget portfolio job that solves in milliseconds.
fn quick_job(name: &str, seed: u64) -> JobSpec {
    let (_space, relation) = random_well_defined_relation(3, 2, 0.3, seed);
    JobSpec::portfolio(
        name,
        RelationSpec::from_relation(&relation).expect("random spaces are enumerable"),
    )
}

fn recv_skipping_incumbents(client: &mut Client) -> Frame {
    loop {
        match client.recv().expect("frame") {
            Frame::Incumbent { .. } => {}
            other => return other,
        }
    }
}

fn wait_for_final(client: &mut Client, ticket: u64) -> brel_serve::FinalReport {
    loop {
        match client.recv().expect("frame") {
            Frame::Final(report) if report.job == ticket => return report,
            Frame::Incumbent { .. } | Frame::Final(_) => {}
            other => panic!("expected final for {ticket}, got {other:?}"),
        }
    }
}

fn usage(error: &str) -> ExitCode {
    eprintln!("brel_serve: {error}");
    eprintln!(
        "usage: brel_serve (--listen ADDR | --selftest | --smoke) [--workers N] \
         [--clients N] [--rounds N] [--chaos SEED] [--fingerprint N] [--out PATH] \
         [--trace-out PATH] [--obs-report]"
    );
    ExitCode::FAILURE
}
