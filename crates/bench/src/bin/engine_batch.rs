//! Streams the Table-2 family plus seeded random relations through the
//! `brel-engine` portfolio worker pool and prints a summary.
//!
//! Usage: `cargo run --release -p brel-bench --bin engine_batch -- [flags]`
//!
//! Flags:
//!
//! * `--smoke`      small corpus on 2 workers; re-runs the batch on 1
//!   worker and fails (exit 1) if the deterministic output differs
//! * `--workers N`  worker-thread count (default: available parallelism)
//! * `--instances N` number of Table-2 instances (default: all)
//! * `--random N`   number of seeded random relations (default: 8)
//! * `--json`       emit the batch as JSON instead of the human table
//! * `--csv`        emit the batch as CSV instead of the human table
//! * `--timing`     include wall-clock fields in `--json`/`--csv` output
//!   (timing makes the output run-dependent, so it is off by default)

use std::process::ExitCode;

use brel_bench::engine_batch::{corpus, render, run, CorpusOptions};
use brel_engine::EngineConfig;

fn main() -> ExitCode {
    let mut options = CorpusOptions::full();
    let mut workers: Option<usize> = None;
    let mut smoke = false;
    let mut json = false;
    let mut csv = false;
    let mut timing = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                smoke = true;
                options = CorpusOptions::smoke();
            }
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => workers = Some(n),
                None => return usage("--workers needs a number"),
            },
            "--instances" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => options.table2_instances = n,
                None => return usage("--instances needs a number"),
            },
            "--random" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => options.random_relations = n,
                None => return usage("--random needs a number"),
            },
            "--json" => json = true,
            "--csv" => csv = true,
            "--timing" => timing = true,
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }

    let jobs = corpus(&options);
    // Smoke pins 2 workers (the determinism gate re-runs on 1); otherwise
    // default to the machine's parallelism.
    let num_workers = workers.unwrap_or(if smoke {
        2
    } else {
        EngineConfig::default().num_workers
    });
    let report = run(&jobs, num_workers);

    if json {
        print!("{}", report.to_json(timing));
    } else if csv {
        print!("{}", report.to_csv(timing));
    } else {
        print!("{}", render(&report));
    }

    if report.num_solved() != report.jobs.len() {
        eprintln!(
            "engine_batch: {} of {} jobs failed to solve",
            report.jobs.len() - report.num_solved(),
            report.jobs.len()
        );
        return ExitCode::FAILURE;
    }

    if smoke {
        // The determinism gate: the same corpus on one worker must produce
        // byte-identical timing-free output.
        let single = run(&jobs, 1);
        if single.to_json(false) != report.to_json(false)
            || single.to_csv(false) != report.to_csv(false)
        {
            eprintln!(
                "engine_batch: output differs between 1 and {} workers",
                report.num_workers
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "engine_batch: smoke OK ({} jobs, {} workers, deterministic vs 1 worker)",
            report.jobs.len(),
            report.num_workers
        );
    }
    ExitCode::SUCCESS
}

fn usage(error: &str) -> ExitCode {
    eprintln!("engine_batch: {error}");
    eprintln!(
        "usage: engine_batch [--smoke] [--workers N] [--instances N] [--random N] [--json|--csv] [--timing]"
    );
    ExitCode::FAILURE
}
