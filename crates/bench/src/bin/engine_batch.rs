//! Streams the Table-2 family plus seeded random relations through the
//! `brel-engine` portfolio worker pool and prints a summary.
//!
//! Usage: `cargo run --release -p brel-bench --bin engine_batch -- [flags]`
//!
//! Flags:
//!
//! * `--smoke`      small corpus on 2 workers; re-runs the batch on 1
//!   worker and fails (exit 1) if the deterministic output differs
//! * `--workers N`  worker-thread count (default: available parallelism)
//! * `--instances N` number of Table-2 instances (default: all)
//! * `--random N`   number of seeded random relations (default: 8)
//! * `--strategy S` BREL search strategy: `fifo` (default), `dfs`,
//!   `best-first`
//! * `--wide`       wide mode: jobs run one at a time and the worker pool
//!   runs an asynchronous work-stealing search over each BREL frontier
//! * `--lookahead N` wide-mode speculation window: how far past the commit
//!   head a worker may claim work (default: 8; `--topk` is an alias kept
//!   for old scripts)
//! * `--steal-threshold N` minimum subproblem size (relation pairs) worth
//!   shipping as rows to another worker; smaller subproblems stay as live
//!   BDD handles on their owner (default: 4)
//! * `--hard`       swap in the checked-in hard corpus
//!   (`hard-rand7x4`): four seeded 7-input/4-output relations whose
//!   sequential solve takes ≥1s total — the wide-vs-sequential perf
//!   workload
//! * `--cold`       disable cross-job reuse (warm per-worker sessions and
//!   the solved-subrelation cache): one cold BDD manager per job, the
//!   pre-redesign behaviour. The deterministic output is identical either
//!   way; use this to measure what the warm pool buys
//! * `--fingerprint N` fail (exit 1) unless the batch's total winner cost
//!   equals `N` — the CI drift gate for the default FIFO strategy. With
//!   `--chaos` the gate applies to the no-fault reference run
//! * `--chaos SEED` chaos mode: derive a deterministic fault-injection
//!   plan from `SEED` (one panic, one quota trip, one step deadline, on
//!   three distinct jobs), run a no-fault reference batch first, then the
//!   injected batch, and fail (exit 1) unless every injection fired,
//!   exactly that many jobs report a non-`solved` outcome (each still
//!   carrying a verified winner), and every untargeted job's timing-free
//!   output is byte-identical to the reference. The corpus must have at
//!   least 3 jobs (one per fault kind); smaller corpora are rejected with
//!   a structured error and a failure exit instead of arming a partial
//!   plan silently
//! * `--deadline-ms N` per-job wall-clock deadline for the BREL backend
//!   (kernel governor; timing-dependent, so keep it out of determinism
//!   gates)
//! * `--max-live-nodes N` per-job live-BDD-node quota for the BREL
//!   backend (kernel governor)
//! * `--retries N`  retry transient (panic-class) faults up to `N` times
//!   on a quarantined-and-rebuilt session
//! * `--json`       emit the batch as JSON instead of the human table
//! * `--csv`        emit the batch as CSV instead of the human table
//! * `--timing`     include wall-clock fields in `--json`/`--csv` output
//!   (timing makes the output run-dependent, so it is off by default)
//! * `--trace-out PATH` record a full trace of the run and write it to
//!   `PATH` as Chrome trace-event JSON (open in Perfetto or
//!   `chrome://tracing`). Stdout is untouched: tracing is write-only with
//!   respect to the deterministic output
//! * `--obs-report` print the aggregate phase report (per-phase
//!   total/self time, counts) and the unified metrics registry to stderr
//! * `--overhead-gate NS` fail (exit 1) if a disabled (null-collector)
//!   span costs more than `NS` nanoseconds per call — the CI guard that
//!   keeps instrumentation free when tracing is off

use std::process::ExitCode;
use std::sync::Arc;

use brel_bench::engine_batch::{chaos_corpus_error, corpus, hard_corpus, render, CorpusOptions};
use brel_engine::{
    BatchReport, Engine, EngineConfig, FaultPlan, FaultPolicy, JobOutcome, JobSpec, SearchStrategy,
    WideOptions,
};
use brel_obs::{MetricsRegistry, RecordingCollector};

fn main() -> ExitCode {
    let mut workers: Option<usize> = None;
    let mut instances: Option<usize> = None;
    let mut random: Option<usize> = None;
    let mut strategy: Option<SearchStrategy> = None;
    let mut smoke = false;
    let mut json = false;
    let mut csv = false;
    let mut timing = false;
    let mut wide = false;
    let mut cold = false;
    let mut hard = false;
    let mut lookahead = 8usize;
    let mut steal_threshold = 4usize;
    let mut fingerprint: Option<u64> = None;
    let mut trace_out: Option<String> = None;
    let mut obs_report = false;
    let mut overhead_gate: Option<u64> = None;
    let mut chaos: Option<u64> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut max_live_nodes: Option<u64> = None;
    let mut retries = 0u32;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => workers = Some(n),
                None => return usage("--workers needs a number"),
            },
            "--instances" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => instances = Some(n),
                None => return usage("--instances needs a number"),
            },
            "--random" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => random = Some(n),
                None => return usage("--random needs a number"),
            },
            "--strategy" => match args.next().as_deref().and_then(SearchStrategy::parse) {
                Some(s) => strategy = Some(s),
                None => return usage("--strategy needs fifo, dfs or best-first"),
            },
            "--wide" => wide = true,
            "--cold" => cold = true,
            "--hard" => hard = true,
            "--lookahead" | "--topk" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => lookahead = n,
                None => return usage("--lookahead needs a number"),
            },
            "--steal-threshold" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => steal_threshold = n,
                None => return usage("--steal-threshold needs a number"),
            },
            "--fingerprint" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => fingerprint = Some(n),
                None => return usage("--fingerprint needs a number"),
            },
            "--json" => json = true,
            "--csv" => csv = true,
            "--timing" => timing = true,
            "--trace-out" => match args.next() {
                Some(path) => trace_out = Some(path),
                None => return usage("--trace-out needs a path"),
            },
            "--obs-report" => obs_report = true,
            "--overhead-gate" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => overhead_gate = Some(n),
                None => return usage("--overhead-gate needs nanoseconds"),
            },
            "--chaos" => match args.next().and_then(|v| v.parse().ok()) {
                Some(seed) => chaos = Some(seed),
                None => return usage("--chaos needs a seed"),
            },
            "--deadline-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => deadline_ms = Some(n),
                None => return usage("--deadline-ms needs milliseconds"),
            },
            "--max-live-nodes" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => max_live_nodes = Some(n),
                None => return usage("--max-live-nodes needs a number"),
            },
            "--retries" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => retries = n,
                None => return usage("--retries needs a number"),
            },
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }

    // Compose the corpus after parsing, so explicit flags override the
    // `--smoke` preset regardless of argument order.
    let mut options = if smoke {
        CorpusOptions::smoke()
    } else {
        CorpusOptions::full()
    };
    if let Some(n) = instances {
        options.table2_instances = n;
    }
    if let Some(n) = random {
        options.random_relations = n;
    }
    if let Some(s) = strategy {
        options.strategy = s;
    }

    // Arm the recording collector before any work runs so the trace and
    // the phase report see the whole batch. The deterministic stdout is
    // unaffected either way (the obs layer is write-only; the smoke gate
    // below re-checks that on every run).
    let collector = (trace_out.is_some() || obs_report).then(|| {
        let collector = Arc::new(RecordingCollector::new());
        brel_obs::install(collector.clone());
        collector
    });

    let mut jobs = if hard {
        hard_corpus()
    } else {
        corpus(&options)
    };
    // A seeded plan places its three fault kinds on distinct jobs; a
    // smaller corpus would arm fewer injections and the chaos gates below
    // would pass vacuously. Reject it up front instead.
    if chaos.is_some() {
        if let Some(message) = chaos_corpus_error(jobs.len()) {
            return usage(&message);
        }
    }
    // Map the fault flags onto every job's policy. The default policy is a
    // no-op, so the flags cost nothing when unused.
    let policy = FaultPolicy {
        deadline_ms,
        max_live_nodes,
        retries,
        ..FaultPolicy::default()
    };
    if policy != FaultPolicy::default() {
        jobs = jobs.into_iter().map(|j| j.with_fault(policy)).collect();
    }
    // Smoke pins 2 workers (the determinism gate re-runs on 1); otherwise
    // default to the machine's parallelism.
    let num_workers = workers.unwrap_or(if smoke {
        2
    } else {
        EngineConfig::default().num_workers
    });
    let names: Vec<&str> = jobs.iter().map(|j| j.name.as_str()).collect();
    // Injections are armed-once, so every chaos solve arms a fresh copy of
    // the (seed-deterministic) plan — the smoke re-run below needs its own.
    let solve = |jobs: &[JobSpec],
                 num_workers: usize,
                 chaos_seed: Option<u64>|
     -> (BatchReport, Option<Arc<FaultPlan>>) {
        let mut engine = Engine::with_workers(num_workers).with_reuse(!cold);
        if wide {
            engine = engine.with_wide(WideOptions {
                lookahead,
                steal_threshold,
                ..WideOptions::default()
            });
        }
        let plan = chaos_seed.map(|seed| Arc::new(FaultPlan::seeded(seed, &names)));
        if let Some(plan) = &plan {
            engine = engine.with_fault_plan(plan.clone());
        }
        (engine.solve_batch(jobs), plan)
    };
    // Chaos mode runs a no-fault reference batch first: it anchors the
    // fingerprint gate and the untargeted-job byte comparison.
    let reference = chaos.map(|_| solve(&jobs, num_workers, None).0);
    let (report, plan) = solve(&jobs, num_workers, chaos);

    if let Some(collector) = &collector {
        if let Some(path) = &trace_out {
            let trace = collector.chrome_trace();
            if let Err(e) = std::fs::write(path, trace) {
                eprintln!("engine_batch: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("engine_batch: wrote trace to {path}");
        }
        if obs_report {
            eprint!("{}", collector.phase_report().render());
            eprint!("{}", unified_metrics(&report).render());
        }
    }

    if json {
        print!("{}", report.to_json(timing));
    } else if csv {
        print!("{}", report.to_csv(timing));
    } else {
        print!("{}", render(&report));
    }

    if report.num_solved() != report.jobs.len() {
        eprintln!(
            "engine_batch: {} of {} jobs failed to solve",
            report.jobs.len() - report.num_solved(),
            report.jobs.len()
        );
        return ExitCode::FAILURE;
    }

    if let Some(expected) = fingerprint {
        // Under chaos the injected batch deliberately degrades jobs; the
        // drift gate anchors on the no-fault reference instead.
        let actual = reference.as_ref().unwrap_or(&report).total_winner_cost();
        if actual != expected {
            eprintln!(
                "engine_batch: fingerprint drift — total winner cost {actual}, expected {expected}"
            );
            return ExitCode::FAILURE;
        }
        eprintln!("engine_batch: fingerprint OK (total winner cost {actual})");
    }

    if let (Some(reference), Some(plan)) = (&reference, &plan) {
        let injected = plan.injections().len();
        if plan.num_fired() != injected {
            eprintln!(
                "engine_batch: chaos plan misfired — {} of {injected} injections fired",
                plan.num_fired()
            );
            return ExitCode::FAILURE;
        }
        let non_solved: Vec<&str> = report
            .jobs
            .iter()
            .filter(|j| j.outcome != Some(JobOutcome::Solved))
            .map(|j| j.name.as_str())
            .collect();
        if non_solved.len() != injected {
            eprintln!(
                "engine_batch: expected {injected} non-solved outcomes, got {} ({:?})",
                non_solved.len(),
                non_solved
            );
            return ExitCode::FAILURE;
        }
        // Graceful degradation: every injected job still carries a winner
        // (the engine hard-asserts each attempt's compatibility, so a
        // winner is a verified solution). The batch-wide num_solved gate
        // above already covered this; re-check per targeted job anyway.
        let targets = plan.targets();
        for job in &report.jobs {
            if targets.contains(&job.name.as_str()) && job.winner.is_none() {
                eprintln!("engine_batch: injected job {} lost its winner", job.name);
                return ExitCode::FAILURE;
            }
        }
        // Fault isolation: jobs the plan does not target must be
        // byte-identical to the no-fault reference.
        for (chaotic, clean) in report.jobs.iter().zip(&reference.jobs) {
            if targets.contains(&chaotic.name.as_str()) {
                continue;
            }
            if chaotic.to_json(false).render() != clean.to_json(false).render() {
                eprintln!(
                    "engine_batch: untargeted job {} changed under chaos",
                    chaotic.name
                );
                return ExitCode::FAILURE;
            }
        }
        eprintln!(
            "engine_batch: chaos OK (seed {}, {injected} injections fired on {:?}, \
             {} session quarantines, clean jobs byte-identical)",
            plan.seed(),
            targets,
            report.reuse.quarantines,
        );
    }

    if smoke {
        // The determinism gate: the same corpus on one worker must produce
        // byte-identical timing-free output (in whichever mode ran above,
        // chaos included — the re-run arms a fresh plan from the same seed).
        let (single, _) = solve(&jobs, 1, chaos);
        if single.to_json(false) != report.to_json(false)
            || single.to_csv(false) != report.to_csv(false)
        {
            eprintln!(
                "engine_batch: output differs between 1 and {} workers",
                report.num_workers
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "engine_batch: smoke OK ({} jobs, {} workers, strategy {}, {}{}deterministic vs 1 worker)",
            report.jobs.len(),
            report.num_workers,
            options.strategy,
            if wide { "wide, " } else { "" },
            if chaos.is_some() { "chaos, " } else { "" },
        );
    }

    if let Some(gate_ns) = overhead_gate {
        brel_obs::uninstall();
        let per_span_ns = brel_obs::disabled_span_ns();
        if per_span_ns > gate_ns {
            eprintln!(
                "engine_batch: disabled span costs {per_span_ns} ns/call, gate is {gate_ns} ns"
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "engine_batch: overhead OK (disabled span {per_span_ns} ns/call, gate {gate_ns} ns)"
        );
    }
    ExitCode::SUCCESS
}

/// Files the batch's siloed stats structs into one metrics registry —
/// the unified read side `--obs-report` prints.
fn unified_metrics(report: &BatchReport) -> MetricsRegistry {
    let registry = MetricsRegistry::new();
    registry.absorb("batch.reuse", &report.reuse.metrics());
    let mut explored = 0u64;
    let mut splits = 0u64;
    for job in &report.jobs {
        for attempt in &job.attempts {
            explored += attempt.explored as u64;
            splits += attempt.splits as u64;
            registry.absorb_delta("batch.kernel.cache", &counters_only_cache(&attempt.cache));
            registry.absorb_delta("batch.kernel.gc", &counters_only_gc(&attempt.gc));
        }
    }
    registry.absorb(
        "batch.search",
        &[("explored", explored), ("splits", splits)],
    );
    registry
}

/// The additive subset of [`brel_bdd::CacheStats`] (gauges like table
/// capacities are per-manager and meaningless summed across jobs).
fn counters_only_cache(cache: &brel_bdd::CacheStats) -> Vec<(&'static str, u64)> {
    cache
        .metrics()
        .into_iter()
        .filter(|(name, _)| {
            matches!(
                *name,
                "unique_lookups"
                    | "unique_hits"
                    | "cache_lookups"
                    | "cache_hits"
                    | "cache_inserts"
                    | "cache_evictions"
            )
        })
        .collect()
}

/// The additive subset of [`brel_bdd::GcStats`].
fn counters_only_gc(gc: &brel_bdd::GcStats) -> Vec<(&'static str, u64)> {
    gc.metrics()
        .into_iter()
        .filter(|(name, _)| matches!(*name, "collections" | "nodes_reclaimed" | "reorder_passes"))
        .collect()
}

fn usage(error: &str) -> ExitCode {
    eprintln!("engine_batch: {error}");
    eprintln!(
        "usage: engine_batch [--smoke] [--hard] [--workers N] [--instances N] [--random N] \
         [--strategy fifo|dfs|best-first] [--wide] [--cold] [--lookahead N] \
         [--steal-threshold N] [--fingerprint N] \
         [--chaos SEED] [--deadline-ms N] [--max-live-nodes N] [--retries N] \
         [--json|--csv] [--timing] [--trace-out PATH] [--obs-report] [--overhead-gate NS]"
    );
    ExitCode::FAILURE
}
