//! Prints the Section 7.7 symmetry-detection ablation.
//!
//! Usage: `cargo run --release -p brel-bench --bin symmetry_ablation
//!         [num_instances] [max_explored]`

fn main() {
    let num = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX);
    let max_explored = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    let rows = brel_bench::symmetry_ablation::run(num, max_explored);
    print!("{}", brel_bench::symmetry_ablation::render(&rows));
}
