//! The batch-engine experiment: streams the Table-2 relation family plus
//! seeded `random_well_defined_relation` corpora through `brel-engine`'s
//! portfolio mode and summarizes which backend wins each job.
//!
//! This is the throughput-layer counterpart of [`crate::table2`]: instead
//! of comparing two solvers instance by instance on one thread, a mixed
//! corpus is fanned out over a worker pool and every job races the full
//! backend portfolio.

use std::sync::Arc;

use brel_benchdata::random_relation::random_well_defined_relation;
use brel_benchdata::table2 as family;
use brel_engine::{
    BatchReport, Engine, FaultPlan, JobSpec, RelationSpec, SearchStrategy, WideOptions,
};

/// Shape of the mixed corpus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusOptions {
    /// How many instances of the Table-2 family to include (clamped to the
    /// family size).
    pub table2_instances: usize,
    /// How many seeded random well-defined relations to include.
    pub random_relations: usize,
    /// Inputs of each random relation.
    pub random_inputs: usize,
    /// Outputs of each random relation.
    pub random_outputs: usize,
    /// Probability of extra related output vertices per input (the source
    /// of non-functional flexibility).
    pub extra_pair_prob: f64,
    /// Search strategy of every job's BREL backend.
    pub strategy: SearchStrategy,
}

impl CorpusOptions {
    /// The full corpus: every Table-2 instance plus eight random relations.
    pub fn full() -> Self {
        CorpusOptions {
            table2_instances: usize::MAX,
            random_relations: 8,
            random_inputs: 5,
            random_outputs: 3,
            extra_pair_prob: 0.25,
            strategy: SearchStrategy::Fifo,
        }
    }

    /// The CI smoke corpus: small instances only, so the batch solves in
    /// seconds even on one core.
    pub fn smoke() -> Self {
        CorpusOptions {
            table2_instances: 4,
            random_relations: 4,
            random_inputs: 4,
            random_outputs: 3,
            extra_pair_prob: 0.2,
            strategy: SearchStrategy::Fifo,
        }
    }
}

/// Builds the mixed portfolio corpus: Table-2 instances first (in family
/// order), then the seeded random relations. Deterministic: the same
/// options always produce the same job list.
pub fn corpus(options: &CorpusOptions) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for instance in family::instances()
        .into_iter()
        .take(options.table2_instances)
    {
        let (_space, relation) = family::generate(&instance);
        let spec = RelationSpec::from_relation(&relation).expect("family spaces are enumerable");
        jobs.push(JobSpec::portfolio(instance.name, spec).with_strategy(options.strategy));
    }
    for seed in 0..options.random_relations as u64 {
        let (_space, relation) = random_well_defined_relation(
            options.random_inputs,
            options.random_outputs,
            options.extra_pair_prob,
            seed,
        );
        let spec = RelationSpec::from_relation(&relation).expect("random spaces are enumerable");
        jobs.push(JobSpec::portfolio(format!("rand{seed}"), spec).with_strategy(options.strategy));
    }
    jobs
}

/// Runs a corpus through the engine with the given worker count (warm
/// per-worker sessions and the cross-job subrelation cache on, the engine
/// default).
pub fn run(jobs: &[JobSpec], num_workers: usize) -> BatchReport {
    Engine::with_workers(num_workers).solve_batch(jobs)
}

/// Runs a corpus with cross-job reuse disabled: one cold BDD manager per
/// job, the pre-redesign behaviour. The deterministic output must equal
/// [`run`]'s — only wall clocks move.
pub fn run_cold(jobs: &[JobSpec], num_workers: usize) -> BatchReport {
    Engine::with_workers(num_workers)
        .with_reuse(false)
        .solve_batch(jobs)
}

/// Runs a corpus in wide mode: jobs go one at a time and the worker pool
/// runs a work-stealing search inside each BREL solve.
pub fn run_wide(jobs: &[JobSpec], num_workers: usize, options: WideOptions) -> BatchReport {
    Engine::with_workers(num_workers)
        .with_wide(options)
        .solve_batch(jobs)
}

/// Stable provenance tag of the default mixed corpus ([`corpus`]), logged
/// next to every bench number measured on it so a JSON consumer can tell
/// which corpus a wide-vs-sequential comparison ran on.
pub const DEFAULT_CORPUS_NAME: &str = "table2+rand5x3";

/// Stable provenance tag of [`hard_corpus`], logged next to every bench
/// number measured on it so a JSON consumer can tell which corpus a
/// wide-vs-sequential comparison ran on.
pub const HARD_CORPUS_NAME: &str = "hard-rand7x4";

/// The checked-in hard-relation workload: seeded random 7-input/4-output
/// relations with heavy output flexibility and a deep exploration budget,
/// sized so the *sequential* explorer needs on the order of a second — a
/// search long enough for wide mode's parallelism to pay for its
/// coordination. Single-backend BREL jobs under FIFO (no dominance
/// pruning), so the explored set is budget-shaped, not bound-shaped, and
/// the wide speedup measures raw expansion throughput.
pub fn hard_corpus() -> Vec<JobSpec> {
    use brel_engine::{BackendKind, JobBudget};
    (0..4u64)
        .map(|seed| {
            let (_space, relation) = random_well_defined_relation(7, 4, 0.35, 1000 + seed);
            let spec =
                RelationSpec::from_relation(&relation).expect("random spaces are enumerable");
            JobSpec::single(format!("hard{seed}"), spec, BackendKind::Brel)
                .with_strategy(SearchStrategy::Fifo)
                .with_budget(JobBudget {
                    max_explored: Some(600),
                    fifo_capacity: Some(8192),
                    ..JobBudget::default()
                })
        })
        .collect()
}

/// Minimum corpus size for a seeded chaos run: [`FaultPlan::seeded`]
/// places its three fault kinds on *distinct* jobs, so a smaller corpus
/// would silently arm fewer injections and the chaos gates ("all
/// injections fired") would pass vacuously.
pub const MIN_CHAOS_JOBS: usize = 3;

/// Checks that a corpus is large enough for a seeded chaos run. Returns
/// the structured error message for the CLI to print (and fail with) when
/// it is not.
pub fn chaos_corpus_error(num_jobs: usize) -> Option<String> {
    (num_jobs < MIN_CHAOS_JOBS).then(|| {
        format!(
            "chaos run needs at least {MIN_CHAOS_JOBS} jobs so every fault kind \
             lands on a distinct job, but the corpus has only {num_jobs}; \
             raise --instances/--random"
        )
    })
}

/// Runs a corpus with an armed fault plan: the engine fires the plan's
/// injections into the matching jobs and classifies the outcomes. Plans are
/// armed-once, so callers must build a fresh plan per run.
pub fn run_chaos(jobs: &[JobSpec], num_workers: usize, plan: Arc<FaultPlan>) -> BatchReport {
    Engine::with_workers(num_workers)
        .with_fault_plan(plan)
        .solve_batch(jobs)
}

/// Renders the batch as a human-readable table: one line per job with every
/// backend's cost and the selected winner.
pub fn render(report: &BatchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Batch engine: {} jobs, {} solved, {} workers, {:.3}s\n",
        report.jobs.len(),
        report.num_solved(),
        report.num_workers,
        report.wall_micros as f64 / 1e6,
    ));
    out.push_str(
        "name     PI PO | backend strat  cost cubes lits expl  hit%     cpu[s] | winner\n",
    );
    for job in &report.jobs {
        if let Some(error) = &job.error {
            out.push_str(&format!(
                "{:8} {:2} {:2} | error: {error}\n",
                job.name, job.num_inputs, job.num_outputs
            ));
            continue;
        }
        if job.attempts.is_empty() {
            // Every backend faulted away and no fallback recovered the job.
            out.push_str(&format!(
                "{:8} {:2} {:2} | {}: {}\n",
                job.name,
                job.num_inputs,
                job.num_outputs,
                job.outcome.map_or("failed", |o| o.name()),
                job.fault.as_deref().unwrap_or("no attempt completed"),
            ));
            continue;
        }
        for (i, attempt) in job.attempts.iter().enumerate() {
            let prefix = if i == 0 {
                format!("{:8} {:2} {:2}", job.name, job.num_inputs, job.num_outputs)
            } else {
                " ".repeat(14)
            };
            let strat = match attempt.strategy {
                Some(SearchStrategy::Fifo) => "fifo",
                Some(SearchStrategy::Dfs) => "dfs",
                Some(SearchStrategy::BestFirst) => "bf",
                None => "-",
            };
            out.push_str(&format!(
                "{prefix} | {:7} {:5} {:5} {:5} {:4} {:4} {:5.1} {:10.4} | {}\n",
                attempt.backend.name(),
                strat,
                attempt.cost,
                attempt.cubes,
                attempt.literals,
                attempt.explored,
                attempt.cache.cache_hit_rate() * 100.0,
                attempt.wall_micros as f64 / 1e6,
                match (job.winner == Some(i), job.outcome) {
                    (true, Some(brel_engine::JobOutcome::Degraded)) => "<-- winner (degraded)",
                    (true, _) => "<-- winner",
                    (false, _) => "",
                },
            ));
        }
        if let Some(fault) = &job.fault {
            out.push_str(&format!("{} | fault: {fault}\n", " ".repeat(14)));
        }
    }
    for (kind, wins) in report.wins_by_backend() {
        out.push_str(&format!("wins[{}] = {}\n", kind.name(), wins));
    }
    out.push_str(&format!(
        "reuse: {} warm resets, {} cold builds, {} cache hits / {} misses, {} quarantines\n",
        report.reuse.warm_reuses,
        report.reuse.cold_builds,
        report.reuse.subrel_cache_hits,
        report.reuse.subrel_cache_misses,
        report.reuse.quarantines,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_corpus_mixes_family_and_random_jobs() {
        let jobs = corpus(&CorpusOptions::smoke());
        assert_eq!(jobs.len(), 8);
        assert_eq!(jobs[0].name, "int1");
        assert_eq!(jobs[4].name, "rand0");
        assert!(jobs.iter().all(|j| j.backends.len() == 3));
    }

    #[test]
    fn the_hard_corpus_is_stable_and_single_backend() {
        use brel_engine::BackendKind;
        let jobs = hard_corpus();
        assert_eq!(jobs.len(), 4);
        assert_eq!(jobs[0].name, "hard0");
        assert!(jobs
            .iter()
            .all(|j| j.backends == vec![BackendKind::Brel] && j.strategy == SearchStrategy::Fifo));
        assert!(jobs.iter().all(|j| j.budget.max_explored == Some(600)));
    }

    #[test]
    fn chaos_needs_three_jobs_for_three_fault_kinds() {
        for too_small in 0..MIN_CHAOS_JOBS {
            let message = chaos_corpus_error(too_small).expect("sub-3 corpora are rejected");
            assert!(message.contains(&format!("only {too_small}")), "{message}");
        }
        assert_eq!(chaos_corpus_error(MIN_CHAOS_JOBS), None);
        assert_eq!(chaos_corpus_error(100), None);
    }

    #[test]
    fn smoke_batch_solves_everything_and_is_worker_count_invariant() {
        let jobs = corpus(&CorpusOptions {
            table2_instances: 2,
            random_relations: 2,
            ..CorpusOptions::smoke()
        });
        let one = run(&jobs, 1);
        let two = run(&jobs, 2);
        assert_eq!(one.num_solved(), jobs.len());
        assert_eq!(one.to_json(false), two.to_json(false));
        assert_eq!(one.to_csv(false), two.to_csv(false));
    }

    #[test]
    fn strategy_flows_into_every_job_and_the_serialized_output() {
        let options = CorpusOptions {
            table2_instances: 1,
            random_relations: 1,
            strategy: SearchStrategy::BestFirst,
            ..CorpusOptions::smoke()
        };
        let jobs = corpus(&options);
        assert!(jobs.iter().all(|j| j.strategy == SearchStrategy::BestFirst));
        let report = run(&jobs, 2);
        assert!(report
            .to_json(false)
            .contains("\"strategy\": \"best-first\""));
        assert!(report.to_csv(false).contains(",brel,best-first,"));
    }

    #[test]
    fn wide_mode_is_worker_count_invariant_on_the_smoke_corpus() {
        let jobs = corpus(&CorpusOptions {
            table2_instances: 2,
            random_relations: 1,
            strategy: SearchStrategy::BestFirst,
            ..CorpusOptions::smoke()
        });
        let options = WideOptions {
            lookahead: 4,
            ..WideOptions::default()
        };
        let one = run_wide(&jobs, 1, options);
        let two = run_wide(&jobs, 2, options);
        assert_eq!(one.num_solved(), jobs.len());
        assert_eq!(one.to_json(false), two.to_json(false));
        assert_eq!(one.to_csv(false), two.to_csv(false));
        assert_eq!(one.total_winner_cost(), two.total_winner_cost());
    }

    #[test]
    fn cold_runs_match_warm_runs_byte_for_byte() {
        let jobs = corpus(&CorpusOptions {
            table2_instances: 2,
            random_relations: 2,
            ..CorpusOptions::smoke()
        });
        let warm = run(&jobs, 2);
        let cold = run_cold(&jobs, 2);
        assert_eq!(warm.to_json(false), cold.to_json(false));
        assert_eq!(warm.to_csv(false), cold.to_csv(false));
        assert_eq!(cold.reuse.warm_reuses, 0);
        assert_eq!(
            cold.reuse.subrel_cache_hits + cold.reuse.subrel_cache_misses,
            0
        );
    }

    #[test]
    fn render_mentions_every_job_and_the_winner_tally() {
        let jobs = corpus(&CorpusOptions {
            table2_instances: 1,
            random_relations: 1,
            ..CorpusOptions::smoke()
        });
        let report = run(&jobs, 2);
        let text = render(&report);
        for job in &jobs {
            assert!(text.contains(&job.name));
        }
        assert!(text.contains("<-- winner"));
        assert!(text.contains("wins[brel]"));
        assert!(text.contains("reuse:"));
    }
}
