//! # brel-bench
//!
//! The experiment harness of the reproduction: one module per table or
//! prose experiment of the paper's evaluation. Each module exposes a `run`
//! function returning structured rows plus a `render` helper producing the
//! table in the same layout as the paper; the `--bin` targets print the
//! tables and the Criterion benches (in `benches/`) time the underlying
//! kernels.
//!
//! | Paper artefact | Module | Binary |
//! |---|---|---|
//! | Table 1 (ISF-minimization comparison) | [`table1`] | `table1_isf` |
//! | Table 2 (BREL vs gyocro) | [`table2`] | `table2_gyocro` |
//! | Table 3 (mux-latch decomposition) | [`table3`] | `table3_decomposition` |
//! | §7.7 symmetry experiment | [`symmetry_ablation`] | `symmetry_ablation` |
//! | Parallel portfolio batch run | [`engine_batch`] | `engine_batch` |
//! | BDD-kernel perf trajectory | [`bdd_kernel`] | `bdd_kernel` |
//! | Search-strategy comparison | [`search_strategies`] | `search_strategies` |
//!
//! The table binaries accept `--json` to emit their rows through the shared
//! `brel-engine` serializer (for `BENCH_*.json` perf trajectories); the
//! `engine_batch` binary fans the corpora over a `brel-engine` worker pool.

#![warn(missing_docs)]

use brel_bdd::Var;
use brel_network::{Network, SignalId};
use brel_relation::MultiOutputFunction;
use brel_sop::Cover;

pub mod bdd_kernel;
pub mod engine_batch;
pub mod search_strategies;
pub mod symmetry_ablation;
pub mod table1;
pub mod table2;
pub mod table3;

/// Builds a combinational [`Network`] computing a multiple-output function
/// (one SOP node per output), the bridge between solver output and the
/// technology-mapping flow used by Tables 2 and 3.
pub fn network_from_function(name: &str, f: &MultiOutputFunction) -> Network {
    let space = f.space();
    let mut net = Network::new(name);
    let inputs: Vec<SignalId> = (0..space.num_inputs())
        .map(|i| {
            net.add_input(space.input_name(i))
                .expect("fresh input name")
        })
        .collect();
    let input_vars: Vec<Var> = space.input_vars().to_vec();
    for (i, g) in f.outputs().iter().enumerate() {
        let cover = Cover::from_isop(&g.isop(), &input_vars);
        let node = net
            .add_node(
                &format!("{}_n", space.output_name(i)),
                inputs.clone(),
                cover,
            )
            .expect("fresh node name");
        net.add_output(node);
    }
    net
}

/// Formats a ratio as the normalized percentages used by Table 1
/// (1.00 = the reference strategy).
pub fn normalized(value: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        1.0
    } else {
        value / reference
    }
}

/// Parses the `[num_instances] [--json]` argument convention shared by the
/// `table1_isf` and `table2_gyocro` binaries.
///
/// # Errors
///
/// Returns a message naming the first argument that is neither a count nor
/// `--json`, so typos fail loudly instead of silently running the default
/// configuration.
pub fn parse_table_args<I: IntoIterator<Item = String>>(args: I) -> Result<(usize, bool), String> {
    let mut num = usize::MAX;
    let mut json = false;
    for arg in args {
        if arg == "--json" {
            json = true;
        } else if let Ok(n) = arg.parse() {
            num = n;
        } else {
            return Err(format!(
                "unknown argument `{arg}` (expected an instance count or --json)"
            ));
        }
    }
    Ok((num, json))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_args_accept_count_and_json_in_any_order() {
        let to_args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_table_args(to_args(&[])), Ok((usize::MAX, false)));
        assert_eq!(parse_table_args(to_args(&["3"])), Ok((3, false)));
        assert_eq!(parse_table_args(to_args(&["--json", "2"])), Ok((2, true)));
        assert_eq!(parse_table_args(to_args(&["2", "--json"])), Ok((2, true)));
        assert!(parse_table_args(to_args(&["--jsonn"]))
            .unwrap_err()
            .contains("--jsonn"));
    }
}
