//! # brel-bench
//!
//! The experiment harness of the reproduction: one module per table or
//! prose experiment of the paper's evaluation. Each module exposes a `run`
//! function returning structured rows plus a `render` helper producing the
//! table in the same layout as the paper; the `--bin` targets print the
//! tables and the Criterion benches (in `benches/`) time the underlying
//! kernels.
//!
//! | Paper artefact | Module | Binary |
//! |---|---|---|
//! | Table 1 (ISF-minimization comparison) | [`table1`] | `table1_isf` |
//! | Table 2 (BREL vs gyocro) | [`table2`] | `table2_gyocro` |
//! | Table 3 (mux-latch decomposition) | [`table3`] | `table3_decomposition` |
//! | §7.7 symmetry experiment | [`symmetry_ablation`] | `symmetry_ablation` |

#![warn(missing_docs)]

use brel_bdd::Var;
use brel_network::{Network, SignalId};
use brel_relation::MultiOutputFunction;
use brel_sop::Cover;

pub mod symmetry_ablation;
pub mod table1;
pub mod table2;
pub mod table3;

/// Builds a combinational [`Network`] computing a multiple-output function
/// (one SOP node per output), the bridge between solver output and the
/// technology-mapping flow used by Tables 2 and 3.
pub fn network_from_function(name: &str, f: &MultiOutputFunction) -> Network {
    let space = f.space();
    let mut net = Network::new(name);
    let inputs: Vec<SignalId> = (0..space.num_inputs())
        .map(|i| {
            net.add_input(space.input_name(i))
                .expect("fresh input name")
        })
        .collect();
    let input_vars: Vec<Var> = space.input_vars().to_vec();
    for (i, g) in f.outputs().iter().enumerate() {
        let cover = Cover::from_isop(&g.isop(), &input_vars);
        let node = net
            .add_node(
                &format!("{}_n", space.output_name(i)),
                inputs.clone(),
                cover,
            )
            .expect("fresh node name");
        net.add_output(node);
    }
    net
}

/// Formats a ratio as the normalized percentages used by Table 1
/// (1.00 = the reference strategy).
pub fn normalized(value: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        1.0
    } else {
        value / reference
    }
}
