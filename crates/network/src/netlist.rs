//! The technology-independent Boolean network.

use std::collections::HashMap;
use std::fmt;

use brel_bdd::{Bdd, BddSession, Var};
use brel_sop::Cover;

/// Identifier of a signal (net) in a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(pub(crate) u32);

impl SignalId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What drives a signal.
#[derive(Debug, Clone)]
pub enum SignalKind {
    /// A primary input.
    PrimaryInput,
    /// The output of a flip-flop (a state variable of the sequential
    /// circuit; combinationally it behaves like an input).
    LatchOutput,
    /// An internal node computing a sum-of-products of its fanins.
    Internal {
        /// The fanin signals, in cover-column order.
        fanins: Vec<SignalId>,
        /// The local function as a cover over the fanins.
        cover: Cover,
    },
    /// A constant driver.
    Constant(bool),
}

/// A D flip-flop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latch {
    /// The next-state (D) input signal.
    pub input: SignalId,
    /// The state (Q) output signal.
    pub output: SignalId,
    /// Initial value.
    pub init: bool,
}

/// Errors produced by network construction and analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// A referenced signal name does not exist.
    UnknownSignal(String),
    /// A signal name was defined twice.
    DuplicateSignal(String),
    /// The cover width does not match the number of fanins.
    ArityMismatch {
        /// Node name.
        node: String,
        /// Number of fanins.
        fanins: usize,
        /// Cover width.
        cover_width: usize,
    },
    /// The network contains a combinational cycle.
    CombinationalCycle,
    /// Text parsing failed.
    Parse(String),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::UnknownSignal(n) => write!(f, "unknown signal `{n}`"),
            NetworkError::DuplicateSignal(n) => write!(f, "signal `{n}` defined twice"),
            NetworkError::ArityMismatch {
                node,
                fanins,
                cover_width,
            } => write!(
                f,
                "node `{node}` has {fanins} fanins but a cover of width {cover_width}"
            ),
            NetworkError::CombinationalCycle => write!(f, "combinational cycle detected"),
            NetworkError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// The result of [`Network::global_functions`]: the BDD manager, the
/// variable assigned to each combinational input, and the global function of
/// every signal.
pub type GlobalFunctions = (BddSession, HashMap<SignalId, Var>, HashMap<SignalId, Bdd>);

/// A multilevel Boolean network: primary inputs and outputs, internal
/// sum-of-products nodes and D flip-flops.
#[derive(Debug, Clone, Default)]
pub struct Network {
    name: String,
    kinds: Vec<SignalKind>,
    names: Vec<String>,
    by_name: HashMap<String, SignalId>,
    primary_outputs: Vec<SignalId>,
    latches: Vec<Latch>,
}

impl Network {
    /// Creates an empty network.
    pub fn new(name: impl Into<String>) -> Self {
        Network {
            name: name.into(),
            ..Network::default()
        }
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn add_signal(&mut self, name: &str, kind: SignalKind) -> Result<SignalId, NetworkError> {
        if self.by_name.contains_key(name) {
            return Err(NetworkError::DuplicateSignal(name.to_string()));
        }
        let id = SignalId(self.kinds.len() as u32);
        self.kinds.push(kind);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Adds a primary input.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::DuplicateSignal`] if the name is taken.
    pub fn add_input(&mut self, name: &str) -> Result<SignalId, NetworkError> {
        self.add_signal(name, SignalKind::PrimaryInput)
    }

    /// Adds a constant driver.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::DuplicateSignal`] if the name is taken.
    pub fn add_constant(&mut self, name: &str, value: bool) -> Result<SignalId, NetworkError> {
        self.add_signal(name, SignalKind::Constant(value))
    }

    /// Adds an internal node computing `cover` over `fanins`.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::DuplicateSignal`] or
    /// [`NetworkError::ArityMismatch`].
    pub fn add_node(
        &mut self,
        name: &str,
        fanins: Vec<SignalId>,
        cover: Cover,
    ) -> Result<SignalId, NetworkError> {
        if cover.width() != fanins.len() {
            return Err(NetworkError::ArityMismatch {
                node: name.to_string(),
                fanins: fanins.len(),
                cover_width: cover.width(),
            });
        }
        self.add_signal(name, SignalKind::Internal { fanins, cover })
    }

    /// Replaces the function of an existing internal node.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::ArityMismatch`] if the widths disagree or
    /// [`NetworkError::UnknownSignal`] if `id` is not an internal node.
    pub fn replace_node(
        &mut self,
        id: SignalId,
        fanins: Vec<SignalId>,
        cover: Cover,
    ) -> Result<(), NetworkError> {
        if cover.width() != fanins.len() {
            return Err(NetworkError::ArityMismatch {
                node: self.names[id.index()].clone(),
                fanins: fanins.len(),
                cover_width: cover.width(),
            });
        }
        match &mut self.kinds[id.index()] {
            k @ SignalKind::Internal { .. } => {
                *k = SignalKind::Internal { fanins, cover };
                Ok(())
            }
            _ => Err(NetworkError::UnknownSignal(self.names[id.index()].clone())),
        }
    }

    /// Marks a signal as a primary output.
    pub fn add_output(&mut self, id: SignalId) {
        if !self.primary_outputs.contains(&id) {
            self.primary_outputs.push(id);
        }
    }

    /// Adds a D flip-flop: `output` becomes a state variable fed by `input`.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::DuplicateSignal`] if the output name is taken.
    pub fn add_latch(
        &mut self,
        input: SignalId,
        output_name: &str,
        init: bool,
    ) -> Result<SignalId, NetworkError> {
        let output = self.add_signal(output_name, SignalKind::LatchOutput)?;
        self.latches.push(Latch {
            input,
            output,
            init,
        });
        Ok(output)
    }

    /// Re-targets an existing latch to a new next-state signal.
    ///
    /// # Panics
    ///
    /// Panics if `latch_index` is out of range.
    pub fn set_latch_input(&mut self, latch_index: usize, input: SignalId) {
        self.latches[latch_index].input = input;
    }

    /// Looks up a signal by name.
    pub fn signal(&self, name: &str) -> Option<SignalId> {
        self.by_name.get(name).copied()
    }

    /// Name of a signal.
    pub fn signal_name(&self, id: SignalId) -> &str {
        &self.names[id.index()]
    }

    /// Kind of a signal.
    pub fn kind(&self, id: SignalId) -> &SignalKind {
        &self.kinds[id.index()]
    }

    /// All signal ids.
    pub fn signals(&self) -> impl Iterator<Item = SignalId> + '_ {
        (0..self.kinds.len() as u32).map(SignalId)
    }

    /// The primary inputs.
    pub fn primary_inputs(&self) -> Vec<SignalId> {
        self.signals()
            .filter(|&s| matches!(self.kinds[s.index()], SignalKind::PrimaryInput))
            .collect()
    }

    /// The primary outputs.
    pub fn primary_outputs(&self) -> &[SignalId] {
        &self.primary_outputs
    }

    /// The flip-flops.
    pub fn latches(&self) -> &[Latch] {
        &self.latches
    }

    /// The combinational inputs: primary inputs plus latch outputs.
    pub fn combinational_inputs(&self) -> Vec<SignalId> {
        self.signals()
            .filter(|&s| {
                matches!(
                    self.kinds[s.index()],
                    SignalKind::PrimaryInput | SignalKind::LatchOutput
                )
            })
            .collect()
    }

    /// The combinational outputs: primary outputs plus latch (next-state)
    /// inputs.
    pub fn combinational_outputs(&self) -> Vec<SignalId> {
        let mut outs = self.primary_outputs.clone();
        for l in &self.latches {
            if !outs.contains(&l.input) {
                outs.push(l.input);
            }
        }
        outs
    }

    /// Number of internal nodes.
    pub fn num_nodes(&self) -> usize {
        self.signals()
            .filter(|&s| matches!(self.kinds[s.index()], SignalKind::Internal { .. }))
            .count()
    }

    /// Total number of SOP literals over all internal nodes (the usual
    /// technology-independent size metric).
    pub fn literal_count(&self) -> usize {
        self.signals()
            .map(|s| match &self.kinds[s.index()] {
                SignalKind::Internal { cover, .. } => cover.num_literals(),
                _ => 0,
            })
            .sum()
    }

    /// Topological order of the internal nodes (fanins before fanouts).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::CombinationalCycle`] if the combinational
    /// part is cyclic.
    pub fn topological_order(&self) -> Result<Vec<SignalId>, NetworkError> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks = vec![Mark::White; self.kinds.len()];
        let mut order = Vec::new();
        // Iterative DFS to avoid recursion limits on deep networks.
        for root in self.signals() {
            if marks[root.index()] != Mark::White {
                continue;
            }
            let mut stack = vec![(root, false)];
            while let Some((node, expanded)) = stack.pop() {
                if expanded {
                    marks[node.index()] = Mark::Black;
                    if matches!(self.kinds[node.index()], SignalKind::Internal { .. }) {
                        order.push(node);
                    }
                    continue;
                }
                match marks[node.index()] {
                    Mark::Black => continue,
                    Mark::Grey => return Err(NetworkError::CombinationalCycle),
                    Mark::White => {}
                }
                marks[node.index()] = Mark::Grey;
                stack.push((node, true));
                if let SignalKind::Internal { fanins, .. } = &self.kinds[node.index()] {
                    for &f in fanins {
                        match marks[f.index()] {
                            Mark::White => stack.push((f, false)),
                            Mark::Grey => return Err(NetworkError::CombinationalCycle),
                            Mark::Black => {}
                        }
                    }
                }
            }
        }
        Ok(order)
    }

    /// Computes the global BDD of every signal in terms of the combinational
    /// inputs. Returns the manager, the input-variable assignment and the
    /// per-signal global functions.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::CombinationalCycle`] on cyclic networks.
    pub fn global_functions(&self) -> Result<GlobalFunctions, NetworkError> {
        let inputs = self.combinational_inputs();
        let mgr = BddSession::new(inputs.len());
        let mut input_vars = HashMap::new();
        let mut funcs: HashMap<SignalId, Bdd> = HashMap::new();
        for (i, &s) in inputs.iter().enumerate() {
            let v = Var::from(i);
            mgr.set_var_name(v, self.signal_name(s));
            input_vars.insert(s, v);
            funcs.insert(s, mgr.var(v));
        }
        for s in self.signals() {
            if let SignalKind::Constant(value) = self.kinds[s.index()] {
                funcs.insert(s, if value { mgr.one() } else { mgr.zero() });
            }
        }
        for node in self.topological_order()? {
            let SignalKind::Internal { fanins, cover } = &self.kinds[node.index()] else {
                continue;
            };
            // Build the node function by composing the cover with the global
            // functions of the fanins.
            let mut acc = mgr.zero();
            for cube in cover.cubes() {
                let mut term = mgr.one();
                for (pos, value) in cube.values().iter().enumerate() {
                    let fanin = funcs
                        .get(&fanins[pos])
                        .expect("fanins precede fanouts in topological order")
                        .clone();
                    match value {
                        brel_sop::CubeValue::One => term = term.and(&fanin),
                        brel_sop::CubeValue::Zero => term = term.and(&fanin.complement()),
                        brel_sop::CubeValue::DontCare => {}
                    }
                }
                acc = acc.or(&term);
            }
            funcs.insert(node, acc);
        }
        Ok((mgr, input_vars, funcs))
    }

    /// Simulates the combinational part on one input assignment (indexed in
    /// the order of [`Network::combinational_inputs`]).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::CombinationalCycle`] on cyclic networks.
    pub fn simulate(&self, inputs: &[bool]) -> Result<HashMap<SignalId, bool>, NetworkError> {
        let cis = self.combinational_inputs();
        let mut values: HashMap<SignalId, bool> = HashMap::new();
        for (i, &s) in cis.iter().enumerate() {
            values.insert(s, *inputs.get(i).unwrap_or(&false));
        }
        for s in self.signals() {
            if let SignalKind::Constant(v) = self.kinds[s.index()] {
                values.insert(s, v);
            }
        }
        for node in self.topological_order()? {
            let SignalKind::Internal { fanins, cover } = &self.kinds[node.index()] else {
                continue;
            };
            let local: Vec<bool> = fanins.iter().map(|f| values[f]).collect();
            values.insert(node, cover.eval(&local));
        }
        Ok(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brel_sop::Cube;

    fn cover(width: usize, rows: &[&str]) -> Cover {
        Cover::from_cubes(
            width,
            rows.iter().map(|r| Cube::parse(r).unwrap()).collect(),
        )
        .unwrap()
    }

    /// Builds a tiny sequential circuit:
    /// n1 = a·b, n2 = n1 + c, ff: q <- n2, out = q ⊕ a.
    fn sample() -> Network {
        let mut net = Network::new("sample");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let n1 = net.add_node("n1", vec![a, b], cover(2, &["11"])).unwrap();
        let n2 = net
            .add_node("n2", vec![n1, c], cover(2, &["1-", "-1"]))
            .unwrap();
        let q = net.add_latch(n2, "q", false).unwrap();
        let out = net
            .add_node("out", vec![q, a], cover(2, &["10", "01"]))
            .unwrap();
        net.add_output(out);
        net
    }

    #[test]
    fn construction_and_counts() {
        let net = sample();
        assert_eq!(net.primary_inputs().len(), 3);
        assert_eq!(net.primary_outputs().len(), 1);
        assert_eq!(net.latches().len(), 1);
        assert_eq!(net.num_nodes(), 3);
        assert_eq!(net.combinational_inputs().len(), 4);
        assert_eq!(net.combinational_outputs().len(), 2);
        assert_eq!(net.literal_count(), 2 + 2 + 4);
        assert!(net.signal("n1").is_some());
        assert!(net.signal("missing").is_none());
    }

    #[test]
    fn duplicate_and_arity_errors() {
        let mut net = Network::new("t");
        net.add_input("a").unwrap();
        assert!(matches!(
            net.add_input("a"),
            Err(NetworkError::DuplicateSignal(_))
        ));
        let a = net.signal("a").unwrap();
        assert!(matches!(
            net.add_node("n", vec![a], cover(2, &["11"])),
            Err(NetworkError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let net = sample();
        let order = net.topological_order().unwrap();
        let pos = |name: &str| {
            order
                .iter()
                .position(|&s| net.signal_name(s) == name)
                .unwrap()
        };
        assert!(pos("n1") < pos("n2"));
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn cycle_is_detected() {
        let mut net = Network::new("cyc");
        let a = net.add_input("a").unwrap();
        // n1 depends on n2 and vice versa.
        let n1 = net.add_node("n1", vec![a], cover(1, &["1"])).unwrap();
        let n2 = net.add_node("n2", vec![n1], cover(1, &["1"])).unwrap();
        net.replace_node(n1, vec![n2], cover(1, &["1"])).unwrap();
        assert!(matches!(
            net.topological_order(),
            Err(NetworkError::CombinationalCycle)
        ));
    }

    #[test]
    fn global_functions_match_simulation() {
        let net = sample();
        let (_mgr, _vars, funcs) = net.global_functions().unwrap();
        let cis = net.combinational_inputs();
        for bits in 0..(1u32 << cis.len()) {
            let asg: Vec<bool> = (0..cis.len()).map(|i| bits & (1 << i) != 0).collect();
            let sim = net.simulate(&asg).unwrap();
            for co in net.combinational_outputs() {
                assert_eq!(
                    funcs[&co].eval(&asg),
                    sim[&co],
                    "mismatch at signal {}",
                    net.signal_name(co)
                );
            }
        }
    }

    #[test]
    fn constants_propagate() {
        let mut net = Network::new("const");
        let one = net.add_constant("one", true).unwrap();
        let a = net.add_input("a").unwrap();
        let n = net.add_node("n", vec![one, a], cover(2, &["11"])).unwrap();
        net.add_output(n);
        let sim = net.simulate(&[true]).unwrap();
        assert!(sim[&n]);
        let (_m, _v, funcs) = net.global_functions().unwrap();
        assert_eq!(funcs[&n], funcs[&a]);
    }
}
