//! A reader and writer for a practical subset of the Berkeley BLIF format
//! (`.model`, `.inputs`, `.outputs`, `.names`, `.latch`, `.end`).

use std::collections::HashMap;

use brel_sop::{Cover, Cube};

use crate::netlist::{Network, NetworkError, SignalKind};

/// Parses a BLIF description into a [`Network`].
///
/// Supported constructs: `.model`, `.inputs`, `.outputs`, `.names` with
/// on-set rows (output value `1`), `.latch <in> <out> [type clock] [init]`,
/// `.end`, comments (`#`) and line continuations (`\`).
///
/// # Errors
///
/// Returns [`NetworkError::Parse`] on malformed text and
/// [`NetworkError::UnknownSignal`] for references to undeclared signals.
pub fn parse(text: &str) -> Result<Network, NetworkError> {
    // Join continued lines and strip comments.
    let mut logical_lines: Vec<String> = Vec::new();
    let mut pending = String::new();
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim_end();
        if let Some(stripped) = line.strip_suffix('\\') {
            pending.push_str(stripped);
            pending.push(' ');
            continue;
        }
        pending.push_str(line);
        let full = pending.trim().to_string();
        pending.clear();
        if !full.is_empty() {
            logical_lines.push(full);
        }
    }

    let mut model_name = String::from("model");
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    // (output name, fanin names, rows)
    let mut names_blocks: Vec<(String, Vec<String>, Vec<String>)> = Vec::new();
    // (input, output, init)
    let mut latches: Vec<(String, String, bool)> = Vec::new();

    let mut i = 0usize;
    while i < logical_lines.len() {
        let line = &logical_lines[i];
        i += 1;
        let mut parts = line.split_whitespace();
        let head = parts.next().unwrap_or("");
        match head {
            ".model" => {
                model_name = parts.next().unwrap_or("model").to_string();
            }
            ".inputs" => inputs.extend(parts.map(str::to_string)),
            ".outputs" => outputs.extend(parts.map(str::to_string)),
            ".latch" => {
                let toks: Vec<&str> = parts.collect();
                if toks.len() < 2 {
                    return Err(NetworkError::Parse(
                        ".latch needs an input and an output".to_string(),
                    ));
                }
                let init = toks
                    .last()
                    .and_then(|t| t.parse::<u8>().ok())
                    .map(|v| v == 1)
                    .unwrap_or(false);
                latches.push((toks[0].to_string(), toks[1].to_string(), init));
            }
            ".names" => {
                let signals: Vec<String> = parts.map(str::to_string).collect();
                if signals.is_empty() {
                    return Err(NetworkError::Parse(
                        ".names needs at least an output".to_string(),
                    ));
                }
                let output = signals.last().cloned().expect("non-empty");
                let fanins = signals[..signals.len() - 1].to_vec();
                // Collect the following cover rows.
                let mut rows = Vec::new();
                while i < logical_lines.len() && !logical_lines[i].starts_with('.') {
                    rows.push(logical_lines[i].clone());
                    i += 1;
                }
                names_blocks.push((output, fanins, rows));
            }
            ".end" => break,
            ".exdc" | ".clock" | ".area" | ".delay" => { /* ignored */ }
            _ => {
                return Err(NetworkError::Parse(format!("unexpected line `{line}`")));
            }
        }
    }

    let mut net = Network::new(model_name);
    for name in &inputs {
        net.add_input(name)?;
    }
    // Latch outputs are combinational inputs and must exist before nodes.
    // The latch input node may not exist yet, so latches are connected last;
    // declare the outputs now through a placeholder map.
    let mut latch_outputs: Vec<String> = Vec::new();
    for (_, out, _) in &latches {
        latch_outputs.push(out.clone());
    }

    // First pass: create all internal nodes with empty fanins resolved later
    // is complex; instead create nodes in dependency order by iterating until
    // fixpoint (covers reference only signals that exist).
    // Simpler: create latch output signals first (they behave like inputs).
    let mut declared: HashMap<String, ()> = HashMap::new();
    for name in &inputs {
        declared.insert(name.clone(), ());
    }

    // Create latch outputs as LatchOutput signals with a placeholder input;
    // we patch the input at the end (it must be an existing signal by then).
    // To do that we need add_latch with the real input signal, so defer.

    // Topologically order the .names blocks.
    let mut remaining: Vec<(String, Vec<String>, Vec<String>)> = names_blocks;
    // Latch outputs are available as sources.
    for out in &latch_outputs {
        declared.insert(out.clone(), ());
    }
    // Also constants can be declared by .names with zero fanins.
    let mut ordered: Vec<(String, Vec<String>, Vec<String>)> = Vec::new();
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|(out, fanins, rows)| {
            if fanins.iter().all(|f| declared.contains_key(f)) {
                declared.insert(out.clone(), ());
                ordered.push((out.clone(), fanins.clone(), rows.clone()));
                false
            } else {
                true
            }
        });
        if remaining.len() == before {
            let unresolved: Vec<String> = remaining.iter().map(|(o, _, _)| o.clone()).collect();
            return Err(NetworkError::Parse(format!(
                "could not order .names blocks (cycle or missing signals): {unresolved:?}"
            )));
        }
    }

    // Create the latch output signals (with a dummy input pointing to the
    // first declared signal; patched below once all nodes exist). To avoid a
    // dummy, create the latch outputs as LatchOutput *before* the nodes via a
    // dedicated constructor path: we insert a temporary constant and patch.
    let mut latch_idx: Vec<(usize, String)> = Vec::new();
    for (idx, (_, out, init)) in latches.iter().enumerate() {
        // Temporarily use a constant-zero placeholder signal as the input.
        let placeholder = net.add_constant(&format!("__latch_ph_{idx}"), false)?;
        net.add_latch(placeholder, out, *init)?;
        latch_idx.push((idx, latches[idx].0.clone()));
    }

    for (out, fanins, rows) in ordered {
        let fanin_ids = fanins
            .iter()
            .map(|f| {
                net.signal(f)
                    .ok_or_else(|| NetworkError::UnknownSignal(f.clone()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let width = fanin_ids.len();
        let mut cover = Cover::empty(width);
        let mut constant_one = false;
        for row in &rows {
            let mut parts = row.split_whitespace();
            let (in_part, out_part) = if width == 0 {
                (String::new(), parts.next().unwrap_or("1").to_string())
            } else {
                let a = parts.next().unwrap_or_default().to_string();
                let b = parts.next().unwrap_or("1").to_string();
                (a, b)
            };
            if out_part != "1" {
                // Offset rows are ignored (onset-only subset).
                continue;
            }
            if width == 0 {
                constant_one = true;
                continue;
            }
            if in_part.len() != width {
                return Err(NetworkError::Parse(format!(
                    "row `{row}` does not match .names arity {width}"
                )));
            }
            let cube = Cube::parse(&in_part)
                .map_err(|e| NetworkError::Parse(format!("bad cube `{in_part}`: {e}")))?;
            cover.push(cube).expect("width checked");
        }
        if width == 0 {
            net.add_constant(&out, constant_one)?;
        } else {
            net.add_node(&out, fanin_ids, cover)?;
        }
    }

    // Patch latch inputs now that every signal exists.
    for (idx, input_name) in latch_idx {
        let input = net
            .signal(&input_name)
            .ok_or_else(|| NetworkError::UnknownSignal(input_name.clone()))?;
        net.set_latch_input(idx, input);
    }

    for out in &outputs {
        let id = net
            .signal(out)
            .ok_or_else(|| NetworkError::UnknownSignal(out.clone()))?;
        net.add_output(id);
    }
    Ok(net)
}

/// Writes a [`Network`] in BLIF syntax.
pub fn write(net: &Network) -> String {
    let mut out = String::new();
    out.push_str(&format!(".model {}\n", net.name()));
    let inputs: Vec<&str> = net
        .primary_inputs()
        .iter()
        .map(|&s| net.signal_name(s))
        .collect();
    out.push_str(&format!(".inputs {}\n", inputs.join(" ")));
    let outputs: Vec<&str> = net
        .primary_outputs()
        .iter()
        .map(|&s| net.signal_name(s))
        .collect();
    out.push_str(&format!(".outputs {}\n", outputs.join(" ")));
    for latch in net.latches() {
        out.push_str(&format!(
            ".latch {} {} {}\n",
            net.signal_name(latch.input),
            net.signal_name(latch.output),
            if latch.init { 1 } else { 0 }
        ));
    }
    // Signals referenced anywhere (as a fanin, a latch input or a primary
    // output); unreferenced constants (e.g. parser placeholders) are skipped.
    let mut referenced: std::collections::HashSet<crate::netlist::SignalId> =
        net.primary_outputs().iter().copied().collect();
    for latch in net.latches() {
        referenced.insert(latch.input);
    }
    for s in net.signals() {
        if let SignalKind::Internal { fanins, .. } = net.kind(s) {
            referenced.extend(fanins.iter().copied());
        }
    }
    for s in net.signals() {
        match net.kind(s) {
            SignalKind::Constant(_) if !referenced.contains(&s) => continue,
            SignalKind::Internal { fanins, cover } => {
                let names: Vec<&str> = fanins.iter().map(|&f| net.signal_name(f)).collect();
                out.push_str(&format!(
                    ".names {} {}\n",
                    names.join(" "),
                    net.signal_name(s)
                ));
                for cube in cover.cubes() {
                    out.push_str(&format!("{} 1\n", cube));
                }
            }
            SignalKind::Constant(value) => {
                out.push_str(&format!(".names {}\n", net.signal_name(s)));
                if *value {
                    out.push_str("1\n");
                }
            }
            _ => {}
        }
    }
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a tiny sequential benchmark
.model tiny
.inputs a b c
.outputs out
.latch n2 q 0
.names a b n1
11 1
.names n1 c n2
1- 1
-1 1
.names q a out
10 1
01 1
.end
";

    #[test]
    fn parse_sample_network() {
        let net = parse(SAMPLE).unwrap();
        assert_eq!(net.name(), "tiny");
        assert_eq!(net.primary_inputs().len(), 3);
        assert_eq!(net.primary_outputs().len(), 1);
        assert_eq!(net.latches().len(), 1);
        assert_eq!(net.num_nodes(), 3);
        // The latch input must be patched to n2.
        let latch = net.latches()[0];
        assert_eq!(net.signal_name(latch.input), "n2");
        assert_eq!(net.signal_name(latch.output), "q");
    }

    #[test]
    fn round_trip_preserves_structure_and_function() {
        let net = parse(SAMPLE).unwrap();
        let text = write(&net);
        let net2 = parse(&text).unwrap();
        assert_eq!(net.num_nodes(), net2.num_nodes());
        assert_eq!(net.latches().len(), net2.latches().len());
        // Compare simulated behaviour on all input combinations.
        let n = net.combinational_inputs().len();
        for bits in 0..(1u32 << n) {
            let asg: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
            let v1 = net.simulate(&asg).unwrap();
            let v2 = net2.simulate(&asg).unwrap();
            for (&o1, &o2) in net
                .primary_outputs()
                .iter()
                .zip(net2.primary_outputs().iter())
            {
                assert_eq!(v1[&o1], v2[&o2]);
            }
        }
    }

    #[test]
    fn constant_nodes() {
        let text =
            ".model c\n.inputs a\n.outputs y one\n.names one\n1\n.names a one y\n11 1\n.end\n";
        let net = parse(text).unwrap();
        let y = net.signal("y").unwrap();
        let sim = net.simulate(&[true]).unwrap();
        assert!(sim[&y]);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        // Unknown directive.
        assert!(parse(".model x\n.bogus\n.end\n").is_err());
        // .latch with too few tokens.
        assert!(parse(".model x\n.inputs a\n.latch a\n.end\n").is_err());
        // .names referencing an undeclared signal.
        assert!(
            parse(".model x\n.inputs a\n.outputs y\n.names a missing y\n11 1\n.end\n").is_err()
        );
        // Row arity mismatch.
        assert!(parse(".model x\n.inputs a b\n.outputs y\n.names a b y\n1 1\n.end\n").is_err());
        // Output never defined.
        assert!(parse(".model x\n.inputs a\n.outputs nope\n.end\n").is_err());
    }
}
