//! A small standard-cell library with area and delay figures modelled after
//! the classic SIS `lib2.genlib` library used in the paper's experiments.
//!
//! Areas are in normalized cell-area units and delays in normalized gate
//! delays (a fanout-independent, pin-independent model: adequate because the
//! harness only ever compares two netlists mapped with the *same* library
//! and mapper).

use std::fmt;

/// The logic function implemented by a gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Inverter.
    Inv,
    /// Buffer.
    Buf,
    /// N-input AND.
    And(u8),
    /// N-input OR.
    Or(u8),
    /// N-input NAND.
    Nand(u8),
    /// N-input NOR.
    Nor(u8),
    /// Two-input XOR.
    Xor2,
    /// Two-input XNOR.
    Xnor2,
    /// AND-OR-INVERT 2-1: `¬(a·b + c)`.
    Aoi21,
    /// OR-AND-INVERT 2-1: `¬((a + b)·c)`.
    Oai21,
    /// 2:1 multiplexer `a·s̄ + b·s`.
    Mux2,
}

/// One cell of the library.
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    /// Cell name (e.g. `nand2`).
    pub name: &'static str,
    /// Logic function.
    pub kind: GateKind,
    /// Number of inputs.
    pub inputs: u8,
    /// Cell area.
    pub area: f64,
    /// Pin-to-output delay.
    pub delay: f64,
}

/// A gate library.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Library {
    gates: Vec<Gate>,
}

impl fmt::Display for Library {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for g in &self.gates {
            writeln!(f, "{:8} area={:5.1} delay={:4.2}", g.name, g.area, g.delay)?;
        }
        Ok(())
    }
}

impl Library {
    /// The default `lib2`-like library.
    pub fn lib2_like() -> Self {
        let gates = vec![
            Gate {
                name: "inv",
                kind: GateKind::Inv,
                inputs: 1,
                area: 1.0,
                delay: 0.4,
            },
            Gate {
                name: "buf",
                kind: GateKind::Buf,
                inputs: 1,
                area: 1.5,
                delay: 0.6,
            },
            Gate {
                name: "nand2",
                kind: GateKind::Nand(2),
                inputs: 2,
                area: 2.0,
                delay: 0.6,
            },
            Gate {
                name: "nand3",
                kind: GateKind::Nand(3),
                inputs: 3,
                area: 3.0,
                delay: 0.8,
            },
            Gate {
                name: "nand4",
                kind: GateKind::Nand(4),
                inputs: 4,
                area: 4.0,
                delay: 1.0,
            },
            Gate {
                name: "nor2",
                kind: GateKind::Nor(2),
                inputs: 2,
                area: 2.0,
                delay: 0.7,
            },
            Gate {
                name: "nor3",
                kind: GateKind::Nor(3),
                inputs: 3,
                area: 3.0,
                delay: 0.9,
            },
            Gate {
                name: "nor4",
                kind: GateKind::Nor(4),
                inputs: 4,
                area: 4.0,
                delay: 1.1,
            },
            Gate {
                name: "and2",
                kind: GateKind::And(2),
                inputs: 2,
                area: 3.0,
                delay: 0.8,
            },
            Gate {
                name: "and3",
                kind: GateKind::And(3),
                inputs: 3,
                area: 4.0,
                delay: 1.0,
            },
            Gate {
                name: "and4",
                kind: GateKind::And(4),
                inputs: 4,
                area: 5.0,
                delay: 1.2,
            },
            Gate {
                name: "or2",
                kind: GateKind::Or(2),
                inputs: 2,
                area: 3.0,
                delay: 0.9,
            },
            Gate {
                name: "or3",
                kind: GateKind::Or(3),
                inputs: 3,
                area: 4.0,
                delay: 1.1,
            },
            Gate {
                name: "or4",
                kind: GateKind::Or(4),
                inputs: 4,
                area: 5.0,
                delay: 1.3,
            },
            Gate {
                name: "xor2",
                kind: GateKind::Xor2,
                inputs: 2,
                area: 5.0,
                delay: 1.2,
            },
            Gate {
                name: "xnor2",
                kind: GateKind::Xnor2,
                inputs: 2,
                area: 5.0,
                delay: 1.2,
            },
            Gate {
                name: "aoi21",
                kind: GateKind::Aoi21,
                inputs: 3,
                area: 3.0,
                delay: 0.9,
            },
            Gate {
                name: "oai21",
                kind: GateKind::Oai21,
                inputs: 3,
                area: 3.0,
                delay: 0.9,
            },
            Gate {
                name: "mux2",
                kind: GateKind::Mux2,
                inputs: 3,
                area: 6.0,
                delay: 1.3,
            },
        ];
        Library { gates }
    }

    /// All gates.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Looks up a gate by name.
    pub fn gate(&self, name: &str) -> Option<&Gate> {
        self.gates.iter().find(|g| g.name == name)
    }

    /// Looks up a gate by kind.
    pub fn gate_by_kind(&self, kind: GateKind) -> Option<&Gate> {
        self.gates.iter().find(|g| g.kind == kind)
    }

    /// The widest AND/OR/NAND/NOR fan-in available for the given family.
    pub fn max_fanin(&self, family: fn(u8) -> GateKind) -> u8 {
        (2..=8u8)
            .filter(|&n| self.gate_by_kind(family(n)).is_some())
            .max()
            .unwrap_or(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_library_has_the_usual_cells() {
        let lib = Library::lib2_like();
        assert!(lib.gate("inv").is_some());
        assert!(lib.gate("nand2").is_some());
        assert!(lib.gate("mux2").is_some());
        assert!(lib.gate("nand17").is_none());
        assert_eq!(lib.gate_by_kind(GateKind::Nand(3)).unwrap().name, "nand3");
        assert_eq!(lib.max_fanin(GateKind::Nand), 4);
        assert_eq!(lib.max_fanin(GateKind::And), 4);
    }

    #[test]
    fn bigger_gates_cost_more() {
        let lib = Library::lib2_like();
        let n2 = lib.gate("nand2").unwrap();
        let n4 = lib.gate("nand4").unwrap();
        assert!(n4.area > n2.area);
        assert!(n4.delay > n2.delay);
        let inv = lib.gate("inv").unwrap();
        assert!(inv.area < n2.area);
    }

    #[test]
    fn display_lists_every_gate() {
        let lib = Library::lib2_like();
        let text = lib.to_string();
        assert_eq!(text.lines().count(), lib.gates().len());
        assert!(text.contains("nand2"));
    }
}
