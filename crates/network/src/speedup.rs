//! Delay-oriented restructuring, standing in for SIS `speed_up`.
//!
//! The paper's delay-oriented decomposition flow (Table 3) runs the
//! collapse + `speed_up` + map sequence on the next-state logic. This module
//! provides the equivalent knob for our substrate: it collapses each
//! combinational output to its global function and re-expresses it as a
//! (shallow) two-level node, leaving the balancing work to the mapper's
//! balanced-tree decomposition. The result is a network whose mapped delay
//! only depends on the collapsed functions — exactly the property the
//! decomposition experiment needs in order to measure the benefit of
//! balancing the three mux-input functions.

use std::collections::HashMap;

use brel_bdd::Var;
use brel_sop::Cover;

use crate::netlist::{Network, NetworkError, SignalId, SignalKind};

/// Collapses every combinational output into a single two-level node over
/// the combinational inputs (primary inputs and latch outputs) and rebuilds
/// the network. Returns the new network.
///
/// # Errors
///
/// Returns [`NetworkError::CombinationalCycle`] on cyclic input networks and
/// propagates construction errors for pathological cases.
pub fn collapse(net: &Network) -> Result<Network, NetworkError> {
    let (_mgr, input_vars, funcs) = net.global_functions()?;
    let cis = net.combinational_inputs();
    let ordered_vars: Vec<Var> = cis.iter().map(|s| input_vars[s]).collect();

    let mut out = Network::new(format!("{}_collapsed", net.name()));
    let mut new_ids: HashMap<SignalId, SignalId> = HashMap::new();
    for &ci in &cis {
        match net.kind(ci) {
            SignalKind::PrimaryInput => {
                let id = out.add_input(net.signal_name(ci))?;
                new_ids.insert(ci, id);
            }
            SignalKind::LatchOutput => {
                // Created below together with the latch; placeholder for now.
            }
            _ => {}
        }
    }

    // Latch outputs must exist before nodes that read them; create latches
    // with placeholder inputs and patch afterwards (same trick as the BLIF
    // reader).
    for (idx, latch) in net.latches().iter().enumerate() {
        let placeholder = out.add_constant(&format!("__collapse_ph_{idx}"), false)?;
        let q = out.add_latch(placeholder, net.signal_name(latch.output), latch.init)?;
        new_ids.insert(latch.output, q);
    }

    // One collapsed node per combinational output.
    let fanins: Vec<SignalId> = cis.iter().map(|s| new_ids[s]).collect();
    for co in net.combinational_outputs() {
        let f = &funcs[&co];
        let isop = f.isop();
        let cover = Cover::from_isop(&isop, &ordered_vars);
        let name = format!("{}_c", net.signal_name(co));
        let node = out.add_node(&name, fanins.clone(), cover)?;
        new_ids.insert(co, node);
    }

    for (idx, latch) in net.latches().iter().enumerate() {
        out.set_latch_input(idx, new_ids[&latch.input]);
    }
    for &po in net.primary_outputs() {
        out.add_output(new_ids[&po]);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::Library;
    use crate::mapper::{map, MappingOptions};
    use brel_sop::Cube;

    fn cover(width: usize, rows: &[&str]) -> Cover {
        Cover::from_cubes(
            width,
            rows.iter().map(|r| Cube::parse(r).unwrap()).collect(),
        )
        .unwrap()
    }

    fn deep_chain() -> Network {
        // A deliberately deep chain: n1 = a·b, n2 = n1·c, n3 = n2·d, out = n3·e
        let mut net = Network::new("chain");
        let inputs: Vec<SignalId> = ["a", "b", "c", "d", "e"]
            .iter()
            .map(|n| net.add_input(n).unwrap())
            .collect();
        let n1 = net
            .add_node("n1", vec![inputs[0], inputs[1]], cover(2, &["11"]))
            .unwrap();
        let n2 = net
            .add_node("n2", vec![n1, inputs[2]], cover(2, &["11"]))
            .unwrap();
        let n3 = net
            .add_node("n3", vec![n2, inputs[3]], cover(2, &["11"]))
            .unwrap();
        let out = net
            .add_node("out", vec![n3, inputs[4]], cover(2, &["11"]))
            .unwrap();
        net.add_output(out);
        net
    }

    #[test]
    fn collapse_preserves_function() {
        let net = deep_chain();
        let collapsed = collapse(&net).unwrap();
        assert_eq!(collapsed.num_nodes(), 1);
        let n = net.combinational_inputs().len();
        for bits in 0..(1u32 << n) {
            let asg: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
            let v1 = net.simulate(&asg).unwrap();
            let v2 = collapsed.simulate(&asg).unwrap();
            assert_eq!(
                v1[&net.primary_outputs()[0]],
                v2[&collapsed.primary_outputs()[0]]
            );
        }
    }

    #[test]
    fn collapse_plus_balanced_mapping_reduces_delay() {
        let net = deep_chain();
        let lib = Library::lib2_like();
        let options = MappingOptions::default();
        let before = map(&net, &lib, &options).unwrap();
        let collapsed = collapse(&net).unwrap();
        let after = map(&collapsed, &lib, &options).unwrap();
        assert!(
            after.delay < before.delay,
            "balancing a 5-input AND chain must reduce delay ({} vs {})",
            after.delay,
            before.delay
        );
    }

    #[test]
    fn collapse_keeps_latches_and_outputs() {
        let mut net = Network::new("seq");
        let a = net.add_input("a").unwrap();
        let n1 = net.add_node("n1", vec![a], cover(1, &["0"])).unwrap();
        let q = net.add_latch(n1, "q", true).unwrap();
        let out = net.add_node("out", vec![q, a], cover(2, &["11"])).unwrap();
        net.add_output(out);
        let collapsed = collapse(&net).unwrap();
        assert_eq!(collapsed.latches().len(), 1);
        assert_eq!(collapsed.primary_outputs().len(), 1);
        assert!(collapsed.latches()[0].init);
        // The latch next-state input is the collapsed ¬a node.
        let latch_in = collapsed.latches()[0].input;
        let sim = collapsed.simulate(&[true, false]).unwrap();
        // combinational inputs of the collapsed net: a and q (order as built).
        assert!(!sim[&latch_in]);
    }
}
