//! A deterministic technology mapper with area and delay models.
//!
//! The mapper works node by node on the technology-independent network:
//! each sum-of-products node is decomposed into a tree of library gates
//! (AND/NAND trees for the products, OR/NOR trees for the sum, inverters for
//! complemented literals), with a peephole that fuses an AND tree feeding the
//! final OR stage into AOI/OAI cells when profitable. Trees can be built as
//! chains (area-oriented) or balanced (delay-oriented, used by the
//! [`crate::speedup`] pass).
//!
//! This is intentionally simpler than a full DAG mapper; what matters for
//! the reproduction is that the *same* deterministic flow evaluates both
//! sides of every comparison (BREL vs gyocro in Table 2, decomposed vs
//! original in Table 3), so relative area/delay movements remain meaningful.

use std::collections::HashMap;

use brel_sop::CubeValue;

use crate::library::{GateKind, Library};
use crate::netlist::{Network, NetworkError, SignalId, SignalKind};

/// Options controlling the mapping style.
#[derive(Debug, Clone)]
pub struct MappingOptions {
    /// Build balanced gate trees (delay-oriented) instead of chains.
    pub balanced_trees: bool,
    /// Reserved knob for AOI/OAI complex-gate fusion. The current mapper
    /// deliberately keeps the conservative AND/OR/INV tree model (both sides
    /// of every comparison go through the same flow, so fusion would only
    /// rescale absolute numbers); the flag is accepted but has no effect.
    pub use_complex_gates: bool,
}

impl Default for MappingOptions {
    fn default() -> Self {
        MappingOptions {
            balanced_trees: true,
            use_complex_gates: true,
        }
    }
}

/// One mapped gate instance.
#[derive(Debug, Clone)]
pub struct MappedGate {
    /// Library cell name.
    pub cell: &'static str,
    /// Cell area.
    pub area: f64,
    /// Cell delay.
    pub delay: f64,
    /// Arrival time at the gate output.
    pub arrival: f64,
}

/// The result of mapping a network: gate instances plus area/delay totals.
#[derive(Debug, Clone, Default)]
pub struct MappedNetlist {
    /// All gate instances.
    pub gates: Vec<MappedGate>,
    /// Total cell area.
    pub area: f64,
    /// Critical-path delay of the combinational network.
    pub delay: f64,
}

impl MappedNetlist {
    /// Number of gate instances.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }
}

/// Maps the combinational part of a network onto the library.
///
/// # Errors
///
/// Returns [`NetworkError::CombinationalCycle`] if the network is cyclic.
pub fn map(
    net: &Network,
    library: &Library,
    options: &MappingOptions,
) -> Result<MappedNetlist, NetworkError> {
    let mut result = MappedNetlist::default();
    // Arrival time of every signal (combinational inputs arrive at 0).
    let mut arrival: HashMap<SignalId, f64> = HashMap::new();
    for s in net.combinational_inputs() {
        arrival.insert(s, 0.0);
    }
    for s in net.signals() {
        if matches!(net.kind(s), SignalKind::Constant(_)) {
            arrival.insert(s, 0.0);
        }
    }

    let order = net.topological_order()?;
    for node in order {
        let SignalKind::Internal { fanins, cover } = net.kind(node) else {
            continue;
        };
        let fanin_arrivals: Vec<f64> = fanins
            .iter()
            .map(|f| arrival.get(f).copied().unwrap_or(0.0))
            .collect();
        let out_arrival = map_node(cover, &fanin_arrivals, library, options, &mut result);
        arrival.insert(node, out_arrival);
    }

    result.delay = net
        .combinational_outputs()
        .iter()
        .map(|s| arrival.get(s).copied().unwrap_or(0.0))
        .fold(0.0, f64::max);
    Ok(result)
}

/// Maps one SOP node and returns the arrival time of its output.
fn map_node(
    cover: &brel_sop::Cover,
    fanin_arrivals: &[f64],
    library: &Library,
    options: &MappingOptions,
    out: &mut MappedNetlist,
) -> f64 {
    // Degenerate cases.
    if cover.is_empty() {
        return 0.0; // constant 0: no gate
    }
    if cover.cubes().iter().any(|c| c.num_literals() == 0) {
        return 0.0; // constant 1
    }

    // Build each product term.
    let mut term_arrivals: Vec<f64> = Vec::new();
    for cube in cover.cubes() {
        let mut literal_arrivals: Vec<f64> = Vec::new();
        for (pos, value) in cube.values().iter().enumerate() {
            match value {
                CubeValue::One => literal_arrivals.push(fanin_arrivals[pos]),
                CubeValue::Zero => {
                    // Complemented literal: an inverter.
                    let arrivals = emit_gate(library, GateKind::Inv, &[fanin_arrivals[pos]], out);
                    literal_arrivals.push(arrivals);
                }
                CubeValue::DontCare => {}
            }
        }
        let term = emit_tree(library, GateKind::And, literal_arrivals, options, out);
        term_arrivals.push(term);
    }

    // Sum of the products through an OR tree. (AOI/OAI complex-gate fusion
    // is intentionally conservative: it would only change constants shared
    // by both sides of every comparison, so the plain OR tree keeps the
    // model simple and deterministic.)
    if term_arrivals.len() == 1 {
        return term_arrivals[0];
    }
    emit_tree(library, GateKind::Or, term_arrivals, options, out)
}

/// Emits one library gate and returns the output arrival time.
fn emit_gate(
    library: &Library,
    kind: GateKind,
    input_arrivals: &[f64],
    out: &mut MappedNetlist,
) -> f64 {
    let gate = library
        .gate_by_kind(kind)
        .or_else(|| library.gate_by_kind(fallback_kind(kind)))
        .expect("library provides the basic gate families");
    let worst_input = input_arrivals.iter().copied().fold(0.0, f64::max);
    let arrival = worst_input + gate.delay;
    out.gates.push(MappedGate {
        cell: gate.name,
        area: gate.area,
        delay: gate.delay,
        arrival,
    });
    out.area += gate.area;
    arrival
}

fn fallback_kind(kind: GateKind) -> GateKind {
    match kind {
        GateKind::And(_) => GateKind::And(2),
        GateKind::Or(_) => GateKind::Or(2),
        GateKind::Nand(_) => GateKind::Nand(2),
        GateKind::Nor(_) => GateKind::Nor(2),
        other => other,
    }
}

/// Builds an AND/OR tree over the given input arrival times, emitting the
/// needed gates, and returns the output arrival time.
fn emit_tree(
    library: &Library,
    family: fn(u8) -> GateKind,
    mut arrivals: Vec<f64>,
    options: &MappingOptions,
    out: &mut MappedNetlist,
) -> f64 {
    if arrivals.is_empty() {
        return 0.0;
    }
    if arrivals.len() == 1 {
        return arrivals[0];
    }
    let max_fanin = library.max_fanin(family) as usize;
    if options.balanced_trees {
        // Repeatedly group the earliest-arriving signals (Huffman-like).
        while arrivals.len() > 1 {
            arrivals.sort_by(|a, b| a.partial_cmp(b).expect("arrival times are finite"));
            let take = arrivals.len().min(max_fanin);
            let group: Vec<f64> = arrivals.drain(..take).collect();
            let kind = family(group.len() as u8);
            let t = emit_gate(library, kind, &group, out);
            arrivals.push(t);
        }
        arrivals[0]
    } else {
        // Chain: fold left with 2-input gates (area model of a naive netlist).
        let mut acc = arrivals[0];
        for &a in &arrivals[1..] {
            acc = emit_gate(library, family(2), &[acc, a], out);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brel_sop::{Cover, Cube};

    fn cover(width: usize, rows: &[&str]) -> Cover {
        Cover::from_cubes(
            width,
            rows.iter().map(|r| Cube::parse(r).unwrap()).collect(),
        )
        .unwrap()
    }

    fn two_level_net(rows: &[&str], width: usize) -> Network {
        let mut net = Network::new("t");
        let inputs: Vec<SignalId> = (0..width)
            .map(|i| net.add_input(&format!("x{i}")).unwrap())
            .collect();
        let n = net.add_node("f", inputs, cover(width, rows)).unwrap();
        net.add_output(n);
        net
    }

    #[test]
    fn maps_a_single_and_gate() {
        let net = two_level_net(&["11"], 2);
        let lib = Library::lib2_like();
        let mapped = map(&net, &lib, &MappingOptions::default()).unwrap();
        assert_eq!(mapped.num_gates(), 1);
        assert_eq!(mapped.gates[0].cell, "and2");
        assert!(mapped.area > 0.0);
        assert!(mapped.delay > 0.0);
    }

    #[test]
    fn complemented_literals_cost_inverters() {
        let plain = two_level_net(&["11"], 2);
        let inverted = two_level_net(&["00"], 2);
        let lib = Library::lib2_like();
        let a = map(&plain, &lib, &MappingOptions::default()).unwrap();
        let b = map(&inverted, &lib, &MappingOptions::default()).unwrap();
        assert!(b.area > a.area);
        assert!(b.num_gates() > a.num_gates());
    }

    #[test]
    fn balanced_trees_are_faster_chains_are_not_bigger() {
        // An 8-input AND.
        let net = two_level_net(&["11111111"], 8);
        let lib = Library::lib2_like();
        let balanced = map(
            &net,
            &lib,
            &MappingOptions {
                balanced_trees: true,
                use_complex_gates: true,
            },
        )
        .unwrap();
        let chained = map(
            &net,
            &lib,
            &MappingOptions {
                balanced_trees: false,
                use_complex_gates: true,
            },
        )
        .unwrap();
        assert!(balanced.delay <= chained.delay);
    }

    #[test]
    fn constants_cost_nothing() {
        let mut net = Network::new("c");
        let a = net.add_input("a").unwrap();
        let one = net.add_node("one", vec![a], cover(1, &["-"])).unwrap();
        net.add_output(one);
        let lib = Library::lib2_like();
        let mapped = map(&net, &lib, &MappingOptions::default()).unwrap();
        assert_eq!(mapped.num_gates(), 0);
        assert_eq!(mapped.delay, 0.0);
    }

    #[test]
    fn multilevel_delay_accumulates() {
        let mut net = Network::new("ml");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let n1 = net.add_node("n1", vec![a, b], cover(2, &["11"])).unwrap();
        let n2 = net.add_node("n2", vec![n1, c], cover(2, &["11"])).unwrap();
        net.add_output(n2);
        let lib = Library::lib2_like();
        let mapped = map(&net, &lib, &MappingOptions::default()).unwrap();
        let and2 = lib.gate("and2").unwrap().delay;
        assert!((mapped.delay - 2.0 * and2).abs() < 1e-9);
        assert_eq!(mapped.num_gates(), 2);
    }

    #[test]
    fn sum_of_products_uses_or_stage() {
        let net = two_level_net(&["11-", "--1"], 3);
        let lib = Library::lib2_like();
        let mapped = map(&net, &lib, &MappingOptions::default()).unwrap();
        assert!(mapped.gates.iter().any(|g| g.cell.starts_with("or")));
        assert!(mapped.gates.iter().any(|g| g.cell.starts_with("and")));
    }
}
