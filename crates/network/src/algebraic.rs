//! Technology-independent optimization: a stand-in for the SIS "algebraic
//! script" used in the paper's Table 2 post-processing.
//!
//! The pass pipeline is:
//!
//! 1. [`sweep`] — remove constant and single-literal buffer nodes by
//!    propagating them into their fanouts,
//! 2. [`eliminate`] — collapse internal nodes whose elimination does not
//!    increase the literal count,
//! 3. [`extract_common_cubes`] — greedy extraction of two-literal common
//!    divisors (the core of `fx`/`gcx`): a cube appearing in several covers
//!    becomes a new node and is substituted everywhere,
//! 4. [`factored_literals`] — an algebraic factoring estimate of the literal
//!    count of each node, used for the `ALG` column of Table 2.
//!
//! [`optimize`] chains the first three passes until the literal count stops
//! improving.

use std::collections::HashMap;

use brel_sop::{Cover, Cube, CubeValue};

use crate::netlist::{Network, NetworkError, SignalId, SignalKind};

/// Removes constant nodes and single-literal (buffer/inverter-free) nodes by
/// substituting them into their fanouts. Returns the number of nodes
/// removed (they remain in the signal table but become unreferenced).
pub fn sweep(net: &mut Network) -> Result<usize, NetworkError> {
    let order = net.topological_order()?;
    let mut removed = 0usize;
    for node in order {
        let SignalKind::Internal { fanins, cover } = net.kind(node).clone() else {
            continue;
        };
        // A buffer: a single cube with a single positive literal.
        if cover.num_cubes() == 1 && cover.num_literals() == 1 {
            let cube = &cover.cubes()[0];
            if let Some(pos) = cube
                .values()
                .iter()
                .position(|v| matches!(v, CubeValue::One))
            {
                let source = fanins[pos];
                if replace_fanin_everywhere(net, node, source)? {
                    removed += 1;
                }
            }
        }
    }
    Ok(removed)
}

/// Replaces every use of `old` as a fanin by `new`. Returns `true` if any
/// substitution was made and the node is no longer referenced by any cover
/// or primary output.
fn replace_fanin_everywhere(
    net: &mut Network,
    old: SignalId,
    new: SignalId,
) -> Result<bool, NetworkError> {
    if net.primary_outputs().contains(&old)
        || net
            .latches()
            .iter()
            .any(|l| l.input == old || l.output == old)
    {
        return Ok(false);
    }
    let nodes: Vec<SignalId> = net.signals().collect();
    for node in nodes {
        let SignalKind::Internal { fanins, cover } = net.kind(node).clone() else {
            continue;
        };
        if !fanins.contains(&old) {
            continue;
        }
        let new_fanins: Vec<SignalId> = fanins
            .iter()
            .map(|&f| if f == old { new } else { f })
            .collect();
        net.replace_node(node, new_fanins, cover)?;
    }
    Ok(true)
}

/// Collapses internal nodes into their fanouts when doing so does not
/// increase the total literal count (a simplified SIS `eliminate 0`).
/// Returns the number of nodes eliminated.
pub fn eliminate(net: &mut Network) -> Result<usize, NetworkError> {
    let order = net.topological_order()?;
    let mut eliminated = 0usize;
    for node in order {
        let SignalKind::Internal { cover, .. } = net.kind(node).clone() else {
            continue;
        };
        if net.primary_outputs().contains(&node) || net.latches().iter().any(|l| l.input == node) {
            continue;
        }
        // Cheap nodes only: a single cube, or a pair of single-literal cubes.
        let cheap = cover.num_cubes() == 1 || cover.num_literals() <= 2;
        if !cheap {
            continue;
        }
        if collapse_into_fanouts(net, node)? {
            eliminated += 1;
        }
    }
    Ok(eliminated)
}

/// Substitutes the definition of `node` into every fanout cover (algebraic
/// substitution of an SOP into a positive literal). Fanouts using the node
/// in complemented form are left untouched, in which case the node is kept.
fn collapse_into_fanouts(net: &mut Network, node: SignalId) -> Result<bool, NetworkError> {
    let SignalKind::Internal {
        fanins: node_fanins,
        cover: node_cover,
    } = net.kind(node).clone()
    else {
        return Ok(false);
    };
    let fanouts: Vec<SignalId> = net
        .signals()
        .filter(|&s| match net.kind(s) {
            SignalKind::Internal { fanins, .. } => fanins.contains(&node),
            _ => false,
        })
        .collect();
    if fanouts.is_empty() {
        return Ok(false);
    }
    // Refuse if any fanout uses the node complemented (algebraic substitution
    // of the complement would require complementing the cover).
    for &fo in &fanouts {
        let SignalKind::Internal { fanins, cover } = net.kind(fo) else {
            continue;
        };
        let pos = fanins.iter().position(|&f| f == node).expect("is a fanout");
        if cover
            .cubes()
            .iter()
            .any(|c| matches!(c.value(pos), CubeValue::Zero))
        {
            return Ok(false);
        }
    }
    for fo in fanouts {
        let SignalKind::Internal { fanins, cover } = net.kind(fo).clone() else {
            continue;
        };
        let pos = fanins.iter().position(|&f| f == node).expect("is a fanout");
        // New fanin list: old fanins minus `node`, plus node's fanins.
        let mut new_fanins: Vec<SignalId> = fanins.iter().copied().filter(|&f| f != node).collect();
        for &f in &node_fanins {
            if !new_fanins.contains(&f) {
                new_fanins.push(f);
            }
        }
        let mut new_cover = Cover::empty(new_fanins.len());
        let index_of = |sig: SignalId, list: &[SignalId]| list.iter().position(|&f| f == sig);
        for cube in cover.cubes() {
            let uses_node = matches!(cube.value(pos), CubeValue::One);
            // Base: the cube's literals on the surviving fanins.
            let mut base = Cube::universe(new_fanins.len());
            for (i, v) in cube.values().iter().enumerate() {
                if i == pos {
                    continue;
                }
                if let Some(j) = index_of(fanins[i], &new_fanins) {
                    if !matches!(v, CubeValue::DontCare) {
                        base.set(j, *v);
                    }
                }
            }
            if !uses_node {
                new_cover.push(base).expect("width matches");
                continue;
            }
            // Distribute the node's cubes into this cube.
            for ncube in node_cover.cubes() {
                let mut merged = base.clone();
                let mut consistent = true;
                for (i, v) in ncube.values().iter().enumerate() {
                    if matches!(v, CubeValue::DontCare) {
                        continue;
                    }
                    let j = index_of(node_fanins[i], &new_fanins).expect("added above");
                    match merged.value(j) {
                        CubeValue::DontCare => merged.set(j, *v),
                        existing if existing == *v => {}
                        _ => {
                            consistent = false;
                            break;
                        }
                    }
                }
                if consistent {
                    new_cover.push(merged).expect("width matches");
                }
            }
        }
        new_cover.remove_contained_cubes();
        net.replace_node(fo, new_fanins, new_cover)?;
    }
    Ok(true)
}

/// Greedy extraction of common two-literal cubes across all node covers: the
/// most frequent two-literal divisor becomes a new node and is substituted
/// into every cover that contains it. Repeats until no divisor saves
/// literals. Returns the number of new nodes created.
pub fn extract_common_cubes(net: &mut Network) -> Result<usize, NetworkError> {
    // A literal is a (signal, polarity) pair; divisors are ordered pairs of
    // literals.
    type Literal = (SignalId, bool);
    let mut created = 0usize;
    loop {
        // Count two-literal sub-cubes (pairs of (signal, polarity)).
        let mut counts: HashMap<(Literal, Literal), usize> = HashMap::new();
        for node in net.signals().collect::<Vec<_>>() {
            let SignalKind::Internal { fanins, cover } = net.kind(node) else {
                continue;
            };
            for cube in cover.cubes() {
                let lits: Vec<(SignalId, bool)> = cube
                    .values()
                    .iter()
                    .enumerate()
                    .filter_map(|(i, v)| match v {
                        CubeValue::One => Some((fanins[i], true)),
                        CubeValue::Zero => Some((fanins[i], false)),
                        CubeValue::DontCare => None,
                    })
                    .collect();
                for i in 0..lits.len() {
                    for j in (i + 1)..lits.len() {
                        let mut key = [lits[i], lits[j]];
                        key.sort();
                        *counts.entry((key[0], key[1])).or_insert(0) += 1;
                    }
                }
            }
        }
        let Some((&(lit_a, lit_b), &count)) = counts.iter().max_by_key(|(_, &c)| c) else {
            break;
        };
        // Extracting saves (count - 1) literals minus the 2 literals of the
        // new node; require a strict gain.
        if count < 3 {
            break;
        }
        created += 1;
        // Pick a node name not already in use (optimize() may call this pass
        // several times on the same network).
        let mut suffix = created;
        let name = loop {
            let candidate = format!("__cx{suffix}");
            if net.signal(&candidate).is_none() {
                break candidate;
            }
            suffix += 1;
        };
        let new_cover = Cover::from_cubes(
            2,
            vec![Cube::new(vec![
                if lit_a.1 {
                    CubeValue::One
                } else {
                    CubeValue::Zero
                },
                if lit_b.1 {
                    CubeValue::One
                } else {
                    CubeValue::Zero
                },
            ])],
        )
        .expect("two-literal cube");
        let new_node = net.add_node(&name, vec![lit_a.0, lit_b.0], new_cover)?;

        // Substitute in every cover containing both literals.
        for node in net.signals().collect::<Vec<_>>() {
            if node == new_node {
                continue;
            }
            let SignalKind::Internal { fanins, cover } = net.kind(node).clone() else {
                continue;
            };
            let pa = fanins.iter().position(|&f| f == lit_a.0);
            let pb = fanins.iter().position(|&f| f == lit_b.0);
            let (Some(pa), Some(pb)) = (pa, pb) else {
                continue;
            };
            let matches_cube = |cube: &Cube| {
                cube.value(pa) == polarity(lit_a.1) && cube.value(pb) == polarity(lit_b.1)
            };
            if !cover.cubes().iter().any(matches_cube) {
                continue;
            }
            let mut new_fanins = fanins.clone();
            new_fanins.push(new_node);
            let mut rebuilt = Cover::empty(new_fanins.len());
            for cube in cover.cubes() {
                let mut extended: Vec<CubeValue> = cube.values().to_vec();
                extended.push(CubeValue::DontCare);
                if matches_cube(cube) {
                    extended[pa] = CubeValue::DontCare;
                    extended[pb] = CubeValue::DontCare;
                    extended[new_fanins.len() - 1] = CubeValue::One;
                }
                rebuilt.push(Cube::new(extended)).expect("width matches");
            }
            net.replace_node(node, new_fanins, rebuilt)?;
        }
    }
    Ok(created)
}

fn polarity(positive: bool) -> CubeValue {
    if positive {
        CubeValue::One
    } else {
        CubeValue::Zero
    }
}

/// Estimates the factored-form literal count of a cover by recursive
/// algebraic division by the most frequent literal — the metric SIS's
/// `print_stats -f` style counts and the paper's `ALG` column approximates.
pub fn factored_literals(cover: &Cover) -> usize {
    fn recurse(cubes: &[Cube]) -> usize {
        if cubes.is_empty() {
            return 0;
        }
        if cubes.len() == 1 {
            return cubes[0].num_literals();
        }
        let width = cubes[0].width();
        // Find the literal occurring most often.
        let mut best: Option<(usize, CubeValue, usize)> = None;
        for pos in 0..width {
            for value in [CubeValue::One, CubeValue::Zero] {
                let count = cubes.iter().filter(|c| c.value(pos) == value).count();
                if count >= 2 && best.map(|(_, _, c)| count > c).unwrap_or(true) {
                    best = Some((pos, value, count));
                }
            }
        }
        let Some((pos, value, _)) = best else {
            // No sharing possible: plain sum of cube literals.
            return cubes.iter().map(Cube::num_literals).sum();
        };
        let mut quotient: Vec<Cube> = Vec::new();
        let mut remainder: Vec<Cube> = Vec::new();
        for c in cubes {
            if c.value(pos) == value {
                let mut q = c.clone();
                q.set(pos, CubeValue::DontCare);
                quotient.push(q);
            } else {
                remainder.push(c.clone());
            }
        }
        // literal + (factored quotient) + factored remainder
        1 + recurse(&quotient) + recurse(&remainder)
    }
    recurse(cover.cubes())
}

/// Total factored-literal count of the network.
pub fn network_factored_literals(net: &Network) -> usize {
    net.signals()
        .map(|s| match net.kind(s) {
            SignalKind::Internal { cover, .. } => factored_literals(cover),
            _ => 0,
        })
        .sum()
}

/// The full "algebraic script" stand-in: sweep, eliminate and common-cube
/// extraction repeated until the literal count stops improving. Returns the
/// final SOP literal count.
///
/// # Errors
///
/// Returns [`NetworkError::CombinationalCycle`] if the network is cyclic.
pub fn optimize(net: &mut Network) -> Result<usize, NetworkError> {
    let mut best = net.literal_count();
    for _ in 0..10 {
        sweep(net)?;
        eliminate(net)?;
        extract_common_cubes(net)?;
        let now = net.literal_count();
        if now >= best {
            break;
        }
        best = now;
    }
    Ok(net.literal_count())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(width: usize, rows: &[&str]) -> Cover {
        Cover::from_cubes(
            width,
            rows.iter().map(|r| Cube::parse(r).unwrap()).collect(),
        )
        .unwrap()
    }

    fn functional_equivalence(a: &Network, b: &Network) -> bool {
        let n = a.combinational_inputs().len();
        assert_eq!(n, b.combinational_inputs().len());
        for bits in 0..(1u32 << n) {
            let asg: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
            let va = a.simulate(&asg).unwrap();
            let vb = b.simulate(&asg).unwrap();
            for (&oa, &ob) in a.primary_outputs().iter().zip(b.primary_outputs().iter()) {
                if va[&oa] != vb[&ob] {
                    return false;
                }
            }
        }
        true
    }

    #[test]
    fn sweep_removes_buffers() {
        let mut net = Network::new("buf");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let buf = net.add_node("buf", vec![a], cover(1, &["1"])).unwrap();
        let n = net.add_node("n", vec![buf, b], cover(2, &["11"])).unwrap();
        net.add_output(n);
        let reference = net.clone();
        let removed = sweep(&mut net).unwrap();
        assert_eq!(removed, 1);
        // n now reads directly from a.
        let SignalKind::Internal { fanins, .. } = net.kind(n) else {
            panic!()
        };
        assert!(fanins.contains(&a));
        assert!(functional_equivalence(&reference, &net));
    }

    #[test]
    fn eliminate_collapses_cheap_nodes() {
        let mut net = Network::new("elim");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let n1 = net.add_node("n1", vec![a, b], cover(2, &["11"])).unwrap();
        let n2 = net
            .add_node("n2", vec![n1, c], cover(2, &["1-", "-1"]))
            .unwrap();
        net.add_output(n2);
        let reference = net.clone();
        let eliminated = eliminate(&mut net).unwrap();
        assert_eq!(eliminated, 1);
        assert!(functional_equivalence(&reference, &net));
        // n2 should now compute a·b + c directly.
        let SignalKind::Internal { fanins, cover } = net.kind(n2) else {
            panic!()
        };
        assert_eq!(fanins.len(), 3);
        assert_eq!(cover.num_cubes(), 2);
    }

    #[test]
    fn common_cube_extraction_reduces_literals() {
        let mut net = Network::new("cx");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let d = net.add_input("d").unwrap();
        // Three nodes all containing the cube a·b.
        let n1 = net
            .add_node("n1", vec![a, b, c], cover(3, &["111"]))
            .unwrap();
        let n2 = net
            .add_node("n2", vec![a, b, d], cover(3, &["111"]))
            .unwrap();
        let n3 = net
            .add_node("n3", vec![a, b, c, d], cover(4, &["11-1", "--10"]))
            .unwrap();
        net.add_output(n1);
        net.add_output(n2);
        net.add_output(n3);
        let reference = net.clone();
        let before = net.literal_count();
        let created = extract_common_cubes(&mut net).unwrap();
        assert!(created >= 1);
        assert!(net.literal_count() < before);
        assert!(functional_equivalence(&reference, &net));
    }

    #[test]
    fn factored_literals_shares_common_factors() {
        // a·b + a·c: 4 SOP literals but 3 in factored form a·(b + c).
        let c = cover(3, &["11-", "1-1"]);
        assert_eq!(c.num_literals(), 4);
        assert_eq!(factored_literals(&c), 3);
        // A single cube factors to itself.
        let single = cover(2, &["10"]);
        assert_eq!(factored_literals(&single), 2);
        // Disjoint cubes cannot share.
        let disjoint = cover(4, &["11--", "--11"]);
        assert_eq!(factored_literals(&disjoint), 4);
    }

    #[test]
    fn optimize_is_functionally_safe_and_not_worse() {
        let mut net = Network::new("opt");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let buf = net.add_node("buf", vec![a], cover(1, &["1"])).unwrap();
        let n1 = net
            .add_node("n1", vec![buf, b, c], cover(3, &["11-", "1-1"]))
            .unwrap();
        let n2 = net
            .add_node("n2", vec![a, b, c], cover(3, &["110", "111"]))
            .unwrap();
        net.add_output(n1);
        net.add_output(n2);
        let reference = net.clone();
        let before = net.literal_count();
        let after = optimize(&mut net).unwrap();
        assert!(after <= before);
        assert!(functional_equivalence(&reference, &net));
    }
}
