//! # brel-network
//!
//! A multilevel Boolean-network substrate standing in for the SIS flows the
//! BREL paper uses to post-process solver output (Sections 9.2 and 10):
//!
//! * [`Network`] — a technology-independent network of sum-of-products
//!   nodes with primary inputs/outputs and D flip-flops, plus a BLIF-like
//!   text reader/writer ([`blif`]),
//! * [`algebraic`] — the "algebraic script" stand-in: sweeping, elimination
//!   of cheap nodes, greedy common-divisor (cube) extraction and factored
//!   literal counts,
//! * [`library`] and [`mapper`] — a small `lib2`-like standard-cell library
//!   and a deterministic technology mapper with area and delay models,
//! * [`speedup`] — a delay-oriented restructuring pass (collapse + balanced
//!   re-decomposition of critical functions), standing in for SIS
//!   `speed_up`,
//! * [`decompose`] — the multiway mux-latch decomposition flow of
//!   Section 10: for every flip-flop the next-state function `F(X)` is
//!   re-expressed through the Boolean relation `F(X) ⇔ (A·C̄ + B·C)` and the
//!   three mux inputs are synthesized with the BREL solver.
//!
//! The absolute area/delay numbers differ from SIS + `lib2`; what the
//! benchmark harness relies on (and what the paper's conclusions rest on) is
//! that *both* sides of every comparison go through this identical flow.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod algebraic;
pub mod blif;
pub mod decompose;
pub mod library;
pub mod mapper;
mod netlist;
pub mod speedup;

pub use library::{Gate, GateKind, Library};
pub use mapper::{MappedNetlist, MappingOptions};
pub use netlist::{GlobalFunctions, Latch, Network, NetworkError, SignalId, SignalKind};
