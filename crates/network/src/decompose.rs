//! Multiway logic decomposition through Boolean relations (Section 10 of
//! the paper).
//!
//! Given a function `F(X)` and a gate `G(Y)`, every decomposition
//! `F(X) = G(F₁(X), …, Fₙ(X))` is captured by the Boolean relation
//! `R(X, Y) = F(X) ⇔ G(Y)` (Definition 10.1). Solving the relation with a
//! chosen cost function picks one decomposition: the sum of BDD sizes
//! optimizes area, the sum of squared sizes balances the functions and
//! optimizes delay.
//!
//! The flow of Table 3 applies this to sequential circuits with a flip-flop
//! that embeds a 2:1 mux (`Q⁺ = A·C̄ + B·C`): every next-state function is
//! decomposed into the three mux-input functions `A`, `B`, `C`, which become
//! the new next-state logic (the mux itself is assumed free, being part of
//! the flip-flop).

use std::collections::HashMap;

use brel_bdd::{Bdd, Var};
use brel_core::{BrelConfig, BrelSolver, SolveStats};
use brel_relation::{BooleanRelation, MultiOutputFunction, RelationError, RelationSpace};
use brel_sop::Cover;

use crate::netlist::{Network, NetworkError, SignalId, SignalKind};

/// Errors of the decomposition flow.
#[derive(Debug)]
pub enum DecomposeError {
    /// The underlying relation could not be solved.
    Relation(RelationError),
    /// The network is malformed.
    Network(NetworkError),
}

impl std::fmt::Display for DecomposeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecomposeError::Relation(e) => write!(f, "relation error: {e}"),
            DecomposeError::Network(e) => write!(f, "network error: {e}"),
        }
    }
}

impl std::error::Error for DecomposeError {}

impl From<RelationError> for DecomposeError {
    fn from(e: RelationError) -> Self {
        DecomposeError::Relation(e)
    }
}

impl From<NetworkError> for DecomposeError {
    fn from(e: NetworkError) -> Self {
        DecomposeError::Network(e)
    }
}

/// The decomposition of one function into gate inputs.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// The relation space used (inputs = support of `F`, outputs = gate pins).
    pub space: RelationSpace,
    /// The synthesized gate-input functions, in gate-pin order.
    pub functions: MultiOutputFunction,
    /// Solver statistics.
    pub stats: SolveStats,
    /// Solver cost of the chosen decomposition.
    pub cost: u64,
}

/// Builds the Boolean relation `R(X, Y) = F(X) ⇔ G(Y)` of Definition 10.1.
///
/// `f_cover` must be a cover of `F` positionally aligned with the space's
/// input variables; `gate` receives the space and must return `G` expressed
/// over the space's *output* variables.
pub fn decomposition_relation(
    space: &RelationSpace,
    f: &Bdd,
    gate: impl FnOnce(&RelationSpace) -> Bdd,
) -> BooleanRelation {
    let g = gate(space);
    BooleanRelation::from_characteristic(space, f.iff(&g))
}

/// The 2:1 mux gate `Q⁺ = A·C̄ + B·C` over a 3-output space `(A, B, C)`.
pub fn mux_gate(space: &RelationSpace) -> Bdd {
    let a = space.output(0);
    let b = space.output(1);
    let c = space.output(2);
    a.and(&c.complement()).or(&b.and(&c))
}

/// Decomposes a single function (given as a BDD over `space`'s inputs) with
/// the given gate, using BREL with the supplied configuration.
///
/// # Errors
///
/// Returns [`DecomposeError::Relation`] if the relation cannot be solved
/// (e.g. the gate cannot realize the function — never the case for a mux).
pub fn decompose_function(
    space: &RelationSpace,
    f: &Bdd,
    gate: impl FnOnce(&RelationSpace) -> Bdd,
    config: BrelConfig,
) -> Result<Decomposition, DecomposeError> {
    let relation = decomposition_relation(space, f, gate);
    let solution = BrelSolver::new(config).solve(&relation)?;
    Ok(Decomposition {
        space: space.clone(),
        functions: solution.function,
        stats: solution.stats,
        cost: solution.cost,
    })
}

/// Per-latch outcome of the mux-latch decomposition flow.
#[derive(Debug, Clone)]
pub struct LatchDecomposition {
    /// The latch (by index in the original network).
    pub latch_index: usize,
    /// BDD size of the original next-state function.
    pub original_size: usize,
    /// BDD sizes of the three mux-input functions `(A, B, C)`.
    pub decomposed_sizes: (usize, usize, usize),
    /// Solver cost.
    pub cost: u64,
}

/// The result of decomposing every flip-flop of a sequential network onto
/// mux latches.
#[derive(Debug)]
pub struct MuxDecomposition {
    /// The rebuilt network: the combinational logic now computes, for every
    /// flip-flop, the three mux-input functions (named `<ff>_A`, `<ff>_B`,
    /// `<ff>_C`); the mux itself is assumed to be embedded in the flip-flop.
    pub network: Network,
    /// Per-latch details.
    pub latches: Vec<LatchDecomposition>,
}

/// Runs the Table 3 flow: every next-state function is decomposed onto the
/// mux latch `Q⁺ = A·C̄ + B·C` with BREL. `delay_oriented` selects the
/// sum-of-squared-BDD-sizes cost, otherwise the sum of BDD sizes is used;
/// `max_explored` bounds the exploration per relation (the paper uses 200).
///
/// # Errors
///
/// Returns [`DecomposeError`] if the network is cyclic or a relation cannot
/// be solved.
pub fn decompose_mux_latches(
    net: &Network,
    delay_oriented: bool,
    max_explored: usize,
) -> Result<MuxDecomposition, DecomposeError> {
    let (_mgr, input_vars, funcs) = net.global_functions()?;
    let cis = net.combinational_inputs();

    // The rebuilt network: same combinational inputs, same primary outputs
    // (collapsed), next-state logic replaced by the A/B/C functions.
    let mut out = Network::new(format!("{}_mux", net.name()));
    let mut new_ids: HashMap<SignalId, SignalId> = HashMap::new();
    for &ci in &cis {
        match net.kind(ci) {
            SignalKind::PrimaryInput => {
                let id = out.add_input(net.signal_name(ci))?;
                new_ids.insert(ci, id);
            }
            SignalKind::LatchOutput => {}
            _ => {}
        }
    }
    for (idx, latch) in net.latches().iter().enumerate() {
        let placeholder = out.add_constant(&format!("__mux_ph_{idx}"), false)?;
        let q = out.add_latch(placeholder, net.signal_name(latch.output), latch.init)?;
        new_ids.insert(latch.output, q);
    }

    // Primary outputs: keep their collapsed two-level form so that both the
    // baseline and the decomposed network share the same PO logic.
    let all_fanins: Vec<SignalId> = cis.iter().map(|s| new_ids[s]).collect();
    let ordered_vars: Vec<Var> = cis.iter().map(|s| input_vars[s]).collect();
    for &po in net.primary_outputs() {
        let f = &funcs[&po];
        let cover = Cover::from_isop(&f.isop(), &ordered_vars);
        let node = out.add_node(
            &format!("{}_c", net.signal_name(po)),
            all_fanins.clone(),
            cover,
        )?;
        new_ids.insert(po, node);
        out.add_output(node);
    }

    let mut reports = Vec::new();
    for (idx, latch) in net.latches().iter().enumerate() {
        let f = &funcs[&latch.input];
        // Restrict the relation space to the support of F to keep it small.
        let support: Vec<Var> = f.support();
        let support_signals: Vec<SignalId> = cis
            .iter()
            .copied()
            .filter(|s| support.contains(&input_vars[s]))
            .collect();
        let input_names: Vec<String> = support_signals
            .iter()
            .map(|&s| net.signal_name(s).to_string())
            .collect();
        let input_name_refs: Vec<&str> = input_names.iter().map(String::as_str).collect();
        let space = RelationSpace::with_names(&input_name_refs, &["A", "B", "C"]);

        // Rebuild F inside the space's manager from its ISOP cover.
        let isop = f.isop();
        let support_positions: Vec<Var> = support_signals.iter().map(|s| input_vars[s]).collect();
        let cover = Cover::from_isop(&isop, &support_positions);
        let f_in_space = cover.to_bdd_with_vars(space.mgr(), space.input_vars());

        let config =
            BrelConfig::decomposition(delay_oriented).with_max_explored(Some(max_explored));
        let decomposition = decompose_function(&space, &f_in_space, mux_gate, config)?;

        // Add the three functions as nodes of the rebuilt network.
        let latch_name = net.signal_name(latch.output).to_string();
        let fanins: Vec<SignalId> = support_signals.iter().map(|s| new_ids[s]).collect();
        let mut abc_ids = Vec::new();
        for (pin, suffix) in ["A", "B", "C"].iter().enumerate() {
            let g = decomposition.functions.output(pin);
            let g_cover = Cover::from_isop(&g.isop(), space.input_vars());
            let node = out.add_node(&format!("{latch_name}_{suffix}"), fanins.clone(), g_cover)?;
            out.add_output(node);
            abc_ids.push(node);
        }
        // The latch D input becomes the A function (the mux is in the FF);
        // structurally we keep pointing the latch at A so the network stays
        // sequentially well formed.
        out.set_latch_input(idx, abc_ids[0]);

        reports.push(LatchDecomposition {
            latch_index: idx,
            original_size: f.size(),
            decomposed_sizes: (
                decomposition.functions.output(0).size(),
                decomposition.functions.output(1).size(),
                decomposition.functions.output(2).size(),
            ),
            cost: decomposition.cost,
        });
    }

    Ok(MuxDecomposition {
        network: out,
        latches: reports,
    })
}

/// Checks that a decomposition is correct: recomposing the gate over the
/// synthesized functions yields exactly `F`.
pub fn verify_decomposition(space: &RelationSpace, f: &Bdd, decomposition: &Decomposition) -> bool {
    // G(A(X), B(X), C(X)) computed by composing the gate with the functions.
    let mut g = mux_gate(space);
    for (pin, func) in decomposition.functions.outputs().iter().enumerate() {
        g = g.compose(space.output_var(pin), func);
    }
    g == *f
}

#[cfg(test)]
mod tests {
    use super::*;
    use brel_sop::Cube;

    fn cover(width: usize, rows: &[&str]) -> Cover {
        Cover::from_cubes(
            width,
            rows.iter().map(|r| Cube::parse(r).unwrap()).collect(),
        )
        .unwrap()
    }

    #[test]
    fn fig11_mux_decomposition_of_the_paper_example() {
        // f(x1, x2, x3) = x1·(x2 + x3) + x̄1·x̄2·x̄3 decomposed with a mux.
        let space = RelationSpace::with_names(&["x1", "x2", "x3"], &["A", "B", "C"]);
        let x1 = space.input(0);
        let x2 = space.input(1);
        let x3 = space.input(2);
        let f = x1
            .and(&x2.or(&x3))
            .or(&x1.complement().and(&x2.complement()).and(&x3.complement()));
        let relation = decomposition_relation(&space, &f, mux_gate);
        assert!(relation.is_well_defined(), "a mux can always realize f");
        let decomposition =
            decompose_function(&space, &f, mux_gate, BrelConfig::decomposition(false)).unwrap();
        assert!(verify_decomposition(&space, &f, &decomposition));
    }

    #[test]
    fn delay_cost_balances_the_three_functions() {
        let space = RelationSpace::with_names(&["x1", "x2", "x3", "x4"], &["A", "B", "C"]);
        let x1 = space.input(0);
        let x2 = space.input(1);
        let x3 = space.input(2);
        let x4 = space.input(3);
        let f = x1.and(&x2).or(&x3.and(&x4)).or(&x1.and(&x4.complement()));
        let area =
            decompose_function(&space, &f, mux_gate, BrelConfig::decomposition(false)).unwrap();
        let delay =
            decompose_function(&space, &f, mux_gate, BrelConfig::decomposition(true)).unwrap();
        assert!(verify_decomposition(&space, &f, &area));
        assert!(verify_decomposition(&space, &f, &delay));
        // Each run reports the cost under its own objective…
        assert_eq!(area.cost, area.functions.sum_of_sizes() as u64);
        assert_eq!(delay.cost, delay.functions.sum_of_squared_sizes() as u64);
        // …and never does worse than the quick (unbalanced) seed under that
        // objective, which is the guarantee §7.2 gives.
        let relation = decomposition_relation(&space, &f, mux_gate);
        let quick = brel_core::QuickSolver::new().solve(&relation).unwrap();
        assert!(area.cost <= quick.sum_of_sizes() as u64);
        assert!(delay.cost <= quick.sum_of_squared_sizes() as u64);
    }

    #[test]
    fn mux_latch_flow_rebuilds_a_sequential_network() {
        // A small sequential circuit with two flip-flops.
        let mut net = Network::new("seq2");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let n1 = net
            .add_node("n1", vec![a, b, c], cover(3, &["11-", "--1"]))
            .unwrap();
        let q0 = net.add_latch(n1, "q0", false).unwrap();
        let n2 = net
            .add_node("n2", vec![q0, a, b], cover(3, &["110", "001"]))
            .unwrap();
        let _q1 = net.add_latch(n2, "q1", false).unwrap();
        let out = net.add_node("out", vec![q0], cover(1, &["0"])).unwrap();
        net.add_output(out);

        let result = decompose_mux_latches(&net, false, 50).unwrap();
        assert_eq!(result.latches.len(), 2);
        assert_eq!(result.network.latches().len(), 2);
        // Three mux-input nodes per latch plus the collapsed primary output.
        assert_eq!(result.network.num_nodes(), 2 * 3 + 1);
        // Every per-latch report carries plausible sizes.
        for latch in &result.latches {
            assert!(latch.original_size >= 1);
            let (sa, sb, sc) = latch.decomposed_sizes;
            assert!(sa + sb + sc >= 1);
        }
        // The decomposition is functionally correct: for every input
        // assignment, mux(A, B, C) equals the original next-state function.
        let cis = net.combinational_inputs();
        let new_cis = result.network.combinational_inputs();
        assert_eq!(cis.len(), new_cis.len());
        for bits in 0..(1u32 << cis.len()) {
            let asg: Vec<bool> = (0..cis.len()).map(|i| bits & (1 << i) != 0).collect();
            let old_vals = net.simulate(&asg).unwrap();
            let new_vals = result.network.simulate(&asg).unwrap();
            for (idx, latch) in net.latches().iter().enumerate() {
                let expected = old_vals[&latch.input];
                let name = net.signal_name(latch.output);
                let a_node = result.network.signal(&format!("{name}_A")).unwrap();
                let b_node = result.network.signal(&format!("{name}_B")).unwrap();
                let c_node = result.network.signal(&format!("{name}_C")).unwrap();
                let (va, vb, vc) = (new_vals[&a_node], new_vals[&b_node], new_vals[&c_node]);
                let mux = (va && !vc) || (vb && vc);
                assert_eq!(mux, expected, "latch {idx} mismatch at {asg:?}");
            }
        }
    }
}
