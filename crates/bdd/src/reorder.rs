//! Dynamic variable reordering: in-place adjacent level swaps and
//! Rudell-style sifting.
//!
//! The first kernel generations froze the variable order at construction
//! (the variable index *was* the level). This module works on the
//! manager's `var ↔ level` permutation instead: [`BddManager::swap_adjacent_levels`]
//! exchanges two adjacent levels by rewriting the affected nodes *in
//! place*, so every live [`NodeId`] keeps denoting the same Boolean
//! function and external roots never move. [`BddManager::reorder_sift`]
//! drives the classic sifting loop on top of it: each variable (most
//! populated first) is moved through every level and parked where the
//! reachable node count was smallest.
//!
//! ## Why the in-place swap is sound
//!
//! Swapping levels `l` (variable `x`) and `l+1` (variable `y`) only has to
//! touch `x`-nodes with a `y`-topped child. Such a node `f = (x; f0, f1)`
//! is rewritten to `(y; (x; f00, f10), (x; f01, f11))` — the same function
//! expanded in the other order — at the *same arena index*, so parents and
//! roots are untouched. The rewritten keys cannot collide: two distinct
//! canonical nodes denote distinct functions, and rewriting preserves
//! functions. Old `y`-children that lose their last reference simply stay
//! in the arena (and unique table) as garbage until the next sweep; the
//! operation cache also survives, because its entries relate node ids as
//! *functions*, which the swap preserves.
//!
//! Complexity note: a swap scans the whole arena for `x`-labelled nodes
//! and each sifting step re-marks the live set, so a pass costs
//! `O(vars² · arena)` rather than CUDD's per-level-list
//! `O(nodes at the swapped levels)`. The intermediate sweeps in
//! `sift_step` keep the arena proportional to the live set, which makes
//! the constant acceptable at this package's scales; per-level node lists
//! with incremental size deltas are the known upgrade path if sifting
//! ever dominates a profile.

use crate::manager::{BddManager, Node, NodeId, Var, FREE_VAR};

impl BddManager {
    /// Exchanges the variables at levels `upper` and `upper + 1` by
    /// rewriting the affected nodes in place. Every live node id keeps its
    /// function; dead nodes created by the swap are reclaimed by the next
    /// sweep.
    ///
    /// # Panics
    ///
    /// Panics if `upper + 1` is not a valid level.
    pub fn swap_adjacent_levels(&mut self, upper: u32) {
        let x = self.level2var[upper as usize];
        let y = self.level2var[upper as usize + 1];
        let end = self.nodes.len();
        for i in 2..end {
            let n = self.nodes[i];
            if n.var != x {
                continue;
            }
            let lo_is_y = !n.lo.is_terminal() && self.nodes[n.lo.index()].var == y;
            let hi_is_y = !n.hi.is_terminal() && self.nodes[n.hi.index()].var == y;
            if !lo_is_y && !hi_is_y {
                // No y in either child: the node keeps its label and simply
                // ends up one level lower once the permutation flips.
                continue;
            }
            let (f00, f01) = if lo_is_y {
                let c = self.nodes[n.lo.index()];
                (c.lo, c.hi)
            } else {
                (n.lo, n.lo)
            };
            let (f10, f11) = if hi_is_y {
                let c = self.nodes[n.hi.index()];
                (c.lo, c.hi)
            } else {
                (n.hi, n.hi)
            };
            let new_lo = if f00 == f10 {
                f00
            } else {
                let id = self
                    .unique
                    .get_or_insert(x, f00, f10, &mut self.nodes, &mut self.free);
                self.note_alloc();
                id
            };
            let new_hi = if f01 == f11 {
                f01
            } else {
                let id = self
                    .unique
                    .get_or_insert(x, f01, f11, &mut self.nodes, &mut self.free);
                self.note_alloc();
                id
            };
            debug_assert_ne!(new_lo, new_hi, "swapped node would be redundant");
            self.unique.remove(n.var, n.lo, n.hi, NodeId(i as u32));
            self.nodes[i] = Node {
                var: y,
                lo: new_lo,
                hi: new_hi,
            };
            self.unique
                .insert_known(y, new_lo, new_hi, NodeId(i as u32), &self.nodes);
        }
        self.var2level.swap(x.index(), y.index());
        self.level2var.swap(upper as usize, upper as usize + 1);
    }

    /// Live (root-reachable) decision nodes labelled by each variable.
    fn level_populations(&self) -> Vec<usize> {
        let (marks, _) = self.mark_live();
        let mut counts = vec![0usize; self.num_vars()];
        for i in 2..self.nodes.len() {
            if marks.contains(i) {
                let n = &self.nodes[i];
                debug_assert!(n.var.0 != FREE_VAR);
                counts[n.var.index()] += 1;
            }
        }
        counts
    }

    /// One sifting step: swaps, measures, and keeps the swap-generated
    /// garbage in check. Every swap scans the arena and every measurement
    /// marks the live set, so letting dead nodes pile up across the
    /// hundreds of swaps of a pass would turn the pass quadratic — once
    /// the allocated set outgrows a small multiple of the reachable set,
    /// an intermediate sweep reclaims it (free slots are then reused, so
    /// the arena stops growing for the rest of the pass).
    fn sift_step(&mut self, upper: u32) -> usize {
        self.swap_adjacent_levels(upper);
        let size = self.reachable_nodes();
        if self.live_nodes() > 4 * size + 4096 {
            self.collect_garbage();
        }
        size
    }

    /// Sifts one variable through every level and parks it where the
    /// reachable node count was smallest (first-seen level wins ties, so
    /// the pass is deterministic). `limit` aborts a direction once the
    /// intermediate size exceeds the classical 1.2× growth allowance.
    fn sift_one(&mut self, v: Var) {
        let bottom = self.num_vars() as u32 - 1;
        let start = self.var2level[v.index()];
        let initial = self.reachable_nodes();
        let limit = initial + initial / 5 + 16;
        let mut best_size = initial;
        let mut best_level = start;
        let mut cur = start;
        // Down to the bottom…
        while cur < bottom {
            let size = self.sift_step(cur);
            cur += 1;
            if size < best_size {
                best_size = size;
                best_level = cur;
            }
            if size > limit {
                break;
            }
        }
        // …back up to the top…
        while cur > 0 {
            let size = self.sift_step(cur - 1);
            cur -= 1;
            if size < best_size {
                best_size = size;
                best_level = cur;
            }
            if size > limit {
                break;
            }
        }
        // …and settle at the best level seen.
        while cur < best_level {
            self.swap_adjacent_levels(cur);
            cur += 1;
        }
        while cur > best_level {
            self.swap_adjacent_levels(cur - 1);
            cur -= 1;
        }
    }

    /// Runs one full sifting pass (Rudell): every variable with live
    /// nodes, most populated first, is sifted to its locally optimal
    /// level. Ends with a sweep that reclaims the garbage the swaps left
    /// behind. Returns the number of live decision nodes afterwards.
    ///
    /// Node ids of reachable nodes keep their functions, so `Bdd` handles
    /// and cached results stay valid; sizes of individual functions may
    /// change (that is the point), so callers that cache size-derived
    /// costs must recompute them.
    pub fn reorder_sift(&mut self) -> usize {
        let _span = brel_obs::span(brel_obs::Category::Kernel, "sift");
        if self.num_vars() >= 2 {
            let counts = self.level_populations();
            let mut vars: Vec<Var> = (0..self.num_vars())
                .filter(|&i| counts[i] > 0)
                .map(Var::from)
                .collect();
            // Most populated first; ties broken by variable index so the
            // pass order (and therefore the final order) is deterministic.
            vars.sort_by_key(|v| (usize::MAX - counts[v.index()], v.index()));
            for v in vars {
                self.sift_one(v);
            }
            self.gc.reorder_passes += 1;
        }
        self.collect_garbage();
        let live = self.live_nodes();
        self.gc.next_reorder_at = (live * 2).max(self.gc.reorder_floor());
        live
    }

    /// The current variable order, top level first.
    pub fn var_order(&self) -> Vec<Var> {
        self.level2var.clone()
    }
}
