//! Variable symmetry detection.
//!
//! Section 7.7 of the paper prunes the branch-and-bound exploration by
//! detecting relations that are symmetric in a pair of *output* variables:
//! two subrelations that only differ by a permutation of symmetric outputs
//! lead to solutions of equal cost, so only one of them needs to be solved.
//!
//! The checks implemented here are the classical first-order symmetries
//! (non-skew and skew, in both equivalence and non-equivalence flavours) and
//! the non-skew non-equivalence second-order symmetry used by BREL.

use crate::manager::{BddManager, NodeId, Var};

/// The kind of two-variable symmetry detected between a pair of variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymmetryKind {
    /// Classical (non-skew, non-equivalence) symmetry:
    /// `f(..xi=1, xj=0..) = f(..xi=0, xj=1..)` — the function is invariant
    /// under exchanging the two variables.
    NonSkewNonEquivalence,
    /// Equivalence symmetry: `f(..0,0..) = f(..1,1..)`.
    NonSkewEquivalence,
    /// Skew symmetry: `f(..0,0..) = ¬f(..1,1..)`.
    SkewEquivalence,
    /// Skew non-equivalence symmetry: `f(..1,0..) = ¬f(..0,1..)`.
    SkewNonEquivalence,
}

impl BddManager {
    /// Returns `true` if `f` is invariant under exchanging variables `a`
    /// and `b` (the classical first-order symmetry `f_{a b'} = f_{a' b}`).
    pub fn is_symmetric(&mut self, f: NodeId, a: Var, b: Var) -> bool {
        if a == b {
            return true;
        }
        let f1 = self.cofactor(f, a, true);
        let f10 = self.cofactor(f1, b, false);
        let f0 = self.cofactor(f, a, false);
        let f01 = self.cofactor(f0, b, true);
        f10 == f01
    }

    /// Detects every first-order symmetry kind holding between `a` and `b`
    /// in `f`.
    pub fn symmetries(&mut self, f: NodeId, a: Var, b: Var) -> Vec<SymmetryKind> {
        let mut out = Vec::new();
        if a == b {
            return out;
        }
        let f1 = self.cofactor(f, a, true);
        let f0 = self.cofactor(f, a, false);
        let f11 = self.cofactor(f1, b, true);
        let f10 = self.cofactor(f1, b, false);
        let f01 = self.cofactor(f0, b, true);
        let f00 = self.cofactor(f0, b, false);
        if f10 == f01 {
            out.push(SymmetryKind::NonSkewNonEquivalence);
        }
        if f00 == f11 {
            out.push(SymmetryKind::NonSkewEquivalence);
        }
        let n11 = self.not(f11);
        if f00 == n11 {
            out.push(SymmetryKind::SkewEquivalence);
        }
        let n01 = self.not(f01);
        if f10 == n01 {
            out.push(SymmetryKind::SkewNonEquivalence);
        }
        out
    }

    /// Returns all unordered pairs out of `vars` in which `f` is
    /// (non-skew, non-equivalence) symmetric.
    pub fn symmetric_pairs(&mut self, f: NodeId, vars: &[Var]) -> Vec<(Var, Var)> {
        let mut out = Vec::new();
        for i in 0..vars.len() {
            for j in (i + 1)..vars.len() {
                if self.is_symmetric(f, vars[i], vars[j]) {
                    out.push((vars[i], vars[j]));
                }
            }
        }
        out
    }

    /// Second-order (non-skew, non-equivalence) symmetry between the
    /// variable *pairs* `(a1, a2)` and `(b1, b2)`: the function is invariant
    /// under simultaneously exchanging `a1↔b1` and `a2↔b2`.
    ///
    /// In BREL this generalizes the output-permutation pruning to buses of
    /// two outputs feeding a symmetric gate.
    pub fn is_second_order_symmetric(
        &mut self,
        f: NodeId,
        a1: Var,
        a2: Var,
        b1: Var,
        b2: Var,
    ) -> bool {
        let g = self.swap_vars(f, a1, b1);
        let g = self.swap_vars(g, a2, b2);
        g == f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_function_detected() {
        let mut m = BddManager::new(3);
        let a = m.literal(Var(0), true);
        let b = m.literal(Var(1), true);
        let c = m.literal(Var(2), true);
        // a·b + c is symmetric in (a, b) but not in (a, c).
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        assert!(m.is_symmetric(f, Var(0), Var(1)));
        assert!(!m.is_symmetric(f, Var(0), Var(2)));
        // Exchanging symmetric variables leaves the function unchanged.
        let swapped = m.swap_vars(f, Var(0), Var(1));
        assert_eq!(swapped, f);
    }

    #[test]
    fn symmetry_kinds_on_xor_and_xnor() {
        let mut m = BddManager::new(2);
        let a = m.literal(Var(0), true);
        let b = m.literal(Var(1), true);
        // XOR: f(1,0) = f(0,1) and f(0,0) = f(1,1), but f(0,0) ≠ ¬f(1,1).
        let xor = m.xor(a, b);
        let kinds = m.symmetries(xor, Var(0), Var(1));
        assert!(kinds.contains(&SymmetryKind::NonSkewNonEquivalence));
        assert!(kinds.contains(&SymmetryKind::NonSkewEquivalence));
        assert!(!kinds.contains(&SymmetryKind::SkewEquivalence));
        // AND: f(0,0) = 0 = ¬f(1,1) — skew-equivalence holds.
        let and = m.and(a, b);
        let kinds = m.symmetries(and, Var(0), Var(1));
        assert!(kinds.contains(&SymmetryKind::NonSkewNonEquivalence));
        assert!(kinds.contains(&SymmetryKind::SkewEquivalence));
        assert!(!kinds.contains(&SymmetryKind::NonSkewEquivalence));
    }

    #[test]
    fn symmetric_pairs_of_majority() {
        let mut m = BddManager::new(3);
        let a = m.literal(Var(0), true);
        let b = m.literal(Var(1), true);
        let c = m.literal(Var(2), true);
        let ab = m.and(a, b);
        let ac = m.and(a, c);
        let bc = m.and(b, c);
        let maj = m.or_many(&[ab, ac, bc]);
        let pairs = m.symmetric_pairs(maj, &[Var(0), Var(1), Var(2)]);
        assert_eq!(pairs.len(), 3, "majority is totally symmetric");
    }

    #[test]
    fn second_order_symmetry() {
        let mut m = BddManager::new(4);
        let a1 = m.literal(Var(0), true);
        let a2 = m.literal(Var(1), true);
        let b1 = m.literal(Var(2), true);
        let b2 = m.literal(Var(3), true);
        // f = (a1·a2) + (b1·b2): invariant under swapping the pairs.
        let p = m.and(a1, a2);
        let q = m.and(b1, b2);
        let f = m.or(p, q);
        assert!(m.is_second_order_symmetric(f, Var(0), Var(1), Var(2), Var(3)));
        // g = (a1·a2) + (b1 ⊕ b2) is not.
        let q2 = m.xor(b1, b2);
        let g = m.or(p, q2);
        assert!(!m.is_second_order_symmetric(g, Var(0), Var(1), Var(2), Var(3)));
    }

    #[test]
    fn same_variable_is_trivially_symmetric() {
        let mut m = BddManager::new(2);
        let a = m.literal(Var(0), true);
        assert!(m.is_symmetric(a, Var(0), Var(0)));
        assert!(m.symmetries(a, Var(0), Var(0)).is_empty());
    }
}
