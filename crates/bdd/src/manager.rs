//! The low-level ROBDD node store and core operations.
//!
//! Nodes are stored in a single arena ([`BddManager::nodes`]) indexed by
//! [`NodeId`]. Canonicity is maintained by the *unique table*: a node
//! `(var, lo, hi)` exists at most once, and no node with `lo == hi` is ever
//! created. The two terminals occupy the first two slots of the arena
//! (`NodeId::ZERO` and `NodeId::ONE`).
//!
//! All Boolean connectives are implemented on top of the ternary `ite`
//! (if-then-else) operator, which is memoized in [`BddManager::ite_cache`].
//! Because every subrelation manipulated by the BREL solver is derived from a
//! single original relation, the cache hit rate is very high in practice;
//! this mirrors the observation made in Section 7.1 of the paper.

use std::collections::HashMap;
use std::fmt;

/// Index of a BDD variable.
///
/// In this package the variable index *is* the level in the global order:
/// variable 0 is closest to the root. The higher-level crates allocate input
/// variables before output variables, which matches the ordering used by the
/// paper's characteristic functions `R(X, Y)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for Var {
    fn from(v: u32) -> Self {
        Var(v)
    }
}

impl From<usize> for Var {
    fn from(v: usize) -> Self {
        Var(v as u32)
    }
}

impl From<i32> for Var {
    fn from(v: i32) -> Self {
        debug_assert!(v >= 0, "variable indices are non-negative");
        Var(v as u32)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Identifier of a node in the manager's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The constant-false terminal.
    pub const ZERO: NodeId = NodeId(0);
    /// The constant-true terminal.
    pub const ONE: NodeId = NodeId(1);

    /// Returns `true` for the two terminal nodes.
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }

    /// Returns `true` for the constant-false terminal.
    pub fn is_zero(self) -> bool {
        self == NodeId::ZERO
    }

    /// Returns `true` for the constant-true terminal.
    pub fn is_one(self) -> bool {
        self == NodeId::ONE
    }

    /// Raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A decision node: `if var then hi else lo`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Node {
    pub var: Var,
    pub lo: NodeId,
    pub hi: NodeId,
}

/// Level used for terminals so that they order after every variable.
const TERMINAL_LEVEL: u32 = u32::MAX;

/// The ROBDD manager: node arena, unique table and operation caches.
///
/// Most users should prefer the shared [`crate::BddMgr`] handle; the raw
/// manager is exposed for callers that want explicit control over mutability
/// (for example, the benchmark harness).
pub struct BddManager {
    pub(crate) nodes: Vec<Node>,
    unique: HashMap<(Var, NodeId, NodeId), NodeId>,
    ite_cache: HashMap<(NodeId, NodeId, NodeId), NodeId>,
    pub(crate) var_names: Vec<String>,
}

impl fmt::Debug for BddManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BddManager")
            .field("num_vars", &self.var_names.len())
            .field("num_nodes", &self.nodes.len())
            .finish()
    }
}

impl BddManager {
    /// Creates a manager with `num_vars` variables named `x0..x{n-1}`.
    pub fn new(num_vars: usize) -> Self {
        let mut mgr = BddManager {
            nodes: Vec::with_capacity(1024),
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            var_names: (0..num_vars).map(|i| format!("x{i}")).collect(),
        };
        // Terminal placeholders. `var` is unused for terminals.
        mgr.nodes.push(Node {
            var: Var(TERMINAL_LEVEL),
            lo: NodeId::ZERO,
            hi: NodeId::ZERO,
        });
        mgr.nodes.push(Node {
            var: Var(TERMINAL_LEVEL),
            lo: NodeId::ONE,
            hi: NodeId::ONE,
        });
        mgr
    }

    /// Number of variables known to the manager.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// Total number of nodes allocated so far (including the two terminals).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Appends a new variable (placed at the bottom of the order) and
    /// returns it.
    pub fn add_var(&mut self, name: impl Into<String>) -> Var {
        let v = Var(self.var_names.len() as u32);
        self.var_names.push(name.into());
        v
    }

    /// Sets the display name of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not a variable of this manager.
    pub fn set_var_name(&mut self, var: Var, name: impl Into<String>) {
        self.var_names[var.index()] = name.into();
    }

    /// Returns the display name of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not a variable of this manager.
    pub fn var_name(&self, var: Var) -> &str {
        &self.var_names[var.index()]
    }

    /// Level of a node: its variable index, or `u32::MAX` for terminals.
    pub(crate) fn level(&self, id: NodeId) -> u32 {
        if id.is_terminal() {
            TERMINAL_LEVEL
        } else {
            self.nodes[id.index()].var.0
        }
    }

    /// Variable labelling an internal node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is a terminal.
    pub fn node_var(&self, id: NodeId) -> Var {
        assert!(!id.is_terminal(), "terminal nodes carry no variable");
        self.nodes[id.index()].var
    }

    /// `(lo, hi)` children of an internal node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is a terminal.
    pub fn node_children(&self, id: NodeId) -> (NodeId, NodeId) {
        assert!(!id.is_terminal(), "terminal nodes have no children");
        let n = &self.nodes[id.index()];
        (n.lo, n.hi)
    }

    /// Finds or creates the canonical node `(var, lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is ordered at or below the top variable of `lo`/`hi`
    /// (which would violate the variable order invariant).
    pub fn mk(&mut self, var: Var, lo: NodeId, hi: NodeId) -> NodeId {
        if lo == hi {
            return lo;
        }
        debug_assert!(
            var.0 < self.level(lo) && var.0 < self.level(hi),
            "mk would violate the variable order: var {:?} lo-level {} hi-level {}",
            var,
            self.level(lo),
            self.level(hi)
        );
        if let Some(&id) = self.unique.get(&(var, lo, hi)) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), id);
        id
    }

    /// The constant-false function.
    pub fn zero(&self) -> NodeId {
        NodeId::ZERO
    }

    /// The constant-true function.
    pub fn one(&self) -> NodeId {
        NodeId::ONE
    }

    /// The projection function of variable `var`.
    pub fn literal(&mut self, var: Var, positive: bool) -> NodeId {
        if positive {
            self.mk(var, NodeId::ZERO, NodeId::ONE)
        } else {
            self.mk(var, NodeId::ONE, NodeId::ZERO)
        }
    }

    /// Shannon cofactors of `f` with respect to the variable at the node's
    /// top level `v`: returns `(f_{v=0}, f_{v=1})`. If `v` is not the top
    /// variable of `f` both cofactors are `f` itself.
    fn top_cofactors(&self, f: NodeId, v: Var) -> (NodeId, NodeId) {
        if f.is_terminal() || self.nodes[f.index()].var != v {
            (f, f)
        } else {
            let n = &self.nodes[f.index()];
            (n.lo, n.hi)
        }
    }

    /// The if-then-else operator: `ite(f, g, h) = f·g + f'·h`.
    ///
    /// Every Boolean connective in this package is expressed via `ite`,
    /// which is memoized.
    pub fn ite(&mut self, f: NodeId, g: NodeId, h: NodeId) -> NodeId {
        // Terminal cases.
        if f.is_one() {
            return g;
        }
        if f.is_zero() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.is_one() && h.is_zero() {
            return f;
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return r;
        }
        let lf = self.level(f);
        let lg = self.level(g);
        let lh = self.level(h);
        let top = lf.min(lg).min(lh);
        let v = Var(top);
        let (f0, f1) = self.top_cofactors(f, v);
        let (g0, g1) = self.top_cofactors(g, v);
        let (h0, h1) = self.top_cofactors(h, v);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(v, lo, hi);
        self.ite_cache.insert((f, g, h), r);
        r
    }

    /// Logical negation.
    pub fn not(&mut self, f: NodeId) -> NodeId {
        self.ite(f, NodeId::ZERO, NodeId::ONE)
    }

    /// Logical conjunction.
    pub fn and(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.ite(f, g, NodeId::ZERO)
    }

    /// Logical disjunction.
    pub fn or(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.ite(f, NodeId::ONE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Logical equivalence (`xnor`).
    pub fn iff(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let ng = self.not(g);
        self.ite(f, g, ng)
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.ite(f, g, NodeId::ONE)
    }

    /// Conjunction of a slice of functions.
    pub fn and_many(&mut self, fs: &[NodeId]) -> NodeId {
        let mut acc = NodeId::ONE;
        for &f in fs {
            acc = self.and(acc, f);
            if acc.is_zero() {
                break;
            }
        }
        acc
    }

    /// Disjunction of a slice of functions.
    pub fn or_many(&mut self, fs: &[NodeId]) -> NodeId {
        let mut acc = NodeId::ZERO;
        for &f in fs {
            acc = self.or(acc, f);
            if acc.is_one() {
                break;
            }
        }
        acc
    }

    /// Cofactor of `f` with respect to `var = value`.
    pub fn cofactor(&mut self, f: NodeId, var: Var, value: bool) -> NodeId {
        if f.is_terminal() {
            return f;
        }
        // A dedicated cache keyed by (f, var, value) would be possible; reuse
        // the ite cache by expressing the cofactor as compose with a constant.
        let mut memo = HashMap::new();
        self.cofactor_rec(f, var, value, &mut memo)
    }

    fn cofactor_rec(
        &mut self,
        f: NodeId,
        var: Var,
        value: bool,
        memo: &mut HashMap<NodeId, NodeId>,
    ) -> NodeId {
        if f.is_terminal() || self.level(f) > var.0 {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let n = self.nodes[f.index()];
        let r = if n.var == var {
            if value {
                n.hi
            } else {
                n.lo
            }
        } else {
            let lo = self.cofactor_rec(n.lo, var, value, memo);
            let hi = self.cofactor_rec(n.hi, var, value, memo);
            self.mk(n.var, lo, hi)
        };
        memo.insert(f, r);
        r
    }

    /// Restriction of `f` by a (possibly partial) assignment given as
    /// `(var, value)` pairs.
    pub fn restrict_assignment(&mut self, f: NodeId, assignment: &[(Var, bool)]) -> NodeId {
        let mut acc = f;
        for &(v, b) in assignment {
            acc = self.cofactor(acc, v, b);
        }
        acc
    }

    /// Functional composition: substitutes variable `var` in `f` by `g`.
    pub fn compose(&mut self, f: NodeId, var: Var, g: NodeId) -> NodeId {
        let f1 = self.cofactor(f, var, true);
        let f0 = self.cofactor(f, var, false);
        self.ite(g, f1, f0)
    }

    /// Simultaneously exchanges two variables of `f` (i.e. computes
    /// `f` with the roles of `a` and `b` swapped).
    pub fn swap_vars(&mut self, f: NodeId, a: Var, b: Var) -> NodeId {
        if a == b {
            return f;
        }
        let f0 = self.cofactor(f, a, false);
        let f1 = self.cofactor(f, a, true);
        let f00 = self.cofactor(f0, b, false);
        let f01 = self.cofactor(f0, b, true);
        let f10 = self.cofactor(f1, b, false);
        let f11 = self.cofactor(f1, b, true);
        // g(a, b) = f(b, a): g with a=1,b=0 must equal f with a=0,b=1.
        let lit_a = self.literal(a, true);
        let lit_b = self.literal(b, true);
        let when_a1 = self.ite(lit_b, f11, f01);
        let when_a0 = self.ite(lit_b, f10, f00);
        self.ite(lit_a, when_a1, when_a0)
    }

    /// Renames variables of `f` according to `map`, which sends old
    /// variables to new variables. Unmapped variables are left untouched.
    ///
    /// The mapping must be injective on the support of `f`; this is enforced
    /// only through debug assertions. The implementation substitutes one
    /// variable at a time via [`BddManager::compose`], going through fresh
    /// intermediate literals when the ranges overlap would not be safe; for
    /// the simple "shift outputs after inputs" renamings used by the
    /// relation layer a direct recursive rebuild is used instead when the map
    /// is strictly monotone.
    pub fn rename_vars(&mut self, f: NodeId, map: &HashMap<Var, Var>) -> NodeId {
        if map.is_empty() || f.is_terminal() {
            return f;
        }
        let monotone = {
            let mut pairs: Vec<(Var, Var)> = map.iter().map(|(a, b)| (*a, *b)).collect();
            pairs.sort();
            pairs.windows(2).all(|w| w[0].1 < w[1].1)
        };
        if monotone {
            let mut memo = HashMap::new();
            return self.rename_rec(f, map, &mut memo);
        }
        // General case: go through temporary variables far above all in use.
        let base = self.var_names.len() as u32;
        let temp_map: HashMap<Var, Var> = map
            .keys()
            .enumerate()
            .map(|(i, &v)| (v, Var(base + i as u32)))
            .collect();
        for _ in 0..temp_map.len() {
            self.add_var("__tmp_rename");
        }
        let mut acc = f;
        for (&old, &tmp) in &temp_map {
            let lit = self.literal(tmp, true);
            acc = self.compose(acc, old, lit);
        }
        for (&old, &tmp) in &temp_map {
            let new = map[&old];
            let lit = self.literal(new, true);
            acc = self.compose(acc, tmp, lit);
        }
        acc
    }

    fn rename_rec(
        &mut self,
        f: NodeId,
        map: &HashMap<Var, Var>,
        memo: &mut HashMap<NodeId, NodeId>,
    ) -> NodeId {
        if f.is_terminal() {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let n = self.nodes[f.index()];
        let lo = self.rename_rec(n.lo, map, memo);
        let hi = self.rename_rec(n.hi, map, memo);
        let var = *map.get(&n.var).unwrap_or(&n.var);
        let r = self.mk(var, lo, hi);
        memo.insert(f, r);
        r
    }

    /// Number of distinct decision nodes in the DAG rooted at `f`
    /// (terminals excluded). This is the paper's "BDD size" cost metric.
    pub fn size(&self, f: NodeId) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        let mut count = 0usize;
        while let Some(id) = stack.pop() {
            if id.is_terminal() || !seen.insert(id) {
                continue;
            }
            count += 1;
            let n = &self.nodes[id.index()];
            stack.push(n.lo);
            stack.push(n.hi);
        }
        count
    }

    /// Combined DAG size of several functions (shared nodes counted once).
    pub fn shared_size(&self, fs: &[NodeId]) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack: Vec<NodeId> = fs.to_vec();
        let mut count = 0usize;
        while let Some(id) = stack.pop() {
            if id.is_terminal() || !seen.insert(id) {
                continue;
            }
            count += 1;
            let n = &self.nodes[id.index()];
            stack.push(n.lo);
            stack.push(n.hi);
        }
        count
    }

    /// Support of `f`: the sorted list of variables it depends on.
    pub fn support(&self, f: NodeId) -> Vec<Var> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f];
        while let Some(id) = stack.pop() {
            if id.is_terminal() || !seen.insert(id) {
                continue;
            }
            let n = &self.nodes[id.index()];
            vars.insert(n.var);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        vars.into_iter().collect()
    }

    /// Evaluates `f` under a complete assignment indexed by variable.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is shorter than the index of a variable
    /// encountered along the evaluation path.
    pub fn eval(&self, f: NodeId, assignment: &[bool]) -> bool {
        let mut id = f;
        while !id.is_terminal() {
            let n = &self.nodes[id.index()];
            id = if assignment[n.var.index()] {
                n.hi
            } else {
                n.lo
            };
        }
        id.is_one()
    }

    /// Clears the operation caches (the unique table is preserved, so node
    /// identity is unaffected). Useful to bound memory in long runs.
    pub fn clear_caches(&mut self) {
        self.ite_cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr3() -> (BddManager, NodeId, NodeId, NodeId) {
        let mut m = BddManager::new(3);
        let a = m.literal(Var(0), true);
        let b = m.literal(Var(1), true);
        let c = m.literal(Var(2), true);
        (m, a, b, c)
    }

    #[test]
    fn terminals_are_distinct_and_fixed() {
        let m = BddManager::new(2);
        assert!(NodeId::ZERO.is_zero());
        assert!(NodeId::ONE.is_one());
        assert_ne!(m.zero(), m.one());
        assert_eq!(m.num_nodes(), 2);
    }

    #[test]
    fn mk_is_canonical() {
        let (mut m, _a, _b, _c) = mgr3();
        let n1 = m.mk(Var(1), NodeId::ZERO, NodeId::ONE);
        let n2 = m.mk(Var(1), NodeId::ZERO, NodeId::ONE);
        assert_eq!(n1, n2);
        let collapsed = m.mk(Var(0), n1, n1);
        assert_eq!(collapsed, n1);
    }

    #[test]
    fn basic_connectives_match_truth_table() {
        let (mut m, a, b, _c) = mgr3();
        let and = m.and(a, b);
        let or = m.or(a, b);
        let xor = m.xor(a, b);
        let iff = m.iff(a, b);
        let imp = m.implies(a, b);
        for va in [false, true] {
            for vb in [false, true] {
                let asg = [va, vb, false];
                assert_eq!(m.eval(and, &asg), va && vb);
                assert_eq!(m.eval(or, &asg), va || vb);
                assert_eq!(m.eval(xor, &asg), va ^ vb);
                assert_eq!(m.eval(iff, &asg), va == vb);
                assert_eq!(m.eval(imp, &asg), !va || vb);
            }
        }
    }

    #[test]
    fn double_negation_is_identity() {
        let (mut m, a, b, c) = mgr3();
        let f = m.ite(a, b, c);
        let nf = m.not(f);
        let nnf = m.not(nf);
        assert_eq!(f, nnf);
    }

    #[test]
    fn ite_of_equal_branches_collapses() {
        let (mut m, a, b, _c) = mgr3();
        assert_eq!(m.ite(a, b, b), b);
        assert_eq!(m.ite(a, NodeId::ONE, NodeId::ZERO), a);
    }

    #[test]
    fn and_or_many() {
        let (mut m, a, b, c) = mgr3();
        let all = m.and_many(&[a, b, c]);
        let any = m.or_many(&[a, b, c]);
        assert!(m.eval(all, &[true, true, true]));
        assert!(!m.eval(all, &[true, true, false]));
        assert!(m.eval(any, &[false, false, true]));
        assert!(!m.eval(any, &[false, false, false]));
        assert_eq!(m.and_many(&[]), NodeId::ONE);
        assert_eq!(m.or_many(&[]), NodeId::ZERO);
    }

    #[test]
    fn cofactor_shannon_expansion() {
        let (mut m, a, b, c) = mgr3();
        let f = {
            let t = m.and(a, b);
            let e = m.and(c, b);
            m.or(t, e)
        };
        let f1 = m.cofactor(f, Var(0), true);
        let f0 = m.cofactor(f, Var(0), false);
        // Shannon: f = a·f1 + a'·f0
        let rebuilt = m.ite(a, f1, f0);
        assert_eq!(rebuilt, f);
        // cofactor removes the variable from the support
        assert!(!m.support(f1).contains(&Var(0)));
    }

    #[test]
    fn compose_substitutes_function() {
        let (mut m, a, b, c) = mgr3();
        // f = a xor b ; compose b := (a and c)  =>  a xor (a and c)
        let f = m.xor(a, b);
        let g = m.and(a, c);
        let h = m.compose(f, Var(1), g);
        for va in [false, true] {
            for vc in [false, true] {
                let expected = va ^ (va && vc);
                assert_eq!(m.eval(h, &[va, false, vc]), expected);
            }
        }
    }

    #[test]
    fn swap_vars_exchanges_roles() {
        let (mut m, a, b, c) = mgr3();
        // f = a and (not b) and c
        let nb = m.not(b);
        let t = m.and(a, nb);
        let f = m.and(t, c);
        let g = m.swap_vars(f, Var(0), Var(1));
        for va in [false, true] {
            for vb in [false, true] {
                for vc in [false, true] {
                    assert_eq!(m.eval(g, &[va, vb, vc]), m.eval(f, &[vb, va, vc]));
                }
            }
        }
    }

    #[test]
    fn rename_monotone_shift() {
        let mut m = BddManager::new(6);
        let a = m.literal(Var(0), true);
        let b = m.literal(Var(1), true);
        let f = m.and(a, b);
        let map: HashMap<Var, Var> = [(Var(0), Var(2)), (Var(1), Var(4))].into_iter().collect();
        let g = m.rename_vars(f, &map);
        assert_eq!(m.support(g), vec![Var(2), Var(4)]);
        assert!(m.eval(g, &[false, false, true, false, true, false]));
        assert!(!m.eval(g, &[true, true, false, false, true, false]));
    }

    #[test]
    fn rename_swap_via_temporaries() {
        let mut m = BddManager::new(2);
        let a = m.literal(Var(0), true);
        let nb = {
            let b = m.literal(Var(1), true);
            m.not(b)
        };
        let f = m.and(a, nb); // a · b'
        let map: HashMap<Var, Var> = [(Var(0), Var(1)), (Var(1), Var(0))].into_iter().collect();
        let g = m.rename_vars(f, &map); // b · a'
        assert!(m.eval(g, &[false, true]));
        assert!(!m.eval(g, &[true, false]));
    }

    #[test]
    fn size_counts_distinct_nodes() {
        let (mut m, a, b, c) = mgr3();
        assert_eq!(m.size(NodeId::ZERO), 0);
        assert_eq!(m.size(a), 1);
        let f = {
            let t = m.and(a, b);
            m.or(t, c)
        };
        assert!(m.size(f) >= 3);
        let total = m.shared_size(&[f, c]);
        assert_eq!(total, m.size(f), "the literal c is shared inside f");
    }

    #[test]
    fn support_is_sorted_and_minimal() {
        let (mut m, a, _b, c) = mgr3();
        let f = m.or(a, c);
        assert_eq!(m.support(f), vec![Var(0), Var(2)]);
        // b is redundant in (a·b + a·b')
        let b = m.literal(Var(1), true);
        let nb = m.not(b);
        let t1 = m.and(a, b);
        let t2 = m.and(a, nb);
        let g = m.or(t1, t2);
        assert_eq!(m.support(g), vec![Var(0)]);
        assert_eq!(g, a);
    }

    #[test]
    fn add_var_and_names() {
        let mut m = BddManager::new(1);
        assert_eq!(m.var_name(Var(0)), "x0");
        let v = m.add_var("sel");
        assert_eq!(v, Var(1));
        assert_eq!(m.var_name(v), "sel");
        m.set_var_name(Var(0), "data");
        assert_eq!(m.var_name(Var(0)), "data");
        assert_eq!(m.num_vars(), 2);
    }

    #[test]
    fn clear_caches_preserves_results() {
        let (mut m, a, b, _c) = mgr3();
        let f = m.and(a, b);
        m.clear_caches();
        let g = m.and(a, b);
        assert_eq!(f, g, "canonical nodes survive cache clearing");
    }
}
