//! The low-level ROBDD node store and core operations.
//!
//! Nodes are stored in a single arena ([`BddManager::nodes`]) indexed by
//! [`NodeId`]. Canonicity is maintained by the *unique table*: a node
//! `(var, lo, hi)` exists at most once, and no node with `lo == hi` is ever
//! created. The two terminals occupy the first two slots of the arena
//! (`NodeId::ZERO` and `NodeId::ONE`).
//!
//! All Boolean connectives are implemented on top of the ternary `ite`
//! (if-then-else) operator, which is memoized in the manager's operation
//! cache. Because every subrelation manipulated by the BREL solver is
//! derived from a single original relation, the cache hit rate is very high
//! in practice; this mirrors the observation made in Section 7.1 of the
//! paper.
//!
//! The memory layer is CUDD-style (see [`crate::cache`]): the unique table
//! is open-addressed with an Fx-style hash over `(var, lo, hi)`, and one
//! fixed-size lossy direct-mapped operation cache is shared by `ite` and
//! the tagged operations (`cofactor`, quantification, renaming and the
//! generalized cofactors), which persist results across calls instead of
//! allocating a memo table per call.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;

use crate::cache::{CacheStats, OpCache, OpTag, UniqueTable};
use crate::config::BddConfig;
use crate::gc::{GcState, RootTable};
use crate::governor::{GovernorVerdict, ResourceGovernor};

/// Index of a BDD variable.
///
/// A variable's *index* is its stable identity; its *level* (position in
/// the global order, 0 closest to the root) is looked up through the
/// manager's `var ↔ level` permutation and can change under dynamic
/// reordering. Managers start with the identity order, in which the
/// higher-level crates allocate input variables before output variables —
/// the ordering used by the paper's characteristic functions `R(X, Y)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for Var {
    fn from(v: u32) -> Self {
        Var(v)
    }
}

impl From<usize> for Var {
    fn from(v: usize) -> Self {
        Var(v as u32)
    }
}

impl From<i32> for Var {
    fn from(v: i32) -> Self {
        debug_assert!(v >= 0, "variable indices are non-negative");
        Var(v as u32)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Identifier of a node in the manager's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The constant-false terminal.
    pub const ZERO: NodeId = NodeId(0);
    /// The constant-true terminal.
    pub const ONE: NodeId = NodeId(1);

    /// Returns `true` for the two terminal nodes.
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }

    /// Returns `true` for the constant-false terminal.
    pub fn is_zero(self) -> bool {
        self == NodeId::ZERO
    }

    /// Returns `true` for the constant-true terminal.
    pub fn is_one(self) -> bool {
        self == NodeId::ONE
    }

    /// Raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A decision node: `if var then hi else lo`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Node {
    pub var: Var,
    pub lo: NodeId,
    pub hi: NodeId,
}

/// Level used for terminals so that they order after every variable.
const TERMINAL_LEVEL: u32 = u32::MAX;

/// Variable marker of a reclaimed arena slot (never a valid variable: the
/// manager refuses to allocate `u32::MAX` variables).
pub(crate) const FREE_VAR: u32 = u32::MAX;

/// The ROBDD manager: node arena, unique table and operation caches.
///
/// The manager is a self-contained, owning value — it holds its root table
/// directly and is `Send`, so a whole manager can move between threads
/// (the engine's warm worker pool relies on this). Most users should
/// prefer the [`crate::BddSession`] handle; the raw manager is exposed for
/// callers that want explicit control over mutability (for example, the
/// benchmark harness).
pub struct BddManager {
    pub(crate) nodes: Vec<Node>,
    /// Reclaimed arena slots awaiting reuse by `mk` (see [`crate::gc`]).
    pub(crate) free: Vec<u32>,
    pub(crate) unique: UniqueTable,
    pub(crate) cache: OpCache,
    /// Variable index → current level.
    pub(crate) var2level: Vec<u32>,
    /// Current level → variable index.
    pub(crate) level2var: Vec<Var>,
    /// External references; [`crate::Bdd`] handles hold slot indices into
    /// this table and resolve/retain/release through the session lock.
    pub(crate) roots: RootTable,
    /// Lifecycle bookkeeping: GC triggers and counters.
    pub(crate) gc: GcState,
    /// Optional resource budget enforced by `note_alloc`; see
    /// [`crate::governor`].
    pub(crate) governor: Option<ResourceGovernor>,
    /// Interned monotone rename maps (sorted `(old, new)` pairs); the index
    /// is the stable identity used in rename cache keys.
    rename_maps: Vec<Vec<(Var, Var)>>,
    /// Reusable epoch-stamped visited set for `size`/`support` traversals
    /// (`RefCell`: those queries take `&self`).
    visit_scratch: RefCell<VisitScratch>,
    pub(crate) var_names: Vec<String>,
}

impl fmt::Debug for BddManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BddManager")
            .field("num_vars", &self.var_names.len())
            .field("num_nodes", &self.nodes.len())
            .finish()
    }
}

impl BddManager {
    /// Creates a manager with `num_vars` variables named `x0..x{n-1}`.
    pub fn new(num_vars: usize) -> Self {
        Self::with_capacity(num_vars, 1024)
    }

    /// Creates a manager pre-sized for roughly `expected_nodes` decision
    /// nodes: the arena and the unique table are allocated up front, so
    /// building a function of that size triggers no rehash. Used by the
    /// engine's worker-pool rehydration, where the node count is known
    /// before construction starts. Lifecycle tuning comes from
    /// [`BddConfig::from_env`].
    pub fn with_capacity(num_vars: usize, expected_nodes: usize) -> Self {
        Self::with_config(num_vars, expected_nodes, BddConfig::from_env())
    }

    /// Creates a manager with an explicit lifecycle configuration — the
    /// base constructor every other constructor funnels through.
    pub fn with_config(num_vars: usize, expected_nodes: usize, config: BddConfig) -> Self {
        // Pre-size the root table along with the arena: external handles
        // are far fewer than nodes, but rehydration-scale managers still
        // skip the first few reallocation steps this way.
        let expected_roots = (expected_nodes / 8).clamp(32, 4096);
        let mut mgr = BddManager {
            nodes: Vec::with_capacity(expected_nodes.saturating_add(2)),
            free: Vec::new(),
            unique: UniqueTable::with_capacity(expected_nodes),
            cache: OpCache::new(),
            var2level: (0..num_vars as u32).collect(),
            level2var: (0..num_vars).map(Var::from).collect(),
            roots: RootTable::with_capacity(expected_roots),
            gc: GcState::new(&config),
            governor: None,
            rename_maps: Vec::new(),
            visit_scratch: RefCell::new(VisitScratch::new()),
            var_names: (0..num_vars).map(|i| format!("x{i}")).collect(),
        };
        // Terminal placeholders. `var` is unused for terminals.
        mgr.nodes.push(Node {
            var: Var(TERMINAL_LEVEL),
            lo: NodeId::ZERO,
            hi: NodeId::ZERO,
        });
        mgr.nodes.push(Node {
            var: Var(TERMINAL_LEVEL),
            lo: NodeId::ONE,
            hi: NodeId::ONE,
        });
        mgr
    }

    /// Rewinds a live-root-free manager to the state a cold
    /// [`BddManager::with_config`]`(num_vars, expected_nodes, config)`
    /// would start in, while keeping its allocations warm — the arena
    /// vector, unique-table slab, op-cache slab and root-table storage are
    /// reused instead of reallocated. `config` replaces the lifecycle
    /// tuning. Returns `false` (doing nothing) if external roots are still
    /// live, so callers can fall back to a fresh manager.
    ///
    /// A reset manager is *observationally identical* to a cold one: the
    /// node arena holds only the two terminals, the unique table is empty
    /// at the cold capacity for `expected_nodes`, the op cache is back at
    /// its cold slot count with auto-growth re-armed, the variable order
    /// is the identity with default `x{i}` names, and all GC triggers are
    /// re-armed. Cumulative counters (cache lookups, collections, …)
    /// survive — per-phase consumers report deltas — and the
    /// `peak_live_nodes` gauge is re-based to the terminal-only arena.
    pub fn reset(&mut self, num_vars: usize, expected_nodes: usize, config: BddConfig) -> bool {
        if self.roots.live_roots() != 0 {
            return false;
        }
        self.roots.reset();
        self.nodes.truncate(2);
        self.nodes
            .reserve(expected_nodes.saturating_add(2) - self.nodes.len());
        self.free.clear();
        self.unique.reset(expected_nodes);
        self.cache.reset();
        self.var2level = (0..num_vars as u32).collect();
        self.level2var = (0..num_vars).map(Var::from).collect();
        self.var_names = (0..num_vars).map(|i| format!("x{i}")).collect();
        self.rename_maps.clear();
        self.visit_scratch.borrow_mut().reset();
        let counters = (
            self.gc.collections,
            self.gc.nodes_reclaimed,
            self.gc.reorder_passes,
        );
        self.gc = GcState::new(&config);
        (
            self.gc.collections,
            self.gc.nodes_reclaimed,
            self.gc.reorder_passes,
        ) = counters;
        self.gc.peak_live_nodes = self.live_nodes() as u64;
        // A governor budgets one unit of work; it never survives into the
        // next job's session.
        self.governor = None;
        true
    }

    /// Pre-grows the arena and the unique table for `additional` more
    /// decision nodes, so a burst of `mk` calls proceeds rehash-free.
    pub fn reserve(&mut self, additional: usize) {
        self.nodes.reserve(additional);
        self.unique.reserve(additional, &self.nodes);
    }

    /// Replaces the operation cache with one of `slots` slots (rounded to a
    /// power of two; entries are dropped, counters survive). Primarily for
    /// tests that pin a tiny cache to stress the lossy-eviction path.
    pub fn resize_op_cache(&mut self, slots: usize) {
        self.cache.resize(slots);
    }

    /// The kernel's cache/unique-table counter block. Counters are
    /// cumulative and deterministic; see [`CacheStats`].
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            unique_lookups: self.unique.lookups(),
            unique_hits: self.unique.hits(),
            unique_len: self.unique.len() as u64,
            unique_capacity: self.unique.capacity() as u64,
            cache_lookups: self.cache.lookups(),
            cache_hits: self.cache.hits(),
            cache_inserts: self.cache.inserts(),
            cache_evictions: self.cache.evictions(),
            cache_slots: self.cache.slot_count() as u64,
            num_nodes: self.nodes.len() as u64,
        }
    }

    /// Number of variables known to the manager.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// Total number of nodes allocated so far (including the two terminals).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Appends a new variable (placed at the bottom of the order) and
    /// returns it.
    pub fn add_var(&mut self, name: impl Into<String>) -> Var {
        let v = Var(self.var_names.len() as u32);
        assert!(v.0 < FREE_VAR, "variable indices exhausted");
        self.var_names.push(name.into());
        self.var2level.push(self.level2var.len() as u32);
        self.level2var.push(v);
        v
    }

    /// Post-allocation bookkeeping: tracks the live-node high-water mark,
    /// arms the deferred-GC flag once the growth threshold is crossed, and
    /// enforces the session's [`ResourceGovernor`] (if one is installed).
    /// A governor abort unwinds with a typed [`crate::BddError`] payload;
    /// the node just created is fully inserted and will be reclaimed as
    /// unrooted garbage by the next sweep, so the manager stays
    /// structurally consistent.
    #[inline]
    pub(crate) fn note_alloc(&mut self) {
        let live = self.nodes.len() - self.free.len();
        if live as u64 > self.gc.peak_live_nodes {
            self.gc.peak_live_nodes = live as u64;
        }
        if self.gc.auto_gc && live >= self.gc.next_gc_at {
            self.gc.pending = true;
        }
        if let Some(governor) = &mut self.governor {
            match governor.note_alloc(live as u64, self.gc.collections) {
                GovernorVerdict::Proceed => {}
                GovernorVerdict::RequestGc => self.gc.pending = true,
                GovernorVerdict::Abort(error) => std::panic::panic_any(error),
            }
        }
    }

    /// Installs a resource governor, replacing any previous one. The
    /// governor budgets one unit of work: a session reset clears it.
    pub fn set_governor(&mut self, governor: ResourceGovernor) {
        self.governor = Some(governor);
    }

    /// Removes the resource governor, returning it if one was installed.
    pub fn clear_governor(&mut self) -> Option<ResourceGovernor> {
        self.governor.take()
    }

    /// The installed resource governor, if any.
    pub fn governor(&self) -> Option<&ResourceGovernor> {
        self.governor.as_ref()
    }

    /// Sets the display name of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not a variable of this manager.
    pub fn set_var_name(&mut self, var: Var, name: impl Into<String>) {
        self.var_names[var.index()] = name.into();
    }

    /// Returns the display name of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not a variable of this manager.
    pub fn var_name(&self, var: Var) -> &str {
        &self.var_names[var.index()]
    }

    /// Level of a node: its variable's position in the current order, or
    /// `u32::MAX` for terminals.
    pub(crate) fn level(&self, id: NodeId) -> u32 {
        if id.is_terminal() {
            TERMINAL_LEVEL
        } else {
            self.var2level[self.nodes[id.index()].var.index()]
        }
    }

    /// Current level of a variable.
    #[inline]
    pub fn var_level(&self, var: Var) -> u32 {
        self.var2level[var.index()]
    }

    /// Variable currently sitting at a level.
    ///
    /// # Panics
    ///
    /// Panics if `level` is not a valid level.
    #[inline]
    pub fn level_var(&self, level: u32) -> Var {
        self.level2var[level as usize]
    }

    /// Variable labelling an internal node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is a terminal.
    pub fn node_var(&self, id: NodeId) -> Var {
        assert!(!id.is_terminal(), "terminal nodes carry no variable");
        self.nodes[id.index()].var
    }

    /// `(lo, hi)` children of an internal node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is a terminal.
    pub fn node_children(&self, id: NodeId) -> (NodeId, NodeId) {
        assert!(!id.is_terminal(), "terminal nodes have no children");
        let n = &self.nodes[id.index()];
        (n.lo, n.hi)
    }

    /// Finds or creates the canonical node `(var, lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is ordered at or below the top variable of `lo`/`hi`
    /// (which would violate the variable order invariant).
    pub fn mk(&mut self, var: Var, lo: NodeId, hi: NodeId) -> NodeId {
        if lo == hi {
            return lo;
        }
        debug_assert!(
            self.var_level(var) < self.level(lo) && self.var_level(var) < self.level(hi),
            "mk would violate the variable order: var {:?} (level {}) lo-level {} hi-level {}",
            var,
            self.var_level(var),
            self.level(lo),
            self.level(hi)
        );
        let id = self
            .unique
            .get_or_insert(var, lo, hi, &mut self.nodes, &mut self.free);
        self.note_alloc();
        id
    }

    /// The constant-false function.
    pub fn zero(&self) -> NodeId {
        NodeId::ZERO
    }

    /// The constant-true function.
    pub fn one(&self) -> NodeId {
        NodeId::ONE
    }

    /// The projection function of variable `var`.
    pub fn literal(&mut self, var: Var, positive: bool) -> NodeId {
        if positive {
            self.mk(var, NodeId::ZERO, NodeId::ONE)
        } else {
            self.mk(var, NodeId::ONE, NodeId::ZERO)
        }
    }

    /// Shannon cofactors of `f` with respect to the variable at the node's
    /// top level `v`: returns `(f_{v=0}, f_{v=1})`. If `v` is not the top
    /// variable of `f` both cofactors are `f` itself.
    fn top_cofactors(&self, f: NodeId, v: Var) -> (NodeId, NodeId) {
        if f.is_terminal() || self.nodes[f.index()].var != v {
            (f, f)
        } else {
            let n = &self.nodes[f.index()];
            (n.lo, n.hi)
        }
    }

    /// The if-then-else operator: `ite(f, g, h) = f·g + f'·h`.
    ///
    /// Every Boolean connective in this package is expressed via `ite`,
    /// which is memoized.
    pub fn ite(&mut self, f: NodeId, g: NodeId, h: NodeId) -> NodeId {
        // Terminal cases.
        if f.is_one() {
            return g;
        }
        if f.is_zero() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.is_one() && h.is_zero() {
            return f;
        }
        if let Some(r) = self.cache.lookup(OpTag::Ite, f.0, g.0, h.0) {
            return r;
        }
        let lf = self.level(f);
        let lg = self.level(g);
        let lh = self.level(h);
        let top = lf.min(lg).min(lh);
        let v = self.level_var(top);
        let (f0, f1) = self.top_cofactors(f, v);
        let (g0, g1) = self.top_cofactors(g, v);
        let (h0, h1) = self.top_cofactors(h, v);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(v, lo, hi);
        self.cache.insert(OpTag::Ite, f.0, g.0, h.0, r);
        r
    }

    /// Logical negation.
    pub fn not(&mut self, f: NodeId) -> NodeId {
        self.ite(f, NodeId::ZERO, NodeId::ONE)
    }

    /// Logical conjunction.
    pub fn and(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.ite(f, g, NodeId::ZERO)
    }

    /// Logical disjunction.
    pub fn or(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.ite(f, NodeId::ONE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Logical equivalence (`xnor`).
    pub fn iff(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let ng = self.not(g);
        self.ite(f, g, ng)
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.ite(f, g, NodeId::ONE)
    }

    /// Conjunction of a slice of functions.
    pub fn and_many(&mut self, fs: &[NodeId]) -> NodeId {
        let mut acc = NodeId::ONE;
        for &f in fs {
            acc = self.and(acc, f);
            if acc.is_zero() {
                break;
            }
        }
        acc
    }

    /// Disjunction of a slice of functions.
    pub fn or_many(&mut self, fs: &[NodeId]) -> NodeId {
        let mut acc = NodeId::ZERO;
        for &f in fs {
            acc = self.or(acc, f);
            if acc.is_one() {
                break;
            }
        }
        acc
    }

    /// Cofactor of `f` with respect to `var = value`. Memoized in the
    /// persistent operation cache under a `(f, var)` key, so repeated
    /// cofactors of shared subfunctions (the symmetry checks' hot pattern)
    /// cost one lookup after the first computation.
    pub fn cofactor(&mut self, f: NodeId, var: Var, value: bool) -> NodeId {
        self.cofactor_rec(f, var, value)
    }

    fn cofactor_rec(&mut self, f: NodeId, var: Var, value: bool) -> NodeId {
        if f.is_terminal() || self.level(f) > self.var_level(var) {
            return f;
        }
        let n = self.nodes[f.index()];
        if n.var == var {
            return if value { n.hi } else { n.lo };
        }
        let tag = if value {
            OpTag::Cofactor1
        } else {
            OpTag::Cofactor0
        };
        if let Some(r) = self.cache.lookup(tag, f.0, var.0, 0) {
            return r;
        }
        let lo = self.cofactor_rec(n.lo, var, value);
        let hi = self.cofactor_rec(n.hi, var, value);
        let r = self.mk(n.var, lo, hi);
        self.cache.insert(tag, f.0, var.0, 0, r);
        r
    }

    /// Restriction of `f` by a (possibly partial) assignment given as
    /// `(var, value)` pairs.
    ///
    /// The assignment is applied in a *single* downward pass: it is encoded
    /// as a polarity cube and the recursion walks `f` and the cube together,
    /// instead of rebuilding the DAG once per assigned variable. When a
    /// variable appears more than once, the first occurrence wins (matching
    /// the sequential-cofactor semantics this replaced: a later cofactor on
    /// an already-eliminated variable is a no-op).
    pub fn restrict_assignment(&mut self, f: NodeId, assignment: &[(Var, bool)]) -> NodeId {
        if assignment.is_empty() || f.is_terminal() {
            return f;
        }
        let mut pairs: Vec<(Var, bool)> = Vec::with_capacity(assignment.len());
        for &(v, b) in assignment {
            if !pairs.iter().any(|&(seen, _)| seen == v) {
                pairs.push((v, b));
            }
        }
        pairs.sort_unstable_by_key(|&(v, _)| self.var_level(v));
        let cube = self.polarity_cube(&pairs);
        self.restrict_cube_rec(f, cube)
    }

    /// Builds the cube BDD of `(var, value)` literal pairs sorted by
    /// current level (each variable at most once).
    pub(crate) fn polarity_cube(&mut self, sorted_pairs: &[(Var, bool)]) -> NodeId {
        let mut acc = NodeId::ONE;
        for &(v, positive) in sorted_pairs.iter().rev() {
            acc = if positive {
                self.mk(v, NodeId::ZERO, acc)
            } else {
                self.mk(v, acc, NodeId::ZERO)
            };
        }
        acc
    }

    /// Walks past cube variables ordered above `limit` (they cannot appear
    /// in the function being walked). Polarity-cube nodes keep their
    /// continuation in whichever child is not the 0-terminal, which also
    /// covers positive cubes (their continuation is always `hi`). Shared
    /// by restriction and quantification.
    #[inline]
    pub(crate) fn advance_cube(&self, mut cube: NodeId, limit: u32) -> NodeId {
        while self.level(cube) < limit {
            let n = &self.nodes[cube.index()];
            cube = if n.lo.is_zero() { n.hi } else { n.lo };
        }
        cube
    }

    fn restrict_cube_rec(&mut self, f: NodeId, cube: NodeId) -> NodeId {
        let cube = self.advance_cube(cube, self.level(f));
        if cube.is_one() || f.is_terminal() {
            return f;
        }
        if let Some(r) = self.cache.lookup(OpTag::RestrictCube, f.0, cube.0, 0) {
            return r;
        }
        let n = self.nodes[f.index()];
        let r = if self.var_level(n.var) == self.level(cube) {
            let c = self.nodes[cube.index()];
            let (child, rest) = if c.lo.is_zero() {
                (n.hi, c.hi)
            } else {
                (n.lo, c.lo)
            };
            self.restrict_cube_rec(child, rest)
        } else {
            let lo = self.restrict_cube_rec(n.lo, cube);
            let hi = self.restrict_cube_rec(n.hi, cube);
            self.mk(n.var, lo, hi)
        };
        self.cache.insert(OpTag::RestrictCube, f.0, cube.0, 0, r);
        r
    }

    /// Functional composition: substitutes variable `var` in `f` by `g`.
    pub fn compose(&mut self, f: NodeId, var: Var, g: NodeId) -> NodeId {
        let f1 = self.cofactor(f, var, true);
        let f0 = self.cofactor(f, var, false);
        self.ite(g, f1, f0)
    }

    /// Simultaneously exchanges two variables of `f` (i.e. computes
    /// `f` with the roles of `a` and `b` swapped).
    pub fn swap_vars(&mut self, f: NodeId, a: Var, b: Var) -> NodeId {
        if a == b {
            return f;
        }
        let f00 = self.restrict_assignment(f, &[(a, false), (b, false)]);
        let f01 = self.restrict_assignment(f, &[(a, false), (b, true)]);
        let f10 = self.restrict_assignment(f, &[(a, true), (b, false)]);
        let f11 = self.restrict_assignment(f, &[(a, true), (b, true)]);
        // g(a, b) = f(b, a): g with a=1,b=0 must equal f with a=0,b=1.
        let lit_a = self.literal(a, true);
        let lit_b = self.literal(b, true);
        let when_a1 = self.ite(lit_b, f11, f01);
        let when_a0 = self.ite(lit_b, f10, f00);
        self.ite(lit_a, when_a1, when_a0)
    }

    /// Renames variables of `f` according to `map`, which sends old
    /// variables to new variables. Unmapped variables are left untouched.
    ///
    /// The mapping must be injective on the support of `f`; this is enforced
    /// only through debug assertions. The implementation substitutes one
    /// variable at a time via [`BddManager::compose`], going through fresh
    /// intermediate literals when the ranges overlap would not be safe; for
    /// the simple "shift outputs after inputs" renamings used by the
    /// relation layer a direct recursive rebuild is used instead when the
    /// map preserves the relative order of `f`'s support.
    pub fn rename_vars(&mut self, f: NodeId, map: &HashMap<Var, Var>) -> NodeId {
        if map.is_empty() || f.is_terminal() {
            return f;
        }
        // Rename entries are only ever written by a valid monotone rebuild
        // (of this node or an ancestor, whose support contains this
        // node's), so for an already-registered map a persistent-cache hit
        // short-circuits both the support walk and the recursion. Maps are
        // registered lazily below, only once they pass the monotone check,
        // so the registry never accumulates maps that cannot produce hits.
        let pairs = {
            let mut pairs: Vec<(Var, Var)> = map.iter().map(|(a, b)| (*a, *b)).collect();
            pairs.sort_unstable();
            pairs
        };
        let registered = self.rename_maps.iter().position(|m| *m == pairs);
        if let Some(id) = registered {
            if let Some(r) = self.cache.lookup(OpTag::Rename, f.0, id as u32, 0) {
                return r;
            }
        }
        // The direct rebuild is valid iff the map, extended with the
        // identity on unmapped variables, is strictly increasing in *level*
        // over the support — comparing mapped targets among themselves is
        // not enough, because an unmapped support variable interleaving
        // with the targets would make `mk` see out-of-order children.
        let monotone = {
            let mut support = self.support(f);
            support.sort_unstable_by_key(|&v| self.var_level(v));
            let effective: Vec<u32> = support
                .into_iter()
                .map(|v| self.var_level(*map.get(&v).unwrap_or(&v)))
                .collect();
            effective.windows(2).all(|w| w[0] < w[1])
        };
        if monotone {
            let map_id = registered.unwrap_or_else(|| {
                self.rename_maps.push(pairs);
                self.rename_maps.len() - 1
            });
            return self.rename_rec(f, map, map_id as u32);
        }
        // General case: go through temporary variables far above all in use.
        let base = self.var_names.len() as u32;
        let temp_map: HashMap<Var, Var> = map
            .keys()
            .enumerate()
            .map(|(i, &v)| (v, Var(base + i as u32)))
            .collect();
        for _ in 0..temp_map.len() {
            self.add_var("__tmp_rename");
        }
        let mut acc = f;
        for (&old, &tmp) in &temp_map {
            let lit = self.literal(tmp, true);
            acc = self.compose(acc, old, lit);
        }
        for (&old, &tmp) in &temp_map {
            let new = map[&old];
            let lit = self.literal(new, true);
            acc = self.compose(acc, tmp, lit);
        }
        acc
    }

    fn rename_rec(&mut self, f: NodeId, map: &HashMap<Var, Var>, map_id: u32) -> NodeId {
        if f.is_terminal() {
            return f;
        }
        if let Some(r) = self.cache.lookup(OpTag::Rename, f.0, map_id, 0) {
            return r;
        }
        let n = self.nodes[f.index()];
        let lo = self.rename_rec(n.lo, map, map_id);
        let hi = self.rename_rec(n.hi, map, map_id);
        let var = *map.get(&n.var).unwrap_or(&n.var);
        let r = self.mk(var, lo, hi);
        self.cache.insert(OpTag::Rename, f.0, map_id, 0, r);
        r
    }

    /// Number of distinct decision nodes in the DAG rooted at `f`
    /// (terminals excluded). This is the paper's "BDD size" cost metric.
    pub fn size(&self, f: NodeId) -> usize {
        self.count_nodes(std::slice::from_ref(&f))
    }

    /// Combined DAG size of several functions (shared nodes counted once).
    pub fn shared_size(&self, fs: &[NodeId]) -> usize {
        self.count_nodes(fs)
    }

    /// Shared DFS node count using the manager's reusable epoch-stamped
    /// visited set — no per-call allocation, and "clearing" between
    /// traversals is a counter bump rather than an arena-sized zeroing
    /// (`size` is the solvers' cost metric and runs constantly).
    fn count_nodes(&self, roots: &[NodeId]) -> usize {
        let mut seen = self.visit_scratch.borrow_mut();
        seen.begin(self.nodes.len());
        let mut stack: Vec<NodeId> = roots.to_vec();
        let mut count = 0usize;
        while let Some(id) = stack.pop() {
            if id.is_terminal() || !seen.insert(id) {
                continue;
            }
            count += 1;
            let n = &self.nodes[id.index()];
            stack.push(n.lo);
            stack.push(n.hi);
        }
        count
    }

    /// Support of `f`: the sorted list of variables it depends on.
    pub fn support(&self, f: NodeId) -> Vec<Var> {
        let mut seen = self.visit_scratch.borrow_mut();
        seen.begin(self.nodes.len());
        let mut vars = VisitedBits::new(self.var_names.len().max(1));
        let mut stack = vec![f];
        while let Some(id) = stack.pop() {
            if id.is_terminal() || !seen.insert(id) {
                continue;
            }
            let n = &self.nodes[id.index()];
            vars.mark(n.var.index());
            stack.push(n.lo);
            stack.push(n.hi);
        }
        vars.iter_set().map(Var::from).collect()
    }

    /// Evaluates `f` under a complete assignment indexed by variable.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is shorter than the index of a variable
    /// encountered along the evaluation path.
    pub fn eval(&self, f: NodeId, assignment: &[bool]) -> bool {
        let mut id = f;
        while !id.is_terminal() {
            let n = &self.nodes[id.index()];
            id = if assignment[n.var.index()] {
                n.hi
            } else {
                n.lo
            };
        }
        id.is_one()
    }

    /// Clears the operation caches (the unique table is preserved, so node
    /// identity is unaffected). Useful to bound memory in long runs.
    pub fn clear_caches(&mut self) {
        self.cache.clear();
    }
}

/// Reusable visited set for the kernel's DFS traversals: one epoch stamp
/// per arena index. A traversal "clears" the set by bumping the epoch, so
/// repeated `size`/`support` queries on a large arena cost nothing to
/// reset; the stamp array grows lazily with the arena and is only zeroed
/// on the (once per 2³² traversals) epoch wrap.
pub(crate) struct VisitScratch {
    stamps: Vec<u32>,
    epoch: u32,
}

impl VisitScratch {
    pub(crate) fn new() -> Self {
        VisitScratch {
            stamps: Vec::new(),
            epoch: 0,
        }
    }

    /// Forgets every stamp (keeping the allocation); used by the session
    /// reset so scratch state cannot leak across warm reuses.
    pub(crate) fn reset(&mut self) {
        self.stamps.fill(0);
        self.epoch = 0;
    }

    /// Starts a fresh traversal over an arena of `len` nodes.
    pub(crate) fn begin(&mut self, len: usize) {
        if self.stamps.len() < len {
            self.stamps.resize(len, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Stale stamps from 2³² traversals ago would alias; reset once.
            self.stamps.fill(0);
            self.epoch = 1;
        }
    }

    /// Marks a node, returning `true` if it was unmarked this traversal.
    #[inline]
    pub(crate) fn insert(&mut self, id: NodeId) -> bool {
        let stamp = &mut self.stamps[id.index()];
        if *stamp == self.epoch {
            false
        } else {
            *stamp = self.epoch;
            true
        }
    }
}

/// A flat bit vector indexed by arena position, the visited set of the
/// kernel's DFS traversals.
pub(crate) struct VisitedBits {
    words: Vec<u64>,
}

impl VisitedBits {
    pub(crate) fn new(capacity: usize) -> Self {
        VisitedBits {
            words: vec![0u64; capacity.div_ceil(64)],
        }
    }

    /// Marks a raw index, growing the vector if needed.
    #[inline]
    pub(crate) fn mark(&mut self, index: usize) {
        let word = index >> 6;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1u64 << (index & 63);
    }

    /// Marks a raw index, returning `true` if it was previously unmarked
    /// (the mark-phase visitation check of the garbage collector).
    #[inline]
    pub(crate) fn insert(&mut self, index: usize) -> bool {
        let word = index >> 6;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let bit = 1u64 << (index & 63);
        let fresh = self.words[word] & bit == 0;
        self.words[word] |= bit;
        fresh
    }

    /// Whether a raw index is marked (indices beyond capacity are not).
    #[inline]
    pub(crate) fn contains(&self, index: usize) -> bool {
        self.words
            .get(index >> 6)
            .is_some_and(|w| w & (1u64 << (index & 63)) != 0)
    }

    /// Iterates the set indices in ascending order.
    pub(crate) fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &bits)| {
            (0..64)
                .filter(move |b| bits & (1u64 << b) != 0)
                .map(move |b| w * 64 + b)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr3() -> (BddManager, NodeId, NodeId, NodeId) {
        let mut m = BddManager::new(3);
        let a = m.literal(Var(0), true);
        let b = m.literal(Var(1), true);
        let c = m.literal(Var(2), true);
        (m, a, b, c)
    }

    #[test]
    fn terminals_are_distinct_and_fixed() {
        let m = BddManager::new(2);
        assert!(NodeId::ZERO.is_zero());
        assert!(NodeId::ONE.is_one());
        assert_ne!(m.zero(), m.one());
        assert_eq!(m.num_nodes(), 2);
    }

    #[test]
    fn mk_is_canonical() {
        let (mut m, _a, _b, _c) = mgr3();
        let n1 = m.mk(Var(1), NodeId::ZERO, NodeId::ONE);
        let n2 = m.mk(Var(1), NodeId::ZERO, NodeId::ONE);
        assert_eq!(n1, n2);
        let collapsed = m.mk(Var(0), n1, n1);
        assert_eq!(collapsed, n1);
    }

    #[test]
    fn basic_connectives_match_truth_table() {
        let (mut m, a, b, _c) = mgr3();
        let and = m.and(a, b);
        let or = m.or(a, b);
        let xor = m.xor(a, b);
        let iff = m.iff(a, b);
        let imp = m.implies(a, b);
        for va in [false, true] {
            for vb in [false, true] {
                let asg = [va, vb, false];
                assert_eq!(m.eval(and, &asg), va && vb);
                assert_eq!(m.eval(or, &asg), va || vb);
                assert_eq!(m.eval(xor, &asg), va ^ vb);
                assert_eq!(m.eval(iff, &asg), va == vb);
                assert_eq!(m.eval(imp, &asg), !va || vb);
            }
        }
    }

    #[test]
    fn double_negation_is_identity() {
        let (mut m, a, b, c) = mgr3();
        let f = m.ite(a, b, c);
        let nf = m.not(f);
        let nnf = m.not(nf);
        assert_eq!(f, nnf);
    }

    #[test]
    fn ite_of_equal_branches_collapses() {
        let (mut m, a, b, _c) = mgr3();
        assert_eq!(m.ite(a, b, b), b);
        assert_eq!(m.ite(a, NodeId::ONE, NodeId::ZERO), a);
    }

    #[test]
    fn and_or_many() {
        let (mut m, a, b, c) = mgr3();
        let all = m.and_many(&[a, b, c]);
        let any = m.or_many(&[a, b, c]);
        assert!(m.eval(all, &[true, true, true]));
        assert!(!m.eval(all, &[true, true, false]));
        assert!(m.eval(any, &[false, false, true]));
        assert!(!m.eval(any, &[false, false, false]));
        assert_eq!(m.and_many(&[]), NodeId::ONE);
        assert_eq!(m.or_many(&[]), NodeId::ZERO);
    }

    #[test]
    fn cofactor_shannon_expansion() {
        let (mut m, a, b, c) = mgr3();
        let f = {
            let t = m.and(a, b);
            let e = m.and(c, b);
            m.or(t, e)
        };
        let f1 = m.cofactor(f, Var(0), true);
        let f0 = m.cofactor(f, Var(0), false);
        // Shannon: f = a·f1 + a'·f0
        let rebuilt = m.ite(a, f1, f0);
        assert_eq!(rebuilt, f);
        // cofactor removes the variable from the support
        assert!(!m.support(f1).contains(&Var(0)));
    }

    #[test]
    fn compose_substitutes_function() {
        let (mut m, a, b, c) = mgr3();
        // f = a xor b ; compose b := (a and c)  =>  a xor (a and c)
        let f = m.xor(a, b);
        let g = m.and(a, c);
        let h = m.compose(f, Var(1), g);
        for va in [false, true] {
            for vc in [false, true] {
                let expected = va ^ (va && vc);
                assert_eq!(m.eval(h, &[va, false, vc]), expected);
            }
        }
    }

    #[test]
    fn swap_vars_exchanges_roles() {
        let (mut m, a, b, c) = mgr3();
        // f = a and (not b) and c
        let nb = m.not(b);
        let t = m.and(a, nb);
        let f = m.and(t, c);
        let g = m.swap_vars(f, Var(0), Var(1));
        for va in [false, true] {
            for vb in [false, true] {
                for vc in [false, true] {
                    assert_eq!(m.eval(g, &[va, vb, vc]), m.eval(f, &[vb, va, vc]));
                }
            }
        }
    }

    #[test]
    fn rename_monotone_shift() {
        let mut m = BddManager::new(6);
        let a = m.literal(Var(0), true);
        let b = m.literal(Var(1), true);
        let f = m.and(a, b);
        let map: HashMap<Var, Var> = [(Var(0), Var(2)), (Var(1), Var(4))].into_iter().collect();
        let g = m.rename_vars(f, &map);
        assert_eq!(m.support(g), vec![Var(2), Var(4)]);
        assert!(m.eval(g, &[false, false, true, false, true, false]));
        assert!(!m.eval(g, &[true, true, false, false, true, false]));
    }

    #[test]
    fn rename_partial_map_crossing_unmapped_support() {
        // {x0 -> x4} on x0·x3: the mapped targets are trivially "sorted",
        // but the unmapped support variable x3 interleaves below the
        // target, so the direct rebuild would hand `mk` out-of-order
        // children. Must route through the general path and stay correct.
        let mut m = BddManager::new(5);
        let a = m.literal(Var(0), true);
        let d = m.literal(Var(3), true);
        let f = m.and(a, d);
        let map: HashMap<Var, Var> = [(Var(0), Var(4))].into_iter().collect();
        let g = m.rename_vars(f, &map);
        assert_eq!(m.support(g), vec![Var(3), Var(4)]);
        assert!(m.eval(g, &[false, false, false, true, true]));
        assert!(!m.eval(g, &[true, false, false, true, false]));
    }

    #[test]
    fn rename_swap_via_temporaries() {
        let mut m = BddManager::new(2);
        let a = m.literal(Var(0), true);
        let nb = {
            let b = m.literal(Var(1), true);
            m.not(b)
        };
        let f = m.and(a, nb); // a · b'
        let map: HashMap<Var, Var> = [(Var(0), Var(1)), (Var(1), Var(0))].into_iter().collect();
        let g = m.rename_vars(f, &map); // b · a'
        assert!(m.eval(g, &[false, true]));
        assert!(!m.eval(g, &[true, false]));
    }

    #[test]
    fn size_counts_distinct_nodes() {
        let (mut m, a, b, c) = mgr3();
        assert_eq!(m.size(NodeId::ZERO), 0);
        assert_eq!(m.size(a), 1);
        let f = {
            let t = m.and(a, b);
            m.or(t, c)
        };
        assert!(m.size(f) >= 3);
        let total = m.shared_size(&[f, c]);
        assert_eq!(total, m.size(f), "the literal c is shared inside f");
    }

    #[test]
    fn support_is_sorted_and_minimal() {
        let (mut m, a, _b, c) = mgr3();
        let f = m.or(a, c);
        assert_eq!(m.support(f), vec![Var(0), Var(2)]);
        // b is redundant in (a·b + a·b')
        let b = m.literal(Var(1), true);
        let nb = m.not(b);
        let t1 = m.and(a, b);
        let t2 = m.and(a, nb);
        let g = m.or(t1, t2);
        assert_eq!(m.support(g), vec![Var(0)]);
        assert_eq!(g, a);
    }

    #[test]
    fn add_var_and_names() {
        let mut m = BddManager::new(1);
        assert_eq!(m.var_name(Var(0)), "x0");
        let v = m.add_var("sel");
        assert_eq!(v, Var(1));
        assert_eq!(m.var_name(v), "sel");
        m.set_var_name(Var(0), "data");
        assert_eq!(m.var_name(Var(0)), "data");
        assert_eq!(m.num_vars(), 2);
    }

    #[test]
    fn clear_caches_preserves_results() {
        let (mut m, a, b, _c) = mgr3();
        let f = m.and(a, b);
        m.clear_caches();
        let g = m.and(a, b);
        assert_eq!(f, g, "canonical nodes survive cache clearing");
    }

    #[test]
    fn with_capacity_and_reserve_build_identical_nodes() {
        let mut small = BddManager::new(4);
        let mut big = BddManager::with_capacity(4, 1 << 12);
        big.reserve(1 << 13);
        for vars in [(0u32, 1u32), (1, 2), (2, 3), (0, 3)] {
            let (a, b) = (
                small.literal(Var(vars.0), true),
                small.literal(Var(vars.1), true),
            );
            let f = small.xor(a, b);
            let (a2, b2) = (
                big.literal(Var(vars.0), true),
                big.literal(Var(vars.1), true),
            );
            let g = big.xor(a2, b2);
            assert_eq!(f, g, "capacity hints never change node identity");
        }
        assert!(big.cache_stats().unique_capacity > small.cache_stats().unique_capacity);
    }

    #[test]
    fn cache_stats_count_hits_and_lookups() {
        let (mut m, a, b, _c) = mgr3();
        let before = m.cache_stats();
        let f = m.and(a, b);
        let mid = m.cache_stats();
        assert!(mid.cache_lookups > before.cache_lookups);
        // The identical operation is now a pure cache hit.
        let g = m.and(a, b);
        assert_eq!(f, g);
        let after = m.cache_stats();
        assert_eq!(after.cache_hits, mid.cache_hits + 1);
        assert_eq!(after.cache_inserts, mid.cache_inserts);
        let delta = after.delta_since(&before);
        assert!(delta.cache_hit_rate() > 0.0);
        assert!(after.unique_load_factor() > 0.0);
        assert_eq!(after.num_nodes as usize, m.num_nodes());
    }

    #[test]
    fn tiny_op_cache_still_computes_correctly() {
        let mut m = BddManager::new(4);
        m.resize_op_cache(2);
        let mut reference = BddManager::new(4);
        // A chain of operations that overflows a 2-slot cache constantly.
        let mut f = m.literal(Var(0), true);
        let mut g = reference.literal(Var(0), true);
        for i in 1..4u32 {
            let a = m.literal(Var(i), true);
            f = m.xor(f, a);
            let na = m.not(a);
            f = m.or(f, na);
            let b = reference.literal(Var(i), true);
            g = reference.xor(g, b);
            let nb = reference.not(b);
            g = reference.or(g, nb);
        }
        for bits in 0..16u32 {
            let asg: Vec<bool> = (0..4).map(|k| bits & (1 << k) != 0).collect();
            assert_eq!(m.eval(f, &asg), reference.eval(g, &asg));
        }
        assert!(m.cache_stats().cache_evictions > 0 || m.cache_stats().cache_slots > 2);
    }

    #[test]
    fn restrict_assignment_matches_chained_cofactors() {
        let (mut m, a, b, c) = mgr3();
        let t = m.and(a, b);
        let f = m.or(t, c);
        let assignment = [(Var(0), true), (Var(2), false)];
        let direct = m.restrict_assignment(f, &assignment);
        let mut chained = f;
        for &(v, val) in &assignment {
            chained = m.cofactor(chained, v, val);
        }
        assert_eq!(direct, chained);
        // First occurrence of a duplicated variable wins.
        let dup = m.restrict_assignment(f, &[(Var(0), true), (Var(0), false)]);
        let first = m.cofactor(f, Var(0), true);
        assert_eq!(dup, first);
        assert_eq!(m.restrict_assignment(f, &[]), f);
    }
}
