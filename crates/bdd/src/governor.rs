//! Resource governance: per-session live-node quotas and cooperative
//! deadlines, CUDD-style.
//!
//! A [`ResourceGovernor`] is attached to a session (or raw manager) for the
//! duration of one unit of work. It is consulted by [`BddManager::mk`]'s
//! allocation bookkeeping — a cheap counter check on the hot path — and
//! enforces two limits:
//!
//! * **Live-node quota** — when the live-node count first crosses
//!   `max_live_nodes` the governor *trips*: it arms a pending garbage
//!   collection (swept at the next safe point, [`BddManager::maybe_gc`])
//!   and lets the allocation proceed. Only if a collection has since run
//!   and the live count is *still* over quota does the governor abort —
//!   "GC first, then fail", the policy CUDD applies to its node limit. A
//!   hard ceiling of twice the quota bounds growth inside a single giant
//!   operation that never reaches a safe point.
//! * **Cooperative deadline** — a wall-clock instant checked once every
//!   1024 allocations (so `Instant::now` stays off the hot path).
//!
//! An abort unwinds with a typed [`BddError`] payload via
//! [`std::panic::panic_any`] — the longjmp-style escape CUDD uses, which
//! keeps every kernel operation's signature infallible. The manager is
//! structurally consistent at every abort point: `mk` only aborts *after*
//! a node is fully inserted, and unrooted garbage is reclaimed by the next
//! sweep. Callers that want a `Result` catch the unwind at their boundary
//! with [`catch_resource_abort`]; foreign panics are re-raised untouched.

use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// A structured kernel resource abort.
///
/// Carried as the panic payload of a governor abort and surfaced as the
/// error of [`catch_resource_abort`]; higher layers map it into their own
/// error enums (e.g. `RelationError::ResourceExhausted`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BddError {
    /// The live-node quota was exceeded and a garbage collection could not
    /// bring the count back under it.
    QuotaExceeded {
        /// Live decision nodes at the abort.
        live_nodes: u64,
        /// The configured quota.
        max_live_nodes: u64,
    },
    /// The cooperative wall-clock deadline passed.
    DeadlineExceeded {
        /// Time elapsed since the governor was armed, in milliseconds.
        elapsed_ms: u64,
        /// The configured deadline, in milliseconds.
        deadline_ms: u64,
    },
    /// The session mutex is poisoned: a previous operation panicked while
    /// holding the manager lock. Surfaced only by the *checked* session
    /// entry points (`BddSession::try_with`); the plain handle API keeps
    /// clearing poisoning so drops during unwinding never wedge, and the
    /// engine's quarantine path rebuilds the session anyway.
    Poisoned,
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::QuotaExceeded {
                live_nodes,
                max_live_nodes,
            } => write!(
                f,
                "live-node quota exceeded: {live_nodes} live nodes over quota {max_live_nodes} after GC"
            ),
            BddError::DeadlineExceeded {
                elapsed_ms,
                deadline_ms,
            } => write!(
                f,
                "deadline exceeded: {elapsed_ms} ms elapsed, deadline {deadline_ms} ms"
            ),
            BddError::Poisoned => write!(
                f,
                "session poisoned: a previous operation panicked while holding the manager lock"
            ),
        }
    }
}

impl std::error::Error for BddError {}

/// What the manager should do after a governed allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum GovernorVerdict {
    /// Within limits: proceed.
    Proceed,
    /// Quota tripped for the first time: arm a pending collection and
    /// proceed (the abort decision waits until a sweep has had its chance).
    RequestGc,
    /// Limits exhausted: unwind with this error.
    Abort(BddError),
}

/// Allocation interval between wall-clock checks (power of two, used as a
/// mask). 1024 allocations is well under a millisecond of kernel work, so
/// the deadline resolution stays far finer than any practical deadline.
const DEADLINE_CHECK_MASK: u64 = 1024 - 1;

/// A per-session resource budget: live-node quota and/or wall deadline.
///
/// Built with the `with_*` methods and installed via
/// `BddSession::set_governor` (or `BddManager::set_governor`); cleared with
/// the matching `clear_governor`. A session reset also clears it — a
/// governor budgets one unit of work, not the session's lifetime.
#[derive(Debug, Clone)]
pub struct ResourceGovernor {
    max_live_nodes: Option<u64>,
    deadline: Option<Instant>,
    armed_at: Instant,
    deadline_ms: u64,
    /// Collections counter at the moment the quota tripped; `None` when
    /// under quota.
    trip_collections: Option<u64>,
    /// Governed allocations so far (drives the deadline check mask).
    allocs: u64,
}

impl Default for ResourceGovernor {
    fn default() -> Self {
        Self::new()
    }
}

impl ResourceGovernor {
    /// An unlimited governor (attachable, never aborts).
    pub fn new() -> Self {
        ResourceGovernor {
            max_live_nodes: None,
            deadline: None,
            armed_at: Instant::now(),
            deadline_ms: 0,
            trip_collections: None,
            allocs: 0,
        }
    }

    /// Sets the live-node quota.
    pub fn with_max_live_nodes(mut self, max: u64) -> Self {
        self.max_live_nodes = Some(max);
        self
    }

    /// Sets the deadline to `timeout` from now.
    pub fn with_deadline_in(mut self, timeout: Duration) -> Self {
        self.armed_at = Instant::now();
        self.deadline = Some(self.armed_at + timeout);
        self.deadline_ms = timeout.as_millis() as u64;
        self
    }

    /// Sets the deadline to an absolute instant (shared across the
    /// sessions of one job).
    pub fn with_deadline_at(mut self, deadline: Instant) -> Self {
        self.armed_at = Instant::now();
        self.deadline = Some(deadline);
        self.deadline_ms = deadline
            .saturating_duration_since(self.armed_at)
            .as_millis() as u64;
        self
    }

    /// The configured live-node quota, if any.
    pub fn max_live_nodes(&self) -> Option<u64> {
        self.max_live_nodes
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Whether the quota has tripped and is waiting on a collection.
    pub(crate) fn tripped(&self) -> bool {
        self.trip_collections.is_some()
    }

    /// The per-allocation check. `live` is the manager's current live-node
    /// count, `collections` its cumulative sweep counter.
    pub(crate) fn note_alloc(&mut self, live: u64, collections: u64) -> GovernorVerdict {
        self.allocs += 1;
        if self.allocs & DEADLINE_CHECK_MASK == 0 {
            if let Some(deadline) = self.deadline {
                let now = Instant::now();
                if now >= deadline {
                    return GovernorVerdict::Abort(BddError::DeadlineExceeded {
                        elapsed_ms: now.saturating_duration_since(self.armed_at).as_millis() as u64,
                        deadline_ms: self.deadline_ms,
                    });
                }
            }
        }
        let Some(max) = self.max_live_nodes else {
            return GovernorVerdict::Proceed;
        };
        if live <= max {
            self.trip_collections = None;
            return GovernorVerdict::Proceed;
        }
        // Over quota. Hard ceiling: one operation that never reaches a
        // safe point must not grow unboundedly while the trip waits for
        // its sweep.
        if live > max.saturating_mul(2) {
            return GovernorVerdict::Abort(BddError::QuotaExceeded {
                live_nodes: live,
                max_live_nodes: max,
            });
        }
        match self.trip_collections {
            None => {
                self.trip_collections = Some(collections);
                GovernorVerdict::RequestGc
            }
            // A sweep ran since the trip and we are still over: abort.
            Some(tripped) if collections > tripped => {
                GovernorVerdict::Abort(BddError::QuotaExceeded {
                    live_nodes: live,
                    max_live_nodes: max,
                })
            }
            // The pending sweep has not reached its safe point yet.
            Some(_) => GovernorVerdict::Proceed,
        }
    }
}

/// Runs `f`, converting a governor abort (a [`BddError`] panic payload)
/// into `Err`. Any other panic is resumed untouched — this catches the
/// kernel's cooperative unwind, not bugs.
pub fn catch_resource_abort<R>(f: impl FnOnce() -> R) -> Result<R, BddError> {
    quiet_resource_aborts();
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(value) => Ok(value),
        Err(payload) => match payload.downcast::<BddError>() {
            Ok(error) => Err(*error),
            Err(other) => resume_unwind(other),
        },
    }
}

/// Installs (once per process) a panic hook that suppresses the default
/// "thread panicked" report for governor aborts — they are control flow,
/// not bugs — while delegating every other panic to the previous hook.
pub fn quiet_resource_aborts() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<BddError>().is_none() {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_governor_always_proceeds() {
        let mut gov = ResourceGovernor::new();
        for live in 0..10_000u64 {
            assert_eq!(gov.note_alloc(live, 0), GovernorVerdict::Proceed);
        }
    }

    #[test]
    fn quota_trips_then_aborts_only_after_a_collection() {
        let mut gov = ResourceGovernor::new().with_max_live_nodes(100);
        assert_eq!(gov.note_alloc(100, 0), GovernorVerdict::Proceed);
        // First crossing: request a sweep, do not abort.
        assert_eq!(gov.note_alloc(101, 0), GovernorVerdict::RequestGc);
        // Sweep still pending: proceed.
        assert_eq!(gov.note_alloc(102, 0), GovernorVerdict::Proceed);
        // Sweep ran (collections bumped) and still over: abort.
        assert_eq!(
            gov.note_alloc(103, 1),
            GovernorVerdict::Abort(BddError::QuotaExceeded {
                live_nodes: 103,
                max_live_nodes: 100
            })
        );
    }

    #[test]
    fn a_successful_sweep_clears_the_trip() {
        let mut gov = ResourceGovernor::new().with_max_live_nodes(100);
        assert_eq!(gov.note_alloc(101, 0), GovernorVerdict::RequestGc);
        // The sweep brought us back under quota: the trip resets...
        assert_eq!(gov.note_alloc(50, 1), GovernorVerdict::Proceed);
        // ...so the next crossing trips afresh instead of aborting.
        assert_eq!(gov.note_alloc(101, 1), GovernorVerdict::RequestGc);
    }

    #[test]
    fn hard_ceiling_aborts_without_waiting_for_a_sweep() {
        let mut gov = ResourceGovernor::new().with_max_live_nodes(100);
        assert_eq!(gov.note_alloc(101, 0), GovernorVerdict::RequestGc);
        assert!(matches!(
            gov.note_alloc(201, 0),
            GovernorVerdict::Abort(BddError::QuotaExceeded { .. })
        ));
    }

    #[test]
    fn expired_deadline_aborts_at_the_check_interval() {
        let mut gov = ResourceGovernor::new().with_deadline_in(Duration::ZERO);
        let mut aborted = false;
        for _ in 0..=DEADLINE_CHECK_MASK {
            if let GovernorVerdict::Abort(BddError::DeadlineExceeded { .. }) = gov.note_alloc(1, 0)
            {
                aborted = true;
                break;
            }
        }
        assert!(
            aborted,
            "an expired deadline must abort within one interval"
        );
    }

    #[test]
    fn catch_resource_abort_converts_the_typed_payload() {
        let error = BddError::QuotaExceeded {
            live_nodes: 7,
            max_live_nodes: 3,
        };
        let caught = catch_resource_abort(|| {
            std::panic::panic_any(BddError::QuotaExceeded {
                live_nodes: 7,
                max_live_nodes: 3,
            });
            #[allow(unreachable_code)]
            ()
        });
        assert_eq!(caught, Err(error));
        // A clean closure passes its value through.
        assert_eq!(catch_resource_abort(|| 42), Ok(42));
    }

    #[test]
    fn foreign_panics_are_resumed() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _ = catch_resource_abort(|| panic!("a genuine bug"));
        }));
        assert!(result.is_err(), "non-BddError panics must not be swallowed");
    }

    #[test]
    fn errors_render_their_numbers() {
        let quota = BddError::QuotaExceeded {
            live_nodes: 250,
            max_live_nodes: 100,
        };
        assert!(quota.to_string().contains("250"));
        assert!(quota.to_string().contains("100"));
        let deadline = BddError::DeadlineExceeded {
            elapsed_ms: 12,
            deadline_ms: 10,
        };
        assert!(deadline.to_string().contains("deadline"));
    }
}
