//! Generalized cofactors: `constrain` and `restrict` (Coudert–Madre).
//!
//! Section 7.5 of the paper compares several ISF-minimization strategies.
//! Two of them pick an implementation of the interval `[On, On ∪ Dc]` by
//! applying a generalized cofactor of the onset with respect to the care
//! set: `constrain` (also called the "image restrictor") and `restrict`.
//! Both return a function that agrees with `f` on the care set `c` and tend
//! to have a smaller BDD than `f`; `restrict` additionally skips variables
//! that do not appear in `f`, which avoids gratuitous support growth.

use crate::cache::OpTag;
use crate::manager::{BddManager, NodeId};

impl BddManager {
    /// The `constrain` generalized cofactor `f ↓ c`.
    ///
    /// Requires `c ≠ 0`. The result agrees with `f` on every minterm of `c`,
    /// i.e. `c · (f ↓ c) = c · f`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is the constant-false function (the cofactor is not
    /// defined for an empty care set).
    pub fn constrain(&mut self, f: NodeId, c: NodeId) -> NodeId {
        assert!(!c.is_zero(), "constrain: care set must be non-empty");
        self.constrain_rec(f, c)
    }

    fn constrain_rec(&mut self, f: NodeId, c: NodeId) -> NodeId {
        if c.is_one() || f.is_terminal() {
            return f;
        }
        if f == c {
            return NodeId::ONE;
        }
        if let Some(r) = self.cache.lookup(OpTag::Constrain, f.0, c.0, 0) {
            return r;
        }
        let lf = self.level(f);
        let lc = self.level(c);
        let top = lf.min(lc);
        let v = self.level_var(top);
        let (f0, f1) = if lf == top {
            self.node_children(f)
        } else {
            (f, f)
        };
        let (c0, c1) = if lc == top {
            self.node_children(c)
        } else {
            (c, c)
        };
        let r = if c0.is_zero() {
            self.constrain_rec(f1, c1)
        } else if c1.is_zero() {
            self.constrain_rec(f0, c0)
        } else {
            let lo = self.constrain_rec(f0, c0);
            let hi = self.constrain_rec(f1, c1);
            self.mk(v, lo, hi)
        };
        self.cache.insert(OpTag::Constrain, f.0, c.0, 0, r);
        r
    }

    /// The `restrict` generalized cofactor, a variant of [`BddManager::constrain`]
    /// that existentially quantifies care-set variables not present in `f`,
    /// which keeps the support of the result within the support of `f`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is the constant-false function.
    pub fn restrict(&mut self, f: NodeId, c: NodeId) -> NodeId {
        assert!(!c.is_zero(), "restrict: care set must be non-empty");
        self.restrict_rec(f, c)
    }

    fn restrict_rec(&mut self, f: NodeId, c: NodeId) -> NodeId {
        if c.is_one() || f.is_terminal() {
            return f;
        }
        if f == c {
            return NodeId::ONE;
        }
        if let Some(r) = self.cache.lookup(OpTag::Restrict, f.0, c.0, 0) {
            return r;
        }
        let lf = self.level(f);
        let lc = self.level(c);
        let r = if lc < lf {
            // Top variable of c does not appear in f: abstract it away.
            let vc = self.node_var(c);
            let c_abs = self.exists(c, vc);
            self.restrict_rec(f, c_abs)
        } else {
            let v = self.node_var(f);
            let (f0, f1) = self.node_children(f);
            let (c0, c1) = if lc == lf {
                self.node_children(c)
            } else {
                (c, c)
            };
            if c0.is_zero() {
                self.restrict_rec(f1, c1)
            } else if c1.is_zero() {
                self.restrict_rec(f0, c0)
            } else {
                let lo = self.restrict_rec(f0, c0);
                let hi = self.restrict_rec(f1, c1);
                self.mk(v, lo, hi)
            }
        };
        self.cache.insert(OpTag::Restrict, f.0, c.0, 0, r);
        r
    }

    /// A "safe" BDD minimization in the spirit of the `LICompact`
    /// leaf-identifying compaction (Hong et al., DAC'97): like `restrict`,
    /// but a sibling substitution is only taken when it does not increase
    /// the local node count, which guarantees the result never has more
    /// nodes than `f` on the explored paths. The result implements the
    /// interval `[f·c, f + c']`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is the constant-false function.
    pub fn li_compact(&mut self, f: NodeId, c: NodeId) -> NodeId {
        assert!(!c.is_zero(), "li_compact: care set must be non-empty");
        let r = self.li_compact_rec(f, c);
        // Safety net: keep the smaller of {f, r}; both implement the interval.
        if self.size(r) <= self.size(f) {
            r
        } else {
            f
        }
    }

    fn li_compact_rec(&mut self, f: NodeId, c: NodeId) -> NodeId {
        if c.is_one() || f.is_terminal() {
            return f;
        }
        if let Some(r) = self.cache.lookup(OpTag::LiCompact, f.0, c.0, 0) {
            return r;
        }
        let lf = self.level(f);
        let lc = self.level(c);
        let r = if lc < lf {
            let vc = self.node_var(c);
            let c_abs = self.exists(c, vc);
            self.li_compact_rec(f, c_abs)
        } else {
            let v = self.node_var(f);
            let (f0, f1) = self.node_children(f);
            let (c0, c1) = if lc == lf {
                self.node_children(c)
            } else {
                (c, c)
            };
            if c0.is_zero() {
                let hi = self.li_compact_rec(f1, c1);
                // Sibling substitution is safe only if it does not grow.
                if self.size(hi) <= self.size(f) {
                    hi
                } else {
                    let lo = self.li_compact_rec(f0, NodeId::ONE);
                    self.mk(v, lo, hi)
                }
            } else if c1.is_zero() {
                let lo = self.li_compact_rec(f0, c0);
                if self.size(lo) <= self.size(f) {
                    lo
                } else {
                    let hi = self.li_compact_rec(f1, NodeId::ONE);
                    self.mk(v, lo, hi)
                }
            } else {
                let lo = self.li_compact_rec(f0, c0);
                let hi = self.li_compact_rec(f1, c1);
                self.mk(v, lo, hi)
            }
        };
        self.cache.insert(OpTag::LiCompact, f.0, c.0, 0, r);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::Var;

    /// Checks the defining property of a generalized cofactor:
    /// on the care set the result agrees with `f`.
    fn check_agrees_on_care(m: &mut BddManager, f: NodeId, c: NodeId, g: NodeId, nvars: usize) {
        for bits in 0..(1u32 << nvars) {
            let asg: Vec<bool> = (0..nvars).map(|i| bits & (1 << i) != 0).collect();
            if m.eval(c, &asg) {
                assert_eq!(
                    m.eval(g, &asg),
                    m.eval(f, &asg),
                    "disagrees on care minterm"
                );
            }
        }
    }

    fn setup() -> (BddManager, NodeId, NodeId) {
        let mut m = BddManager::new(4);
        let a = m.literal(Var(0), true);
        let b = m.literal(Var(1), true);
        let c = m.literal(Var(2), true);
        let d = m.literal(Var(3), true);
        let t1 = m.and(a, b);
        let t2 = m.and(c, d);
        let f = m.or(t1, t2);
        let nc = m.not(c);
        let care = m.or(a, nc);
        (m, f, care)
    }

    #[test]
    fn constrain_agrees_on_care_set() {
        let (mut m, f, care) = setup();
        let g = m.constrain(f, care);
        check_agrees_on_care(&mut m, f, care, g, 4);
    }

    #[test]
    fn restrict_agrees_on_care_set_and_limits_support() {
        let (mut m, f, care) = setup();
        let g = m.restrict(f, care);
        check_agrees_on_care(&mut m, f, care, g, 4);
        let sup_f = m.support(f);
        let sup_g = m.support(g);
        assert!(
            sup_g.iter().all(|v| sup_f.contains(v)),
            "restrict must not grow support"
        );
    }

    #[test]
    fn li_compact_agrees_and_never_larger() {
        let (mut m, f, care) = setup();
        let g = m.li_compact(f, care);
        check_agrees_on_care(&mut m, f, care, g, 4);
        assert!(m.size(g) <= m.size(f));
    }

    #[test]
    fn full_care_set_is_identity() {
        let (mut m, f, _care) = setup();
        assert_eq!(m.constrain(f, NodeId::ONE), f);
        assert_eq!(m.restrict(f, NodeId::ONE), f);
        assert_eq!(m.li_compact(f, NodeId::ONE), f);
    }

    #[test]
    #[should_panic]
    fn constrain_rejects_empty_care_set() {
        let (mut m, f, _care) = setup();
        m.constrain(f, NodeId::ZERO);
    }

    #[test]
    #[should_panic]
    fn restrict_rejects_empty_care_set() {
        let (mut m, f, _care) = setup();
        m.restrict(f, NodeId::ZERO);
    }

    #[test]
    fn constrain_reduces_to_one_when_equal() {
        let (mut m, f, _care) = setup();
        assert_eq!(m.constrain(f, f), NodeId::ONE);
        assert_eq!(m.restrict(f, f), NodeId::ONE);
    }
}
