//! # brel-bdd
//!
//! A self-contained reduced ordered binary decision diagram (ROBDD) package.
//!
//! This crate is the foundational substrate of the BREL reproduction: the
//! paper ("A Recursive Paradigm to Solve Boolean Relations", Baneres,
//! Cortadella, Kishinevsky) represents every Boolean relation by its
//! characteristic function stored as a BDD, and implements all of the
//! solver's primitive steps (projection, splitting, cost evaluation and ISF
//! minimization) as BDD operations. The original implementation used CUDD;
//! this crate provides the equivalent operations from scratch:
//!
//! * canonical node storage with a unique table and operation caches,
//! * the `ite` operator and the usual Boolean connectives,
//! * cofactors, functional composition and variable swapping,
//! * existential and universal quantification,
//! * the generalized cofactors `constrain` and `restrict` (Coudert–Madre),
//! * Minato–Morreale irredundant sum-of-products (ISOP) generation,
//! * shortest-path (largest-cube) extraction, minterm counting and
//!   enumeration,
//! * first-order and second-order symmetry checks used by the solver's
//!   symmetry pruning,
//! * a full node lifecycle: refcounted external roots, mark-and-sweep
//!   garbage collection with a free list, arena compaction, and
//!   sifting-based dynamic variable reordering (see [`crate::Bdd`]'s
//!   rooting discipline and [`GcStats`]),
//! * Graphviz export for debugging.
//!
//! ## Sessions and handles
//!
//! The low-level [`BddManager`] owns the node store — including its root
//! table — and exposes operations on raw [`NodeId`]s; the whole manager is
//! `Send` and moves freely between threads. Most users should use the
//! owning, clonable [`BddSession`] together with the [`Bdd`] value type,
//! which supports the standard Boolean operators. Lifecycle tuning
//! (automatic GC, thresholds, dynamic reordering) is set once at session
//! construction through the [`BddConfig`] builder:
//!
//! ```
//! use brel_bdd::BddSession;
//!
//! let mgr = BddSession::new(3);
//! let (a, b, c) = (mgr.var(0), mgr.var(1), mgr.var(2));
//! let f = a.and(&b).or(&a.complement().and(&c));
//! assert!(f.eval(&[true, true, false]));
//! assert!(!f.eval(&[true, false, false]));
//! assert_eq!(f.support(), vec![0.into(), 1.into(), 2.into()]);
//! ```
//!
//! A session can be *reset* ([`BddSession::reset`]) once all of its
//! handles are dropped: the manager rewinds to a cold-start state while
//! keeping its allocations, which is what the engine's warm worker pool
//! uses to reuse one manager across many jobs.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod config;
mod dot;
mod gc;
mod gencof;
mod governor;
mod handle;
mod isop;
mod manager;
mod paths;
mod quant;
mod reorder;
mod symmetry;

pub use cache::CacheStats;
pub use config::BddConfig;
pub use dot::to_dot;
pub use gc::GcStats;
pub use governor::{catch_resource_abort, quiet_resource_aborts, BddError, ResourceGovernor};
pub use handle::{Bdd, BddSession, KernelSnapshot};
pub use isop::{IsopCube, IsopResult};
pub use manager::{BddManager, NodeId, Var};
pub use paths::PathCube;
pub use symmetry::SymmetryKind;

/// The number of variables above which exhaustive truth-table style
/// operations (such as [`Bdd::minterms`]) refuse to run.
pub const EXHAUSTIVE_VAR_LIMIT: usize = 24;
