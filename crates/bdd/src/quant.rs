//! Existential and universal quantification.
//!
//! The BREL solver quantifies output variables in two places: the
//! consistency check of Boolean-equation systems (`∃X 𝔼(X) = 1`, Section 8)
//! and the split-point selection, which abstracts the outputs away from the
//! conflict relation (`C = ∃Y Incomp`, Section 7.4).

use std::collections::{HashMap, HashSet};

use crate::manager::{BddManager, NodeId, Var};

impl BddManager {
    /// Existential quantification of a single variable:
    /// `∃v. f = f|v=0 + f|v=1`.
    pub fn exists(&mut self, f: NodeId, var: Var) -> NodeId {
        let mut memo = HashMap::new();
        self.exists_rec(f, var, &mut memo)
    }

    fn exists_rec(&mut self, f: NodeId, var: Var, memo: &mut HashMap<NodeId, NodeId>) -> NodeId {
        if f.is_terminal() || self.level(f) > var.0 {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let (lo, hi) = self.node_children(f);
        let v = self.node_var(f);
        let r = if v == var {
            self.or(lo, hi)
        } else {
            let lo_q = self.exists_rec(lo, var, memo);
            let hi_q = self.exists_rec(hi, var, memo);
            self.mk(v, lo_q, hi_q)
        };
        memo.insert(f, r);
        r
    }

    /// Universal quantification of a single variable:
    /// `∀v. f = f|v=0 · f|v=1`.
    pub fn forall(&mut self, f: NodeId, var: Var) -> NodeId {
        let nf = self.not(f);
        let e = self.exists(nf, var);
        self.not(e)
    }

    /// Existential quantification of a set of variables.
    pub fn exists_many(&mut self, f: NodeId, vars: &[Var]) -> NodeId {
        let set: HashSet<Var> = vars.iter().copied().collect();
        let mut memo = HashMap::new();
        self.exists_set_rec(f, &set, &mut memo)
    }

    fn exists_set_rec(
        &mut self,
        f: NodeId,
        vars: &HashSet<Var>,
        memo: &mut HashMap<NodeId, NodeId>,
    ) -> NodeId {
        if f.is_terminal() {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let (lo, hi) = self.node_children(f);
        let v = self.node_var(f);
        let lo_q = self.exists_set_rec(lo, vars, memo);
        let hi_q = self.exists_set_rec(hi, vars, memo);
        let r = if vars.contains(&v) {
            self.or(lo_q, hi_q)
        } else {
            self.mk(v, lo_q, hi_q)
        };
        memo.insert(f, r);
        r
    }

    /// Universal quantification of a set of variables.
    pub fn forall_many(&mut self, f: NodeId, vars: &[Var]) -> NodeId {
        let nf = self.not(f);
        let e = self.exists_many(nf, vars);
        self.not(e)
    }

    /// Relational product `∃vars. (f · g)`, the workhorse of image
    /// computations. Implemented as conjunction followed by quantification;
    /// adequate for the problem sizes of this reproduction.
    pub fn and_exists(&mut self, f: NodeId, g: NodeId, vars: &[Var]) -> NodeId {
        let c = self.and(f, g);
        self.exists_many(c, vars)
    }

    /// Returns `true` if `f` is a tautology once the given variables are
    /// existentially quantified — i.e. for every assignment to the remaining
    /// variables there exists an assignment to `vars` satisfying `f`.
    ///
    /// With `vars` covering all of `f`'s support this is the consistency
    /// check of Property 8.2 in the paper.
    pub fn exists_is_tautology(&mut self, f: NodeId, vars: &[Var]) -> bool {
        self.exists_many(f, vars).is_one()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exists_single_variable() {
        let mut m = BddManager::new(3);
        let a = m.literal(Var(0), true);
        let b = m.literal(Var(1), true);
        let f = m.and(a, b);
        // ∃b. a·b = a
        assert_eq!(m.exists(f, Var(1)), a);
        // ∃a. a·b = b
        assert_eq!(m.exists(f, Var(0)), b);
        // quantifying a variable outside the support is a no-op
        assert_eq!(m.exists(f, Var(2)), f);
    }

    #[test]
    fn forall_single_variable() {
        let mut m = BddManager::new(2);
        let a = m.literal(Var(0), true);
        let b = m.literal(Var(1), true);
        let f = m.or(a, b);
        // ∀b. a+b = a
        assert_eq!(m.forall(f, Var(1)), a);
        let g = m.and(a, b);
        // ∀b. a·b = 0
        assert_eq!(m.forall(g, Var(1)), NodeId::ZERO);
    }

    #[test]
    fn exists_many_matches_iterated() {
        let mut m = BddManager::new(4);
        let a = m.literal(Var(0), true);
        let b = m.literal(Var(1), true);
        let c = m.literal(Var(2), true);
        let d = m.literal(Var(3), true);
        let t1 = m.and(a, b);
        let t2 = m.and(c, d);
        let f = m.xor(t1, t2);
        let via_set = m.exists_many(f, &[Var(1), Var(3)]);
        let step1 = m.exists(f, Var(1));
        let via_iter = m.exists(step1, Var(3));
        assert_eq!(via_set, via_iter);
    }

    #[test]
    fn duality_of_quantifiers() {
        let mut m = BddManager::new(3);
        let a = m.literal(Var(0), true);
        let b = m.literal(Var(1), true);
        let c = m.literal(Var(2), true);
        let t = m.and(a, b);
        let f = m.or(t, c);
        let vars = [Var(1), Var(2)];
        let forall = m.forall_many(f, &vars);
        let nf = m.not(f);
        let exists_not = m.exists_many(nf, &vars);
        let dual = m.not(exists_not);
        assert_eq!(forall, dual);
    }

    #[test]
    fn and_exists_equals_conjoin_then_quantify() {
        let mut m = BddManager::new(3);
        let a = m.literal(Var(0), true);
        let b = m.literal(Var(1), true);
        let c = m.literal(Var(2), true);
        let f = m.or(a, b);
        let g = m.iff(b, c);
        let direct = m.and_exists(f, g, &[Var(1)]);
        let conj = m.and(f, g);
        let expect = m.exists_many(conj, &[Var(1)]);
        assert_eq!(direct, expect);
    }

    #[test]
    fn consistency_check_tautology() {
        let mut m = BddManager::new(2);
        // f = (a ⊕ b): for every a there is a b making it true.
        let a = m.literal(Var(0), true);
        let b = m.literal(Var(1), true);
        let f = m.xor(a, b);
        assert!(m.exists_is_tautology(f, &[Var(1)]));
        // g = a·b: for a=0 no b works.
        let g = m.and(a, b);
        assert!(!m.exists_is_tautology(g, &[Var(1)]));
    }
}
