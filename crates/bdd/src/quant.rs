//! Existential and universal quantification.
//!
//! The BREL solver quantifies output variables in two places: the
//! consistency check of Boolean-equation systems (`∃X 𝔼(X) = 1`, Section 8)
//! and the split-point selection, which abstracts the outputs away from the
//! conflict relation (`C = ∃Y Incomp`, Section 7.4).
//!
//! The quantified variable set is represented as a positive cube BDD, the
//! classical CUDD encoding: the recursion walks the function and the cube
//! together, so results are memoized *persistently* in the manager's
//! operation cache under `(f, cube)` keys, and the recursion stops as soon
//! as the cube is exhausted — a function node ordered below the deepest
//! quantified variable is returned as-is instead of being rebuilt.
//! Universal quantification is a direct dual recursion (conjunction at
//! quantified levels) rather than a double negation.

use crate::cache::OpTag;
use crate::manager::{BddManager, NodeId, Var};

impl BddManager {
    /// Builds the positive cube of a variable set (deduplicated, ordered
    /// by current level so the cube chain is canonical).
    pub(crate) fn positive_cube(&mut self, vars: &[Var]) -> NodeId {
        let mut vars: Vec<Var> = vars.to_vec();
        vars.sort_unstable();
        vars.dedup();
        vars.sort_unstable_by_key(|&v| self.var_level(v));
        let pairs: Vec<(Var, bool)> = vars.into_iter().map(|v| (v, true)).collect();
        self.polarity_cube(&pairs)
    }

    /// Existential quantification of a single variable:
    /// `∃v. f = f|v=0 + f|v=1`.
    pub fn exists(&mut self, f: NodeId, var: Var) -> NodeId {
        let cube = self.positive_cube(&[var]);
        self.exists_cube_rec(f, cube)
    }

    /// Universal quantification of a single variable:
    /// `∀v. f = f|v=0 · f|v=1`.
    pub fn forall(&mut self, f: NodeId, var: Var) -> NodeId {
        let cube = self.positive_cube(&[var]);
        self.forall_cube_rec(f, cube)
    }

    /// Existential quantification of a set of variables.
    pub fn exists_many(&mut self, f: NodeId, vars: &[Var]) -> NodeId {
        if vars.is_empty() {
            return f;
        }
        let cube = self.positive_cube(vars);
        self.exists_cube_rec(f, cube)
    }

    /// Universal quantification of a set of variables.
    pub fn forall_many(&mut self, f: NodeId, vars: &[Var]) -> NodeId {
        if vars.is_empty() {
            return f;
        }
        let cube = self.positive_cube(vars);
        self.forall_cube_rec(f, cube)
    }

    fn exists_cube_rec(&mut self, f: NodeId, cube: NodeId) -> NodeId {
        // Strip cube variables ordered above f's top: they cannot appear
        // anywhere in f's DAG, so quantifying them is the identity. The
        // cube collapsing to ONE is what bounds the recursion at the
        // deepest quantified variable.
        let cube = self.advance_cube(cube, self.level(f));
        if cube.is_one() {
            return f;
        }
        if let Some(r) = self.cache.lookup(OpTag::Exists, f.0, cube.0, 0) {
            return r;
        }
        let n = self.nodes[f.index()];
        let r = if self.var_level(n.var) == self.level(cube) {
            let rest = self.nodes[cube.index()].hi;
            let lo = self.exists_cube_rec(n.lo, rest);
            if lo.is_one() {
                // Early termination: the disjunction is already a tautology.
                NodeId::ONE
            } else {
                let hi = self.exists_cube_rec(n.hi, rest);
                self.or(lo, hi)
            }
        } else {
            let lo = self.exists_cube_rec(n.lo, cube);
            let hi = self.exists_cube_rec(n.hi, cube);
            self.mk(n.var, lo, hi)
        };
        self.cache.insert(OpTag::Exists, f.0, cube.0, 0, r);
        r
    }

    fn forall_cube_rec(&mut self, f: NodeId, cube: NodeId) -> NodeId {
        let cube = self.advance_cube(cube, self.level(f));
        if cube.is_one() {
            return f;
        }
        if let Some(r) = self.cache.lookup(OpTag::Forall, f.0, cube.0, 0) {
            return r;
        }
        let n = self.nodes[f.index()];
        let r = if self.var_level(n.var) == self.level(cube) {
            let rest = self.nodes[cube.index()].hi;
            let lo = self.forall_cube_rec(n.lo, rest);
            if lo.is_zero() {
                // Early termination: the conjunction is already empty.
                NodeId::ZERO
            } else {
                let hi = self.forall_cube_rec(n.hi, rest);
                self.and(lo, hi)
            }
        } else {
            let lo = self.forall_cube_rec(n.lo, cube);
            let hi = self.forall_cube_rec(n.hi, cube);
            self.mk(n.var, lo, hi)
        };
        self.cache.insert(OpTag::Forall, f.0, cube.0, 0, r);
        r
    }

    /// Relational product `∃vars. (f · g)`, the workhorse of image
    /// computations. Implemented as conjunction followed by quantification;
    /// adequate for the problem sizes of this reproduction.
    pub fn and_exists(&mut self, f: NodeId, g: NodeId, vars: &[Var]) -> NodeId {
        let c = self.and(f, g);
        self.exists_many(c, vars)
    }

    /// Returns `true` if `f` is a tautology once the given variables are
    /// existentially quantified — i.e. for every assignment to the remaining
    /// variables there exists an assignment to `vars` satisfying `f`.
    ///
    /// With `vars` covering all of `f`'s support this is the consistency
    /// check of Property 8.2 in the paper.
    pub fn exists_is_tautology(&mut self, f: NodeId, vars: &[Var]) -> bool {
        self.exists_many(f, vars).is_one()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exists_single_variable() {
        let mut m = BddManager::new(3);
        let a = m.literal(Var(0), true);
        let b = m.literal(Var(1), true);
        let f = m.and(a, b);
        // ∃b. a·b = a
        assert_eq!(m.exists(f, Var(1)), a);
        // ∃a. a·b = b
        assert_eq!(m.exists(f, Var(0)), b);
        // quantifying a variable outside the support is a no-op
        assert_eq!(m.exists(f, Var(2)), f);
    }

    #[test]
    fn forall_single_variable() {
        let mut m = BddManager::new(2);
        let a = m.literal(Var(0), true);
        let b = m.literal(Var(1), true);
        let f = m.or(a, b);
        // ∀b. a+b = a
        assert_eq!(m.forall(f, Var(1)), a);
        let g = m.and(a, b);
        // ∀b. a·b = 0
        assert_eq!(m.forall(g, Var(1)), NodeId::ZERO);
    }

    #[test]
    fn exists_many_matches_iterated() {
        let mut m = BddManager::new(4);
        let a = m.literal(Var(0), true);
        let b = m.literal(Var(1), true);
        let c = m.literal(Var(2), true);
        let d = m.literal(Var(3), true);
        let t1 = m.and(a, b);
        let t2 = m.and(c, d);
        let f = m.xor(t1, t2);
        let via_set = m.exists_many(f, &[Var(1), Var(3)]);
        let step1 = m.exists(f, Var(1));
        let via_iter = m.exists(step1, Var(3));
        assert_eq!(via_set, via_iter);
    }

    #[test]
    fn exists_many_of_empty_set_and_duplicates() {
        let mut m = BddManager::new(3);
        let a = m.literal(Var(0), true);
        let b = m.literal(Var(1), true);
        let f = m.xor(a, b);
        assert_eq!(m.exists_many(f, &[]), f);
        assert_eq!(m.forall_many(f, &[]), f);
        // Duplicated variables quantify once.
        let dup = m.exists_many(f, &[Var(1), Var(1)]);
        let single = m.exists(f, Var(1));
        assert_eq!(dup, single);
    }

    #[test]
    fn quantifying_only_deep_missing_vars_is_identity() {
        // The depth-bound satellite: when every quantified variable is
        // ordered below the whole function, the result must be `f` itself
        // (same node), not a rebuilt copy.
        let mut m = BddManager::new(6);
        let a = m.literal(Var(0), true);
        let b = m.literal(Var(1), true);
        let f = m.xor(a, b);
        assert_eq!(m.exists_many(f, &[Var(4), Var(5)]), f);
        assert_eq!(m.forall_many(f, &[Var(4), Var(5)]), f);
    }

    #[test]
    fn duality_of_quantifiers() {
        let mut m = BddManager::new(3);
        let a = m.literal(Var(0), true);
        let b = m.literal(Var(1), true);
        let c = m.literal(Var(2), true);
        let t = m.and(a, b);
        let f = m.or(t, c);
        let vars = [Var(1), Var(2)];
        let forall = m.forall_many(f, &vars);
        let nf = m.not(f);
        let exists_not = m.exists_many(nf, &vars);
        let dual = m.not(exists_not);
        assert_eq!(forall, dual);
    }

    #[test]
    fn and_exists_equals_conjoin_then_quantify() {
        let mut m = BddManager::new(3);
        let a = m.literal(Var(0), true);
        let b = m.literal(Var(1), true);
        let c = m.literal(Var(2), true);
        let f = m.or(a, b);
        let g = m.iff(b, c);
        let direct = m.and_exists(f, g, &[Var(1)]);
        let conj = m.and(f, g);
        let expect = m.exists_many(conj, &[Var(1)]);
        assert_eq!(direct, expect);
    }

    #[test]
    fn consistency_check_tautology() {
        let mut m = BddManager::new(2);
        // f = (a ⊕ b): for every a there is a b making it true.
        let a = m.literal(Var(0), true);
        let b = m.literal(Var(1), true);
        let f = m.xor(a, b);
        assert!(m.exists_is_tautology(f, &[Var(1)]));
        // g = a·b: for a=0 no b works.
        let g = m.and(a, b);
        assert!(!m.exists_is_tautology(g, &[Var(1)]));
    }
}
