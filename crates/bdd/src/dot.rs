//! Graphviz export of BDDs, useful for debugging solver traces and for
//! producing the illustrative figures of the paper.

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::manager::{BddManager, NodeId};

/// Renders the DAGs rooted at `roots` in Graphviz `dot` syntax. Each root is
/// labelled with the corresponding entry of `labels` (padded with `f{i}` if
/// too short). Solid edges are `then` edges, dashed edges are `else` edges.
pub fn to_dot(mgr: &BddManager, roots: &[NodeId], labels: &[&str]) -> String {
    let mut out = String::from("digraph bdd {\n  rankdir=TB;\n");
    out.push_str("  node0 [label=\"0\", shape=box];\n");
    out.push_str("  node1 [label=\"1\", shape=box];\n");
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut stack: Vec<NodeId> = Vec::new();
    for (i, &r) in roots.iter().enumerate() {
        let label = labels.get(i).copied().unwrap_or("f");
        let _ = writeln!(out, "  root{i} [label=\"{label}\", shape=plaintext];");
        let _ = writeln!(out, "  root{i} -> node{};", r.index());
        stack.push(r);
    }
    while let Some(id) = stack.pop() {
        if id.is_terminal() || !seen.insert(id) {
            continue;
        }
        let var = mgr.node_var(id);
        let (lo, hi) = mgr.node_children(id);
        let _ = writeln!(
            out,
            "  node{} [label=\"{}\", shape=circle];",
            id.index(),
            mgr.var_name(var)
        );
        let _ = writeln!(
            out,
            "  node{} -> node{} [style=dashed];",
            id.index(),
            lo.index()
        );
        let _ = writeln!(out, "  node{} -> node{};", id.index(), hi.index());
        stack.push(lo);
        stack.push(hi);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::Var;

    #[test]
    fn dot_output_contains_nodes_and_edges() {
        let mut m = BddManager::new(2);
        let a = m.literal(Var(0), true);
        let b = m.literal(Var(1), true);
        let f = m.and(a, b);
        let dot = to_dot(&m, &[f], &["f"]);
        assert!(dot.starts_with("digraph bdd {"));
        assert!(dot.contains("x0"));
        assert!(dot.contains("x1"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_of_constant_only_has_terminals() {
        let m = BddManager::new(1);
        let dot = to_dot(&m, &[NodeId::ONE], &["t"]);
        assert!(dot.contains("root0 -> node1"));
    }
}
