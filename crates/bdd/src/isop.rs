//! Minato–Morreale irredundant sum-of-products (ISOP) generation.
//!
//! Given an incompletely specified function as an interval `[lower, upper]`
//! (in the paper's notation `[On, On ∪ Dc]`), the ISOP algorithm produces a
//! prime and irredundant cover whose function lies within the interval.
//! This is the default ISF minimizer of the BREL solver (Section 7.5) and
//! provides the cube/literal counts reported in Tables 1 and 2.

use std::collections::HashMap;

use crate::manager::{BddManager, NodeId, Var};

/// A cube produced by ISOP generation: a conjunction of literals, stored as
/// `(variable, polarity)` pairs sorted by variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct IsopCube {
    literals: Vec<(Var, bool)>,
}

impl IsopCube {
    /// The empty cube (the constant-true product).
    pub fn tautology() -> Self {
        IsopCube {
            literals: Vec::new(),
        }
    }

    /// Literals of the cube, sorted by variable.
    pub fn literals(&self) -> &[(Var, bool)] {
        &self.literals
    }

    /// Number of literals in the cube.
    pub fn num_literals(&self) -> usize {
        self.literals.len()
    }

    /// Returns a copy of the cube extended with one more literal.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the variable already appears in the cube.
    fn with_literal(&self, var: Var, positive: bool) -> Self {
        debug_assert!(self.literals.iter().all(|&(v, _)| v != var));
        let mut literals = Vec::with_capacity(self.literals.len() + 1);
        literals.push((var, positive));
        literals.extend_from_slice(&self.literals);
        literals.sort();
        IsopCube { literals }
    }

    /// Evaluates the cube under a complete assignment indexed by variable.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.literals
            .iter()
            .all(|&(v, pos)| assignment[v.index()] == pos)
    }

    /// Builds the BDD of the cube.
    pub fn to_bdd(&self, mgr: &mut BddManager) -> NodeId {
        // The literal list is sorted by variable *index*; `mk` needs the
        // chain built bottom-up in *level* order, and the two disagree
        // once dynamic reordering has moved a variable.
        let mut literals = self.literals.clone();
        literals.sort_by_key(|&(v, _)| mgr.var_level(v));
        let mut acc = NodeId::ONE;
        for &(v, pos) in literals.iter().rev() {
            acc = if pos {
                mgr.mk(v, NodeId::ZERO, acc)
            } else {
                mgr.mk(v, acc, NodeId::ZERO)
            };
        }
        acc
    }
}

/// Result of ISOP generation: the cover and the BDD of the function it
/// realizes (which always lies inside the requested interval).
#[derive(Debug, Clone)]
pub struct IsopResult {
    /// The cubes of the cover.
    pub cubes: Vec<IsopCube>,
    /// BDD of the disjunction of the cubes.
    pub function: NodeId,
}

impl IsopResult {
    /// Number of cubes in the cover.
    pub fn num_cubes(&self) -> usize {
        self.cubes.len()
    }

    /// Total number of literals of the cover (the paper's `LIT` metric).
    pub fn num_literals(&self) -> usize {
        self.cubes.iter().map(IsopCube::num_literals).sum()
    }
}

impl BddManager {
    /// Computes a prime irredundant cover for the interval `[lower, upper]`
    /// using the Minato–Morreale algorithm.
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty (`lower ⊄ upper`).
    pub fn isop(&mut self, lower: NodeId, upper: NodeId) -> IsopResult {
        let implication = self.implies(lower, upper);
        assert!(
            implication.is_one(),
            "isop: lower bound must imply the upper bound"
        );
        let mut memo = HashMap::new();
        let (cubes, function) = self.isop_rec(lower, upper, &mut memo);
        IsopResult { cubes, function }
    }

    fn isop_rec(
        &mut self,
        lower: NodeId,
        upper: NodeId,
        memo: &mut HashMap<(NodeId, NodeId), (Vec<IsopCube>, NodeId)>,
    ) -> (Vec<IsopCube>, NodeId) {
        if lower.is_zero() {
            return (Vec::new(), NodeId::ZERO);
        }
        if upper.is_one() {
            return (vec![IsopCube::tautology()], NodeId::ONE);
        }
        if let Some(r) = memo.get(&(lower, upper)) {
            return r.clone();
        }
        let top = self.level(lower).min(self.level(upper));
        let v = self.level_var(top);
        let (l0, l1) = self.cofactors_at(lower, v);
        let (u0, u1) = self.cofactors_at(upper, v);

        // Minterms that can only be covered with the negative literal of v.
        let not_u1 = self.not(u1);
        let lv0 = self.and(l0, not_u1);
        // Minterms that can only be covered with the positive literal of v.
        let not_u0 = self.not(u0);
        let lv1 = self.and(l1, not_u0);

        let (cubes0, f0) = self.isop_rec(lv0, u0, memo);
        let (cubes1, f1) = self.isop_rec(lv1, u1, memo);

        // Remaining onset not yet covered, which may use cubes without v.
        let nf0 = self.not(f0);
        let rest0 = self.and(l0, nf0);
        let nf1 = self.not(f1);
        let rest1 = self.and(l1, nf1);
        let l_rest = self.or(rest0, rest1);
        let u_rest = self.and(u0, u1);
        let (cubes_d, fd) = self.isop_rec(l_rest, u_rest, memo);

        let mut cubes = Vec::with_capacity(cubes0.len() + cubes1.len() + cubes_d.len());
        cubes.extend(cubes0.iter().map(|c| c.with_literal(v, false)));
        cubes.extend(cubes1.iter().map(|c| c.with_literal(v, true)));
        cubes.extend(cubes_d.iter().cloned());

        let branch = self.mk(v, f0, f1);
        let function = self.or(branch, fd);
        let result = (cubes, function);
        memo.insert((lower, upper), result.clone());
        result
    }

    fn cofactors_at(&mut self, f: NodeId, v: Var) -> (NodeId, NodeId) {
        if f.is_terminal() || self.node_var(f) != v {
            (f, f)
        } else {
            self.node_children(f)
        }
    }

    /// Convenience: irredundant cover of a completely specified function.
    pub fn isop_exact(&mut self, f: NodeId) -> IsopResult {
        self.isop(f, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_assignments(n: usize) -> impl Iterator<Item = Vec<bool>> {
        (0..(1u32 << n)).map(move |bits| (0..n).map(|i| bits & (1 << i) != 0).collect())
    }

    fn cover_eval(cubes: &[IsopCube], asg: &[bool]) -> bool {
        cubes.iter().any(|c| c.eval(asg))
    }

    #[test]
    fn isop_exact_covers_the_function() {
        let mut m = BddManager::new(3);
        let a = m.literal(Var(0), true);
        let b = m.literal(Var(1), true);
        let c = m.literal(Var(2), true);
        let t1 = m.and(a, b);
        let na = m.not(a);
        let t2 = m.and(na, c);
        let f = m.or(t1, t2);
        let res = m.isop_exact(f);
        assert_eq!(res.function, f);
        for asg in all_assignments(3) {
            assert_eq!(cover_eval(&res.cubes, &asg), m.eval(f, &asg));
        }
    }

    #[test]
    fn isop_respects_interval() {
        let mut m = BddManager::new(3);
        let a = m.literal(Var(0), true);
        let b = m.literal(Var(1), true);
        let c = m.literal(Var(2), true);
        // onset: a·b·c ; dcset: a·(b ⊕ c)
        let ab = m.and(a, b);
        let on = m.and(ab, c);
        let xorbc = m.xor(b, c);
        let dc = m.and(a, xorbc);
        let up = m.or(on, dc);
        let res = m.isop(on, up);
        // on ⊆ result ⊆ up
        let on_implies = m.implies(on, res.function);
        let result_implies = m.implies(res.function, up);
        assert!(on_implies.is_one());
        assert!(result_implies.is_one());
        // Using don't cares should give a cover at most as large as exact.
        let exact = m.isop_exact(on);
        assert!(res.num_literals() <= exact.num_literals());
    }

    #[test]
    fn isop_of_constants() {
        let mut m = BddManager::new(2);
        let res0 = m.isop_exact(NodeId::ZERO);
        assert!(res0.cubes.is_empty());
        assert!(res0.function.is_zero());
        let res1 = m.isop_exact(NodeId::ONE);
        assert_eq!(res1.cubes.len(), 1);
        assert_eq!(res1.cubes[0].num_literals(), 0);
        assert!(res1.function.is_one());
    }

    #[test]
    fn isop_single_literal() {
        let mut m = BddManager::new(2);
        let a = m.literal(Var(0), true);
        let res = m.isop_exact(a);
        assert_eq!(res.num_cubes(), 1);
        assert_eq!(res.num_literals(), 1);
        assert_eq!(res.cubes[0].literals(), &[(Var(0), true)]);
    }

    #[test]
    fn isop_is_irredundant_on_xor() {
        let mut m = BddManager::new(2);
        let a = m.literal(Var(0), true);
        let b = m.literal(Var(1), true);
        let f = m.xor(a, b);
        let res = m.isop_exact(f);
        // XOR of two variables needs exactly two cubes of two literals.
        assert_eq!(res.num_cubes(), 2);
        assert_eq!(res.num_literals(), 4);
        // Removing any cube must lose coverage (irredundancy).
        for skip in 0..res.cubes.len() {
            let reduced: Vec<IsopCube> = res
                .cubes
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, c)| c.clone())
                .collect();
            let mut missing = false;
            for asg in all_assignments(2) {
                if m.eval(f, &asg) && !cover_eval(&reduced, &asg) {
                    missing = true;
                }
            }
            assert!(missing, "cover is redundant: cube {skip} can be dropped");
        }
    }

    #[test]
    fn cube_to_bdd_round_trip() {
        let mut m = BddManager::new(4);
        let cube = IsopCube::tautology()
            .with_literal(Var(2), false)
            .with_literal(Var(0), true);
        let f = cube.to_bdd(&mut m);
        for asg in all_assignments(4) {
            assert_eq!(m.eval(f, &asg), cube.eval(&asg));
        }
    }

    #[test]
    fn cube_to_bdd_respects_a_reordered_level_permutation() {
        // After swapping levels, the cube's index-sorted literal list no
        // longer matches the level order; to_bdd must still build a valid
        // ordered chain.
        let mut m = BddManager::new(4);
        let cube = IsopCube::tautology()
            .with_literal(Var(2), false)
            .with_literal(Var(0), true);
        m.swap_adjacent_levels(0); // order is now x1 x0 x2 x3
        m.swap_adjacent_levels(1); // order is now x1 x2 x0 x3
        let f = cube.to_bdd(&mut m);
        for asg in all_assignments(4) {
            assert_eq!(m.eval(f, &asg), cube.eval(&asg));
        }
    }

    #[test]
    #[should_panic]
    fn isop_rejects_empty_interval() {
        let mut m = BddManager::new(1);
        let a = m.literal(Var(0), true);
        let na = m.not(a);
        // lower = a does not imply upper = !a
        m.isop(a, na);
    }
}
