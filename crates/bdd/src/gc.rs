//! Node lifecycle: external roots, mark-and-sweep garbage collection and
//! arena compaction.
//!
//! The first two kernel generations were append-only: every node ever
//! created stayed in the arena for the life of the manager. That is fine
//! for one-shot construction but not for the BREL exploration, which
//! derives (and abandons) thousands of intermediate subrelation functions
//! inside one shared manager — arena growth, not op throughput, becomes
//! the bottleneck. This module adds the CUDD-style answer:
//!
//! * **Roots** — every [`crate::Bdd`] handle registers its node in the
//!   manager's [`RootTable`] on creation (and on clone) and releases it on
//!   drop. A root entry is a `(NodeId, refcount)` slot; handles refer to
//!   the *slot*, not the node, so compaction can remap node ids without
//!   invalidating live handles.
//! * **Mark and sweep** — [`BddManager::collect_garbage`] marks everything
//!   reachable from the live roots and moves every other decision node to
//!   a free list that [`BddManager::mk`] reuses. Sweeping flushes the lossy
//!   operation cache (a cached result may point at a reclaimed slot) and
//!   rebuilds the unique table from the survivors, so no stale entry can
//!   resurrect a reclaimed id.
//! * **Compaction** — [`BddManager::compact`] rebuilds the arena densely,
//!   remapping every live node id and patching the root table in place.
//!   Raw [`NodeId`]s held outside the root table are invalidated; `Bdd`
//!   handles survive because they resolve through their root slot.
//!
//! GC is *deferred*: `mk` only flags a pending collection when the live
//! node count crosses the growth threshold, and the sweep itself runs at a
//! safe point ([`BddManager::maybe_gc`], called by the handle layer after
//! each completed operation, once the result is rooted). This is what
//! makes collection safe in a kernel whose recursive operations hold raw
//! node ids in local variables: no sweep can run in the middle of an
//! `ite`.

use crate::config::BddConfig;
use crate::manager::{BddManager, Node, NodeId, Var, VisitedBits, FREE_VAR};

/// Fx-style step used to hash the variable order (same multiplier as the
/// unique table's hash; see `cache.rs`).
#[inline]
fn order_hash_step(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95)
}

/// Counter block of the kernel's memory lifecycle.
///
/// Counters (`collections`, `nodes_reclaimed`, `reorder_passes`) are
/// cumulative and deterministic — a pure function of the operation
/// sequence — so they participate in reproducible report output. Gauges
/// (`live_nodes`, `peak_live_nodes`, `var_order_hash`) describe the
/// current state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcStats {
    /// Mark-and-sweep collections run so far.
    pub collections: u64,
    /// Total decision nodes reclaimed by all sweeps.
    pub nodes_reclaimed: u64,
    /// Decision nodes currently allocated: reachable nodes plus
    /// not-yet-collected garbage, i.e. arena length minus free-listed
    /// slots (terminals included). A sweep lowers this by the reclaimed
    /// count.
    pub live_nodes: u64,
    /// High-water mark of `live_nodes` over the manager's lifetime — the
    /// actual memory bound, which GC exists to keep low.
    pub peak_live_nodes: u64,
    /// Sifting passes run (each pass sifts every populated variable).
    pub reorder_passes: u64,
    /// Order-sensitive hash of the current variable order (level → var);
    /// two managers with the same hash agree on every level.
    pub var_order_hash: u64,
}

impl GcStats {
    /// The counter deltas accumulated since `earlier` (gauges keep their
    /// current values). Used by the engine to attribute lifecycle work to
    /// one backend run on a shared manager.
    pub fn delta_since(&self, earlier: &GcStats) -> GcStats {
        GcStats {
            collections: self.collections.saturating_sub(earlier.collections),
            nodes_reclaimed: self.nodes_reclaimed.saturating_sub(earlier.nodes_reclaimed),
            live_nodes: self.live_nodes,
            peak_live_nodes: self.peak_live_nodes,
            reorder_passes: self.reorder_passes.saturating_sub(earlier.reorder_passes),
            var_order_hash: self.var_order_hash,
        }
    }

    /// The counters as `(name, value)` pairs, for absorption into a
    /// [`brel_obs::MetricsRegistry`].
    pub fn metrics(&self) -> [(&'static str, u64); 6] {
        [
            ("collections", self.collections),
            ("nodes_reclaimed", self.nodes_reclaimed),
            ("live_nodes", self.live_nodes),
            ("peak_live_nodes", self.peak_live_nodes),
            ("reorder_passes", self.reorder_passes),
            ("var_order_hash", self.var_order_hash),
        ]
    }
}

/// A root registration: the current node id and how many handles share it.
#[derive(Debug, Clone, Copy)]
struct RootEntry {
    id: NodeId,
    refs: u32,
}

/// The table of external references. `Bdd` handles hold a *slot* index;
/// the slot holds the (possibly remapped) node id. Slots are recycled
/// through a free list once their refcount drops to zero.
#[derive(Debug)]
pub(crate) struct RootTable {
    entries: Vec<RootEntry>,
    free: Vec<u32>,
    live: usize,
}

impl RootTable {
    pub(crate) fn with_capacity(slots: usize) -> Self {
        RootTable {
            entries: Vec::with_capacity(slots),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Registers a new external reference to `id`, returning its slot.
    pub(crate) fn retain(&mut self, id: NodeId) -> u32 {
        self.live += 1;
        match self.free.pop() {
            Some(slot) => {
                self.entries[slot as usize] = RootEntry { id, refs: 1 };
                slot
            }
            None => {
                let slot = self.entries.len() as u32;
                self.entries.push(RootEntry { id, refs: 1 });
                slot
            }
        }
    }

    /// Adds one more reference to an existing slot (handle clone).
    pub(crate) fn retain_slot(&mut self, slot: u32) {
        self.entries[slot as usize].refs += 1;
    }

    /// Drops one reference; a slot whose refcount reaches zero is recycled.
    pub(crate) fn release(&mut self, slot: u32) {
        let entry = &mut self.entries[slot as usize];
        debug_assert!(entry.refs > 0, "release of a dead root slot");
        entry.refs -= 1;
        if entry.refs == 0 {
            self.live -= 1;
            self.free.push(slot);
        }
    }

    /// The node a slot currently resolves to.
    #[inline]
    pub(crate) fn node_of(&self, slot: u32) -> NodeId {
        self.entries[slot as usize].id
    }

    /// Number of live root slots.
    pub(crate) fn live_roots(&self) -> usize {
        self.live
    }

    /// Calls `f` on every live root id.
    pub(crate) fn for_each_root(&self, mut f: impl FnMut(NodeId)) {
        for entry in &self.entries {
            if entry.refs > 0 {
                f(entry.id);
            }
        }
    }

    /// Rewrites every live root through a compaction remap (old arena
    /// index → new arena index).
    pub(crate) fn remap(&mut self, map: &[u32]) {
        for entry in &mut self.entries {
            if entry.refs > 0 {
                let new = map[entry.id.index()];
                debug_assert!(new != u32::MAX, "live root was not marked");
                entry.id = NodeId(new);
            }
        }
    }

    /// Empties the table (keeping its allocation) so a reset session hands
    /// out slots from a clean state, exactly like a cold table would.
    ///
    /// # Panics
    ///
    /// Panics if any root is still live — resetting under live handles
    /// would dangle them.
    pub(crate) fn reset(&mut self) {
        assert_eq!(self.live, 0, "root table reset with live handles");
        self.entries.clear();
        self.free.clear();
    }
}

/// Internal GC bookkeeping of a [`BddManager`].
#[derive(Debug)]
pub(crate) struct GcState {
    /// Automatic collection on growth (sweeps still only happen at safe
    /// points). Disabled managers collect only on explicit calls.
    pub(crate) auto_gc: bool,
    /// Live-node floor below which automatic GC never triggers.
    pub(crate) min_nodes: usize,
    /// Next live-node count at which `mk` flags a pending collection.
    pub(crate) next_gc_at: usize,
    /// Set by `mk` when the growth threshold is crossed; consumed by the
    /// next safe point.
    pub(crate) pending: bool,
    /// Automatic sifting when the live node count doubles.
    pub(crate) auto_reorder: bool,
    /// Next live-node count at which a safe point runs `reorder_sift`.
    pub(crate) next_reorder_at: usize,
    /// Cumulative counters surfaced through [`GcStats`].
    pub(crate) collections: u64,
    pub(crate) nodes_reclaimed: u64,
    pub(crate) peak_live_nodes: u64,
    pub(crate) reorder_passes: u64,
}

impl GcState {
    /// Default automatic-GC floor: below this many live nodes a sweep is
    /// not worth its arena scan.
    pub(crate) const DEFAULT_MIN_NODES: usize = 8 * 1024;
    /// Default floor for the auto-reorder doubling trigger.
    pub(crate) const REORDER_MIN_NODES: usize = 2 * 1024;

    pub(crate) fn new(config: &BddConfig) -> Self {
        let mut state = GcState {
            auto_gc: config.auto_gc,
            min_nodes: config.gc_min_nodes,
            next_gc_at: config.gc_min_nodes,
            pending: false,
            auto_reorder: config.auto_reorder,
            next_reorder_at: 0,
            collections: 0,
            nodes_reclaimed: 0,
            peak_live_nodes: 0,
            reorder_passes: 0,
        };
        state.next_reorder_at = state.reorder_floor();
        state
    }

    /// Live-node floor of the auto-reorder doubling trigger. Scales down
    /// with an aggressively small GC threshold (the test / CI-smoke
    /// configuration), so forcing a tiny `min_nodes` really does force
    /// sifting passes too.
    pub(crate) fn reorder_floor(&self) -> usize {
        Self::REORDER_MIN_NODES.min(self.min_nodes / 2).max(2)
    }
}

impl BddManager {
    /// Marks every node reachable from the live roots; returns the mark
    /// bitset and the number of marked decision nodes (terminals
    /// excluded).
    pub(crate) fn mark_live(&self) -> (VisitedBits, usize) {
        let mut marks = VisitedBits::new(self.nodes.len());
        let mut stack: Vec<NodeId> = Vec::new();
        self.roots.for_each_root(|id| {
            if !id.is_terminal() {
                stack.push(id);
            }
        });
        let mut count = 0usize;
        while let Some(id) = stack.pop() {
            if id.is_terminal() || !marks.insert(id.index()) {
                continue;
            }
            count += 1;
            let n = &self.nodes[id.index()];
            debug_assert!(n.var.0 != FREE_VAR, "root reaches a freed slot");
            stack.push(n.lo);
            stack.push(n.hi);
        }
        (marks, count)
    }

    /// Number of decision nodes reachable from the live roots.
    pub fn reachable_nodes(&self) -> usize {
        self.mark_live().1
    }

    /// Runs a mark-and-sweep collection *now* and returns the number of
    /// reclaimed decision nodes.
    ///
    /// Every node not reachable from a registered root is moved to the
    /// free list for reuse by [`BddManager::mk`]. The operation cache is
    /// flushed and the unique table rebuilt from the survivors whenever
    /// anything was reclaimed, so no stale cache or table entry can hand
    /// out a reclaimed id. [`crate::Bdd`] handles are unaffected; raw
    /// [`NodeId`]s not reachable from any handle are invalidated.
    pub fn collect_garbage(&mut self) -> usize {
        let _span = brel_obs::span(brel_obs::Category::Kernel, "gc_sweep");
        self.gc.pending = false;
        let (marks, _live) = self.mark_live();
        let mut reclaimed = 0usize;
        for i in 2..self.nodes.len() {
            if marks.contains(i) || self.nodes[i].var.0 == FREE_VAR {
                continue;
            }
            self.nodes[i] = Node {
                var: Var(FREE_VAR),
                lo: NodeId::ZERO,
                hi: NodeId::ZERO,
            };
            self.free.push(i as u32);
            reclaimed += 1;
        }
        if reclaimed > 0 {
            // A cached result (or a unique-table entry) may point at a slot
            // that is now on the free list; both stores are purged so a
            // later hit cannot resurrect a reclaimed id.
            self.cache.clear();
            self.unique.rebuild(&self.nodes);
        }
        self.gc.collections += 1;
        self.gc.nodes_reclaimed += reclaimed as u64;
        let live = self.live_nodes();
        self.gc.next_gc_at = (live * 2).max(self.gc.min_nodes);
        reclaimed
    }

    /// Rebuilds the arena densely: live nodes are renumbered into a gap-free
    /// prefix, the root table is remapped in place, and the free list is
    /// emptied. Returns the number of decision nodes kept.
    ///
    /// `Bdd` handles stay valid (they resolve through the root table); any
    /// raw [`NodeId`] held outside the root table is invalidated, as is the
    /// operation cache. Call this after a teardown phase (for example after
    /// engine rehydration) to hand later operations a dense, cache-friendly
    /// arena.
    pub fn compact(&mut self) -> usize {
        let _span = brel_obs::span(brel_obs::Category::Kernel, "compact");
        self.gc.pending = false;
        let (marks, live) = self.mark_live();
        let mut remap = vec![u32::MAX; self.nodes.len()];
        remap[0] = 0;
        remap[1] = 1;
        let mut next = 2u32;
        for (i, slot) in remap.iter_mut().enumerate().skip(2) {
            if marks.contains(i) {
                *slot = next;
                next += 1;
            }
        }
        let mut new_nodes: Vec<Node> = Vec::with_capacity(live + 2);
        new_nodes.push(self.nodes[0]);
        new_nodes.push(self.nodes[1]);
        for i in 2..self.nodes.len() {
            if marks.contains(i) {
                let n = self.nodes[i];
                new_nodes.push(Node {
                    var: n.var,
                    lo: NodeId(remap[n.lo.index()]),
                    hi: NodeId(remap[n.hi.index()]),
                });
            }
        }
        let dropped = self.nodes.len() - new_nodes.len();
        self.nodes = new_nodes;
        self.free.clear();
        self.cache.clear();
        self.unique.rebuild(&self.nodes);
        self.roots.remap(&remap);
        self.gc.collections += 1;
        self.gc.nodes_reclaimed += dropped as u64;
        self.gc.next_gc_at = (live * 2).max(self.gc.min_nodes);
        live
    }

    /// The safe point of the deferred lifecycle machinery: runs a pending
    /// collection, and (when auto-reorder is on) a sifting pass once the
    /// live node count has doubled since the last one. Called by the
    /// handle layer after every completed operation, once the result is
    /// rooted; raw-manager users can call it between operations whenever
    /// no unrooted intermediate id is live.
    ///
    /// `set_auto_gc(false)` disables *both* automatic behaviours here —
    /// auto-reordering sweeps as part of its pass, so letting it run on a
    /// pinned append-only manager would break the "collect only on
    /// explicit calls" contract that raw-`NodeId` holders rely on.
    pub fn maybe_gc(&mut self) {
        if !self.gc.auto_gc {
            // A governor quota trip still gets its sweep: the quota
            // contract is "GC first, then abort", independent of the
            // session's auto-GC tuning.
            if self.gc.pending && self.governor.as_ref().is_some_and(|g| g.tripped()) {
                self.collect_garbage();
            }
            return;
        }
        if self.gc.auto_reorder && self.live_nodes() >= self.gc.next_reorder_at {
            self.reorder_sift();
        } else if self.gc.pending {
            self.collect_garbage();
        }
    }

    /// Decision nodes currently allocated (arena length minus free slots,
    /// terminals included) — the quantity the GC triggers are tuned on.
    #[inline]
    pub fn live_nodes(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Number of live external root slots.
    pub fn live_roots(&self) -> usize {
        self.roots.live_roots()
    }

    /// The lifecycle configuration currently in force (as set at
    /// construction or by the last [`BddManager::reset`]).
    pub fn config(&self) -> BddConfig {
        BddConfig {
            auto_gc: self.gc.auto_gc,
            gc_min_nodes: self.gc.min_nodes,
            auto_reorder: self.gc.auto_reorder,
        }
    }

    /// Re-bases the `peak_live_nodes` gauge to the current live count, so
    /// the next reading reflects the high-water mark of one phase (the
    /// BREL solver re-bases at solve entry to report a per-solve peak
    /// instead of the manager-lifetime one).
    pub fn reset_peak_live_nodes(&mut self) {
        self.gc.peak_live_nodes = self.live_nodes() as u64;
    }

    /// The lifecycle counter block; see [`GcStats`].
    pub fn gc_stats(&self) -> GcStats {
        GcStats {
            collections: self.gc.collections,
            nodes_reclaimed: self.gc.nodes_reclaimed,
            live_nodes: self.live_nodes() as u64,
            peak_live_nodes: self.gc.peak_live_nodes,
            reorder_passes: self.gc.reorder_passes,
            var_order_hash: self.var_order_hash(),
        }
    }

    /// Order-sensitive hash of the current level → variable order.
    pub fn var_order_hash(&self) -> u64 {
        let mut h = order_hash_step(0, self.level2var.len() as u64);
        for v in &self.level2var {
            h = order_hash_step(h, v.0 as u64);
        }
        h ^ (h >> 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_table_recycles_slots() {
        let mut t = RootTable::with_capacity(4);
        let a = t.retain(NodeId(5));
        let b = t.retain(NodeId(6));
        assert_ne!(a, b);
        assert_eq!(t.node_of(a), NodeId(5));
        t.retain_slot(a);
        t.release(a);
        assert_eq!(t.live_roots(), 2, "slot a still has one reference");
        t.release(a);
        assert_eq!(t.live_roots(), 1);
        let c = t.retain(NodeId(9));
        assert_eq!(c, a, "dead slot is recycled");
        assert_eq!(t.node_of(c), NodeId(9));
    }

    #[test]
    fn stats_delta_subtracts_counters_and_keeps_gauges() {
        let earlier = GcStats {
            collections: 2,
            nodes_reclaimed: 100,
            ..GcStats::default()
        };
        let now = GcStats {
            collections: 5,
            nodes_reclaimed: 250,
            live_nodes: 40,
            peak_live_nodes: 90,
            reorder_passes: 1,
            var_order_hash: 7,
        };
        let delta = now.delta_since(&earlier);
        assert_eq!(delta.collections, 3);
        assert_eq!(delta.nodes_reclaimed, 150);
        assert_eq!(delta.reorder_passes, 1);
        assert_eq!(delta.live_nodes, 40);
        assert_eq!(delta.peak_live_nodes, 90);
        assert_eq!(delta.var_order_hash, 7);
    }
}
