//! Path and minterm utilities: shortest-path cube extraction, satisfying
//! assignment counting and enumeration.
//!
//! The BREL split strategy (Section 7.4) existentially abstracts the output
//! variables from the conflict relation and then extracts the *shortest
//! path* to the 1-terminal of the resulting BDD: the path with the fewest
//! literals corresponds to the largest cube of adjacent conflicting input
//! vertices.

use std::collections::HashMap;

use crate::manager::{BddManager, NodeId, Var};
use crate::EXHAUSTIVE_VAR_LIMIT;

/// A cube described by a partial assignment `(variable, value)`; variables
/// not mentioned are unconstrained ("don't care" positions of the cube).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PathCube {
    assignments: Vec<(Var, bool)>,
}

impl PathCube {
    /// Creates a cube from `(variable, value)` pairs.
    pub fn new(mut assignments: Vec<(Var, bool)>) -> Self {
        assignments.sort();
        PathCube { assignments }
    }

    /// The `(variable, value)` pairs of the cube, sorted by variable.
    pub fn assignments(&self) -> &[(Var, bool)] {
        &self.assignments
    }

    /// Number of fixed literals.
    pub fn num_literals(&self) -> usize {
        self.assignments.len()
    }

    /// Value assigned to `var`, if any.
    pub fn value_of(&self, var: Var) -> Option<bool> {
        self.assignments
            .iter()
            .find(|&&(v, _)| v == var)
            .map(|&(_, b)| b)
    }

    /// Completes the cube into a full minterm over `num_vars` variables,
    /// assigning `default` to free positions.
    pub fn to_minterm(&self, num_vars: usize, default: bool) -> Vec<bool> {
        let mut asg = vec![default; num_vars];
        for &(v, b) in &self.assignments {
            asg[v.index()] = b;
        }
        asg
    }

    /// Completes the cube into a full minterm assigning **1** to the free
    /// positions, as prescribed by the paper's split-vertex selection
    /// ("the input vertex x is obtained from the incompatible input cube by
    /// assigning the value 1 to the variables with a don't care value").
    pub fn to_minterm_ones(&self, num_vars: usize) -> Vec<bool> {
        self.to_minterm(num_vars, true)
    }
}

impl BddManager {
    /// Returns the cube with the fewest literals among all paths from `f`
    /// to the 1-terminal, or `None` if `f` is unsatisfiable.
    ///
    /// Skipped levels contribute no literals, so the returned cube is the
    /// *largest* cube contained in `f` in terms of the number of covered
    /// minterms along a single root-to-terminal path.
    pub fn shortest_path(&self, f: NodeId) -> Option<PathCube> {
        if f.is_zero() {
            return None;
        }
        if f.is_one() {
            return Some(PathCube::default());
        }
        // cost[node] = minimal number of literals to reach ONE from node.
        let mut cost: HashMap<NodeId, usize> = HashMap::new();
        self.sp_cost(f, &mut cost);
        if cost.get(&f).copied().unwrap_or(usize::MAX) == usize::MAX {
            return None;
        }
        // Reconstruct the path greedily.
        let lookup = |cost: &HashMap<NodeId, usize>, id: NodeId| -> usize {
            if id.is_one() {
                0
            } else if id.is_zero() {
                usize::MAX
            } else {
                cost.get(&id).copied().unwrap_or(usize::MAX)
            }
        };
        let mut lits = Vec::new();
        let mut id = f;
        while !id.is_terminal() {
            let v = self.node_var(id);
            let (lo, hi) = self.node_children(id);
            let lo_cost = lookup(&cost, lo);
            let hi_cost = lookup(&cost, hi);
            if lo_cost <= hi_cost {
                lits.push((v, false));
                id = lo;
            } else {
                lits.push((v, true));
                id = hi;
            }
        }
        Some(PathCube::new(lits))
    }

    fn sp_cost(&self, f: NodeId, cost: &mut HashMap<NodeId, usize>) -> usize {
        if f.is_one() {
            return 0;
        }
        if f.is_zero() {
            return usize::MAX;
        }
        if let Some(&c) = cost.get(&f) {
            return c;
        }
        let (lo, hi) = self.node_children(f);
        let lo_cost = self.sp_cost(lo, cost);
        let hi_cost = self.sp_cost(hi, cost);
        let c = match (lo_cost, hi_cost) {
            (usize::MAX, usize::MAX) => usize::MAX,
            (usize::MAX, h) => h.saturating_add(1),
            (l, usize::MAX) => l.saturating_add(1),
            (l, h) => l.min(h).saturating_add(1),
        };
        cost.insert(f, c);
        c
    }

    /// Returns one satisfying partial assignment of `f` (a cube), or `None`
    /// if `f` is unsatisfiable. Unlike [`BddManager::shortest_path`] this
    /// simply walks preferring satisfiable branches.
    pub fn pick_cube(&self, f: NodeId) -> Option<PathCube> {
        if f.is_zero() {
            return None;
        }
        let mut lits = Vec::new();
        let mut id = f;
        while !id.is_terminal() {
            let v = self.node_var(id);
            let (lo, hi) = self.node_children(id);
            if lo.is_zero() {
                lits.push((v, true));
                id = hi;
            } else {
                lits.push((v, false));
                id = lo;
            }
        }
        Some(PathCube::new(lits))
    }

    /// Number of satisfying assignments of `f` over the variables
    /// `x0..x{num_vars-1}` (by index, independent of the current level
    /// order — dynamic reordering never changes the count).
    ///
    /// # Panics
    ///
    /// Panics if any variable in the support of `f` has index `≥ num_vars`.
    pub fn sat_count(&self, f: NodeId, num_vars: usize) -> u128 {
        // rank[l] = number of counted variables (index < num_vars) living
        // at levels strictly above level l. Skipped-level weighting must go
        // through this table rather than raw level differences: under a
        // reordered permutation the levels between a node and its child
        // may host variables outside the counted range.
        let n_levels = self.num_vars();
        let mut rank = vec![0u32; n_levels + 1];
        for l in 0..n_levels {
            rank[l + 1] = rank[l] + u32::from(self.level_var(l as u32).index() < num_vars);
        }
        // Terminals sit below every level; variables with index < num_vars
        // that the manager does not even have are free as well.
        let terminal_rank = num_vars as u32;
        let rank_of = |id: NodeId| -> u32 {
            if id.is_terminal() {
                terminal_rank
            } else {
                rank[self.level(id) as usize]
            }
        };
        let mut memo: HashMap<NodeId, u128> = HashMap::new();
        let below = self.sat_count_rec(f, num_vars, &rank_of, &mut memo);
        below << rank_of(f)
    }

    /// Counts satisfying assignments of the counted variables at or below
    /// `f`'s own level (internal helper; see `sat_count`).
    fn sat_count_rec(
        &self,
        f: NodeId,
        num_vars: usize,
        rank_of: &impl Fn(NodeId) -> u32,
        memo: &mut HashMap<NodeId, u128>,
    ) -> u128 {
        if f.is_zero() {
            return 0;
        }
        if f.is_one() {
            return 1;
        }
        if let Some(&c) = memo.get(&f) {
            return c;
        }
        let v = self.node_var(f);
        assert!(
            v.index() < num_vars,
            "sat_count: variable {v:?} out of range for {num_vars} variables"
        );
        let (lo, hi) = self.node_children(f);
        let here = rank_of(f);
        let lo_count = self.sat_count_rec(lo, num_vars, rank_of, memo) << (rank_of(lo) - here - 1);
        let hi_count = self.sat_count_rec(hi, num_vars, rank_of, memo) << (rank_of(hi) - here - 1);
        let c = lo_count + hi_count;
        memo.insert(f, c);
        c
    }

    /// Enumerates all satisfying minterms of `f` over `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars` exceeds [`EXHAUSTIVE_VAR_LIMIT`].
    pub fn minterms(&self, f: NodeId, num_vars: usize) -> Vec<Vec<bool>> {
        assert!(
            num_vars <= EXHAUSTIVE_VAR_LIMIT,
            "minterm enumeration limited to {EXHAUSTIVE_VAR_LIMIT} variables"
        );
        let mut out = Vec::new();
        for bits in 0..(1u64 << num_vars) {
            let asg: Vec<bool> = (0..num_vars).map(|i| bits & (1 << i) != 0).collect();
            if self.eval(f, &asg) {
                out.push(asg);
            }
        }
        out
    }

    /// Returns `true` if `f` and `g` denote the same function (identity of
    /// canonical nodes).
    pub fn equivalent(&self, f: NodeId, g: NodeId) -> bool {
        f == g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shortest_path_prefers_fewer_literals() {
        let mut m = BddManager::new(3);
        let a = m.literal(Var(0), true);
        let b = m.literal(Var(1), true);
        let c = m.literal(Var(2), true);
        // f = a·b·c + !a  : the shortest path is the single literal !a.
        let abc = m.and_many(&[a, b, c]);
        let na = m.not(a);
        let f = m.or(abc, na);
        let sp = m.shortest_path(f).expect("satisfiable");
        assert_eq!(sp.num_literals(), 1);
        assert_eq!(sp.assignments(), &[(Var(0), false)]);
    }

    #[test]
    fn shortest_path_of_constants() {
        let m = BddManager::new(2);
        assert!(m.shortest_path(NodeId::ZERO).is_none());
        let one = m.shortest_path(NodeId::ONE).expect("tautology");
        assert_eq!(one.num_literals(), 0);
    }

    #[test]
    fn shortest_path_cube_is_contained_in_f() {
        let mut m = BddManager::new(4);
        let a = m.literal(Var(0), true);
        let b = m.literal(Var(1), true);
        let c = m.literal(Var(2), true);
        let d = m.literal(Var(3), true);
        let t1 = m.and(a, b);
        let t2 = m.and(c, d);
        let f = m.xor(t1, t2);
        let sp = m.shortest_path(f).expect("satisfiable");
        // Every completion of the cube must satisfy f.
        let fixed: Vec<(usize, bool)> = sp
            .assignments()
            .iter()
            .map(|&(v, b)| (v.index(), b))
            .collect();
        for bits in 0..16u32 {
            let mut asg: Vec<bool> = (0..4).map(|i| bits & (1 << i) != 0).collect();
            for &(i, b) in &fixed {
                asg[i] = b;
            }
            assert!(m.eval(f, &asg));
        }
    }

    #[test]
    fn pick_cube_satisfies() {
        let mut m = BddManager::new(3);
        let a = m.literal(Var(0), true);
        let b = m.literal(Var(1), true);
        let f = m.and(a, b);
        let cube = m.pick_cube(f).expect("satisfiable");
        let minterm = cube.to_minterm(3, false);
        assert!(m.eval(f, &minterm));
        assert!(m.pick_cube(NodeId::ZERO).is_none());
    }

    #[test]
    fn sat_count_matches_enumeration() {
        let mut m = BddManager::new(4);
        let a = m.literal(Var(0), true);
        let b = m.literal(Var(1), true);
        let c = m.literal(Var(2), true);
        let d = m.literal(Var(3), true);
        let t1 = m.and(a, b);
        let t2 = m.xor(c, d);
        let f = m.or(t1, t2);
        let count = m.sat_count(f, 4);
        let enumerated = m.minterms(f, 4).len() as u128;
        assert_eq!(count, enumerated);
        assert_eq!(m.sat_count(NodeId::ONE, 4), 16);
        assert_eq!(m.sat_count(NodeId::ZERO, 4), 0);
    }

    #[test]
    fn sat_count_single_variable() {
        let mut m = BddManager::new(3);
        let b = m.literal(Var(1), true);
        assert_eq!(m.sat_count(b, 3), 4);
    }

    #[test]
    fn minterm_completion_with_ones() {
        let cube = PathCube::new(vec![(Var(1), false)]);
        assert_eq!(cube.to_minterm_ones(3), vec![true, false, true]);
        assert_eq!(cube.value_of(Var(1)), Some(false));
        assert_eq!(cube.value_of(Var(0)), None);
    }
}
