//! The redesigned handle layer: an owning, `Send` session and slot-indexed
//! function handles.
//!
//! [`BddSession`] owns a [`BddManager`] behind `Arc<Mutex<..>>`; [`Bdd`]
//! pairs a *root-table slot index* with its session so Boolean functions
//! can be passed around as ordinary values. All the operations of the raw
//! manager are mirrored here; the higher-level crates (`brel-relation`,
//! `brel-core`, `brel-network`) exclusively use these handles.
//!
//! Both types are `Send`: a session (and every handle derived from it) can
//! move to another thread, which is what lets the engine's worker pool
//! keep *warm* per-worker managers alive across jobs instead of
//! rehydrating into cold ones. The lock is not a concurrency strategy —
//! the solvers drive one session from one thread at a time — it is the
//! memory-safety fence that makes the move legal. Lock poisoning is
//! deliberately ignored by the handle API (a panicking operation, e.g.
//! `constrain` on an empty care set, must not wedge every subsequent
//! handle drop); direct session users that want poisoning *surfaced*
//! instead use [`BddSession::try_with`] / [`BddSession::is_poisoned`].
//!
//! The handles are also the kernel's *rooting discipline*: every `Bdd`
//! registers an external reference in the manager's root table when it is
//! created (and when it is cloned) and releases it when dropped, so the
//! garbage collector knows exactly which functions are externally alive.
//! A `Bdd` stores a root-table *slot*, not a raw [`NodeId`]; it resolves
//! the current id on use, which keeps handles valid across
//! [`BddSession::compact`] (which renumbers nodes). Every operation that
//! returns a `Bdd` passes a GC safe point after the result is rooted — the
//! only moments automatic collection or reordering actually run.
//!
//! Because the manager sits behind one non-reentrant lock, every mirrored
//! operation resolves its operand node ids *before* taking the lock; the
//! ids stay valid in between because the operand handles themselves keep
//! them rooted (only an explicit `compact` on another thread could remap
//! them, and sessions are not driven concurrently).

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{BitAnd, BitOr, BitXor, Not};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::cache::CacheStats;
use crate::config::BddConfig;
use crate::gc::GcStats;
use crate::governor::{BddError, ResourceGovernor};
use crate::isop::IsopResult;
use crate::manager::{BddManager, NodeId, Var};
use crate::paths::PathCube;
use crate::symmetry::SymmetryKind;

/// One coherent snapshot of every kernel counter, taken under a single
/// lock acquisition by [`BddSession::stats_snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelSnapshot {
    /// Cache and unique-table counters.
    pub cache: CacheStats,
    /// Lifecycle (GC/reorder) counters.
    pub gc: GcStats,
}

/// An owning, clonable, `Send` handle to a [`BddManager`].
///
/// Cloning the session does not copy the node store; all clones refer to
/// the same manager. Lifecycle tuning (automatic GC, thresholds, dynamic
/// reordering) is fixed at construction through [`BddConfig`] — the former
/// `BddMgr` knob setters are gone — and can only change wholesale through
/// [`BddSession::reset`].
#[derive(Clone)]
pub struct BddSession {
    core: Arc<Mutex<BddManager>>,
}

impl fmt::Debug for BddSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.lock();
        write!(
            f,
            "BddSession(vars={}, nodes={})",
            m.num_vars(),
            m.num_nodes()
        )
    }
}

impl BddSession {
    /// Creates a session with `num_vars` variables named `x0..`, tuned by
    /// [`BddConfig::from_env`].
    pub fn new(num_vars: usize) -> Self {
        Self::from_manager(BddManager::new(num_vars))
    }

    /// Creates a session pre-sized for roughly `expected_nodes` decision
    /// nodes, so bulk construction (e.g. worker-pool rehydration) proceeds
    /// without unique-table rehashes. Tuned by [`BddConfig::from_env`].
    pub fn with_capacity(num_vars: usize, expected_nodes: usize) -> Self {
        Self::from_manager(BddManager::with_capacity(num_vars, expected_nodes))
    }

    /// Creates a session with an explicit lifecycle configuration.
    pub fn with_config(num_vars: usize, expected_nodes: usize, config: BddConfig) -> Self {
        Self::from_manager(BddManager::with_config(num_vars, expected_nodes, config))
    }

    /// Wraps an already-built raw manager in a session.
    pub fn from_manager(manager: BddManager) -> Self {
        BddSession {
            core: Arc::new(Mutex::new(manager)),
        }
    }

    /// Locks the manager, ignoring poisoning: the manager's invariants are
    /// maintained eagerly (no operation leaves it half-updated at a panic
    /// point), and handle drops during unwinding must still be able to
    /// release their root slots.
    pub(crate) fn lock(&self) -> MutexGuard<'_, BddManager> {
        self.core.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Whether a previous operation panicked while holding the manager
    /// lock. The plain handle API deliberately keeps working on a poisoned
    /// session (see [`BddSession::with`]); callers that want a panicked
    /// session *surfaced* rather than silently cleared — e.g. long-running
    /// services deciding whether to quarantine — check this flag or use
    /// [`BddSession::try_with`].
    pub fn is_poisoned(&self) -> bool {
        self.core.is_poisoned()
    }

    /// Rewinds the session to the state a cold
    /// `BddSession::with_config(num_vars, expected_nodes, config)` would
    /// start in, while keeping the manager's allocations warm (arena,
    /// unique-table and op-cache slabs are reused). Returns `false` —
    /// changing nothing — if any `Bdd` handle of this session is still
    /// alive. See [`BddManager::reset`] for the exact guarantees.
    pub fn reset(&self, num_vars: usize, expected_nodes: usize, config: BddConfig) -> bool {
        self.lock().reset(num_vars, expected_nodes, config)
    }

    /// The lifecycle configuration currently in force.
    pub fn config(&self) -> BddConfig {
        self.lock().config()
    }

    /// Pre-grows the node arena and unique table for `additional` nodes.
    pub fn reserve(&self, additional: usize) {
        self.lock().reserve(additional);
    }

    /// The kernel's cumulative cache/unique-table counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.lock().cache_stats()
    }

    /// The kernel's lifecycle counters (collections, reclaimed nodes, peak
    /// live nodes, reorder passes, variable-order hash).
    pub fn gc_stats(&self) -> GcStats {
        self.lock().gc_stats()
    }

    /// Every kernel counter in one lock acquisition — equivalent to
    /// calling [`BddSession::cache_stats`] and [`BddSession::gc_stats`]
    /// back to back, but atomically and at half the locking cost. The
    /// engine's per-backend delta computation uses this.
    pub fn stats_snapshot(&self) -> KernelSnapshot {
        let m = self.lock();
        KernelSnapshot {
            cache: m.cache_stats(),
            gc: m.gc_stats(),
        }
    }

    /// Installs a [`ResourceGovernor`] on the underlying manager: every
    /// subsequent node allocation is checked against its live-node quota
    /// and deadline, and a blown budget unwinds with a typed
    /// [`crate::BddError`] payload (catch it at the work boundary with
    /// [`crate::catch_resource_abort`]). Replaces any previous governor;
    /// cleared by [`BddSession::clear_governor`] and by a session reset.
    pub fn set_governor(&self, governor: ResourceGovernor) {
        self.lock().set_governor(governor);
    }

    /// Removes the session's resource governor, returning it if installed.
    pub fn clear_governor(&self) -> Option<ResourceGovernor> {
        self.lock().clear_governor()
    }

    /// Runs a mark-and-sweep collection now; returns reclaimed node count.
    pub fn collect_garbage(&self) -> usize {
        self.lock().collect_garbage()
    }

    /// Compacts the arena (dense renumbering); `Bdd` handles stay valid,
    /// raw [`NodeId`]s held outside handles do not. Returns the live node
    /// count.
    pub fn compact(&self) -> usize {
        self.lock().compact()
    }

    /// Runs one sifting pass of dynamic variable reordering and a final
    /// sweep; returns the live node count afterwards.
    pub fn reorder_sift(&self) -> usize {
        self.lock().reorder_sift()
    }

    /// Re-bases the `peak_live_nodes` gauge to the current live count.
    pub fn reset_peak_live_nodes(&self) {
        self.lock().reset_peak_live_nodes();
    }

    /// Decision nodes currently allocated (arena minus free list).
    pub fn live_nodes(&self) -> usize {
        self.lock().live_nodes()
    }

    /// Live external root slots (one per distinct `Bdd` lineage).
    pub fn live_roots(&self) -> usize {
        self.lock().live_roots()
    }

    /// The current variable order, top level first.
    pub fn var_order(&self) -> Vec<Var> {
        self.lock().var_order()
    }

    /// Returns `true` if two handles refer to the same underlying manager.
    pub fn same_manager(&self, other: &BddSession) -> bool {
        Arc::ptr_eq(&self.core, &other.core)
    }

    fn wrap(&self, id: NodeId) -> Bdd {
        let slot = {
            let mut m = self.lock();
            let slot = m.roots.retain(id);
            // The GC safe point: the result is rooted, no raw intermediate
            // id is live, so a pending sweep (or auto-reorder) may run.
            m.maybe_gc();
            slot
        };
        Bdd {
            session: self.clone(),
            slot,
        }
    }

    /// Runs a closure with mutable access to the raw manager.
    ///
    /// The closure runs with the session lock held, and the lock is not
    /// reentrant: calling *any* handle or session method inside it — even
    /// [`Bdd::node_id`], or dropping a `Bdd` — deadlocks. Resolve operand
    /// ids with [`Bdd::node_id`] *before* calling `with`, work on raw
    /// [`NodeId`]s inside, and re-wrap results with [`Bdd::from_node_id`]
    /// afterwards.
    pub fn with<R>(&self, f: impl FnOnce(&mut BddManager) -> R) -> R {
        f(&mut self.lock())
    }

    /// The checked variant of [`BddSession::with`]: refuses to run on a
    /// poisoned session instead of silently clearing the poison flag.
    ///
    /// [`BddSession::with`] (and the whole handle API) intentionally
    /// ignores poisoning so handle drops during unwinding never wedge and
    /// the engine's quarantine path can still inspect a faulted manager.
    /// Direct session users outside that path get no such safety net: a
    /// panic mid-operation may have left *application-level* state (not
    /// the manager's own invariants) inconsistent. `try_with` surfaces
    /// that as [`BddError::Poisoned`] so the caller can rebuild instead of
    /// computing on a session another computation died in. The same
    /// non-reentrancy contract as [`BddSession::with`] applies.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::Poisoned`] if a previous operation panicked
    /// while holding the manager lock.
    pub fn try_with<R>(&self, f: impl FnOnce(&mut BddManager) -> R) -> Result<R, BddError> {
        match self.core.lock() {
            Ok(mut guard) => Ok(f(&mut guard)),
            Err(_) => Err(BddError::Poisoned),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.lock().num_vars()
    }

    /// Number of allocated nodes (a proxy for memory usage).
    pub fn num_nodes(&self) -> usize {
        self.lock().num_nodes()
    }

    /// The constant-false function.
    pub fn zero(&self) -> Bdd {
        self.wrap(NodeId::ZERO)
    }

    /// The constant-true function.
    pub fn one(&self) -> Bdd {
        self.wrap(NodeId::ONE)
    }

    /// The projection function of variable `var`.
    pub fn var(&self, var: impl Into<Var>) -> Bdd {
        let v = var.into();
        let id = self.lock().literal(v, true);
        self.wrap(id)
    }

    /// The complemented projection function of variable `var`.
    pub fn nvar(&self, var: impl Into<Var>) -> Bdd {
        let v = var.into();
        let id = self.lock().literal(v, false);
        self.wrap(id)
    }

    /// Adds a fresh variable at the bottom of the order.
    pub fn add_var(&self, name: impl Into<String>) -> Var {
        self.lock().add_var(name)
    }

    /// Display name of a variable.
    pub fn var_name(&self, var: Var) -> String {
        self.lock().var_name(var).to_string()
    }

    /// Renames a variable.
    pub fn set_var_name(&self, var: Var, name: impl Into<String>) {
        self.lock().set_var_name(var, name);
    }

    /// Conjunction of an iterator of functions.
    pub fn and_all<'a>(&self, fs: impl IntoIterator<Item = &'a Bdd>) -> Bdd {
        let mut acc = self.one();
        for f in fs {
            acc = acc.and(f);
            if acc.is_zero() {
                break;
            }
        }
        acc
    }

    /// Disjunction of an iterator of functions.
    pub fn or_all<'a>(&self, fs: impl IntoIterator<Item = &'a Bdd>) -> Bdd {
        let mut acc = self.zero();
        for f in fs {
            acc = acc.or(f);
            if acc.is_one() {
                break;
            }
        }
        acc
    }

    /// Builds the BDD of a cube given as `(variable, polarity)` pairs.
    pub fn cube(&self, literals: &[(Var, bool)]) -> Bdd {
        let mut acc = self.one();
        for &(v, pos) in literals {
            let lit = if pos { self.var(v) } else { self.nvar(v) };
            acc = acc.and(&lit);
        }
        acc
    }

    /// Builds the minterm BDD of a complete assignment.
    pub fn minterm(&self, assignment: &[bool]) -> Bdd {
        let literals: Vec<(Var, bool)> = assignment
            .iter()
            .enumerate()
            .map(|(i, &b)| (Var(i as u32), b))
            .collect();
        self.cube(&literals)
    }

    /// Combined DAG size of several functions (shared nodes counted once).
    pub fn shared_size(&self, fs: &[Bdd]) -> usize {
        let ids: Vec<NodeId> = fs.iter().map(|f| f.node_id()).collect();
        self.lock().shared_size(&ids)
    }

    /// Copies a function from another session into this one by structural
    /// DAG rebuild: the source's nodes are read out bottom-up (one
    /// [`BddManager::mk`] per node, memoized on the source id), so the
    /// copy is `O(|f|)` with no apply-cache traffic and no enumeration.
    /// Importing a function of this session is just a clone.
    ///
    /// Both sessions must order the variables of `f`'s support
    /// identically (the engine's wide mode guarantees this: worker
    /// sessions share the initial order and never auto-reorder). The two
    /// locks are taken one after the other, never nested — source to read
    /// the DAG, this session to rebuild — so concurrent imports between
    /// any pair of sessions cannot deadlock.
    ///
    /// # Panics
    ///
    /// Panics if the sessions disagree on the number of variables, or
    /// (in debug builds, via [`BddManager::mk`]) on the order of the
    /// imported function's support.
    pub fn import(&self, f: &Bdd) -> Bdd {
        if self.same_manager(f.manager()) {
            return f.clone();
        }
        assert_eq!(
            self.num_vars(),
            f.manager().num_vars(),
            "import between sessions of different variable counts"
        );
        let root = f.node_id();
        if root.is_terminal() {
            return self.wrap(root);
        }
        // Phase 1: read the DAG out of the source in postorder (children
        // before parents), under the source lock only.
        let nodes: Vec<(NodeId, Var, NodeId, NodeId)> = f.manager().with(|src| {
            let mut order = Vec::new();
            let mut visited = std::collections::HashSet::new();
            let mut stack = vec![(root, false)];
            while let Some((id, expanded)) = stack.pop() {
                if id.is_terminal() {
                    continue;
                }
                let (lo, hi) = src.node_children(id);
                if expanded {
                    order.push((id, src.node_var(id), lo, hi));
                } else if visited.insert(id) {
                    stack.push((id, true));
                    stack.push((lo, false));
                    stack.push((hi, false));
                }
            }
            order
        });
        // Phase 2: rebuild bottom-up under this session's lock. Terminals
        // are the same ids in every manager; internal nodes resolve
        // through the memo (postorder guarantees children come first).
        let copied = self.with(|dst| {
            let mut memo: std::collections::HashMap<NodeId, NodeId> =
                std::collections::HashMap::with_capacity(nodes.len());
            let resolve = |memo: &std::collections::HashMap<NodeId, NodeId>, id: NodeId| {
                if id.is_terminal() {
                    id
                } else {
                    memo[&id]
                }
            };
            for &(id, var, lo, hi) in &nodes {
                let lo = resolve(&memo, lo);
                let hi = resolve(&memo, hi);
                memo.insert(id, dst.mk(var, lo, hi));
            }
            memo[&root]
        });
        self.wrap(copied)
    }

    /// Clears the operation caches of the underlying manager.
    pub fn clear_caches(&self) {
        self.lock().clear_caches();
    }
}

/// A Boolean function: a rooted slot index paired with its session.
///
/// Creating, cloning and dropping a `Bdd` registers/releases an external
/// reference in the manager's root table, which is what keeps the function
/// alive across garbage collections. The handle stores a root-table slot
/// rather than a raw node id, so it stays valid across
/// [`BddSession::compact`]. Like its session, a `Bdd` is `Send`.
pub struct Bdd {
    session: BddSession,
    slot: u32,
}

impl Clone for Bdd {
    fn clone(&self) -> Bdd {
        self.session.lock().roots.retain_slot(self.slot);
        Bdd {
            session: self.session.clone(),
            slot: self.slot,
        }
    }
}

impl Drop for Bdd {
    fn drop(&mut self) {
        self.session.lock().roots.release(self.slot);
    }
}

impl fmt::Debug for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Bdd(node={}, size={})",
            self.node_id().index(),
            self.size()
        )
    }
}

impl PartialEq for Bdd {
    fn eq(&self, other: &Self) -> bool {
        self.session.same_manager(&other.session) && self.node_id() == other.node_id()
    }
}

impl Eq for Bdd {}

impl Hash for Bdd {
    /// Hashes the *current* node id. Canonicity makes this consistent with
    /// equality, but [`BddSession::compact`] renumbers nodes — hash-keyed
    /// collections of `Bdd`s must not be carried across a compaction (use
    /// a `Vec` and `==`, which resolve through the root table, instead).
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.node_id().hash(state);
    }
}

impl Bdd {
    fn assert_same_mgr(&self, other: &Bdd) {
        assert!(
            self.session.same_manager(&other.session),
            "operands belong to different BDD managers"
        );
    }

    /// The session this function belongs to.
    pub fn manager(&self) -> &BddSession {
        &self.session
    }

    /// The raw node identifier the handle currently resolves to.
    ///
    /// The id is only stable until the next [`BddSession::compact`];
    /// operations that sweep or reorder preserve it. Re-wrap a raw id
    /// promptly with [`Bdd::from_node_id`] if it must survive further
    /// handle operations — unrooted ids are subject to garbage collection.
    pub fn node_id(&self) -> NodeId {
        self.session.lock().roots.node_of(self.slot)
    }

    /// Rebuilds a handle from a raw node id of the same manager.
    pub fn from_node_id(session: &BddSession, id: NodeId) -> Bdd {
        session.wrap(id)
    }

    /// Returns `true` for the constant-false function.
    pub fn is_zero(&self) -> bool {
        self.node_id().is_zero()
    }

    /// Returns `true` for the constant-true function.
    pub fn is_one(&self) -> bool {
        self.node_id().is_one()
    }

    /// Returns `true` if the function is a constant.
    pub fn is_constant(&self) -> bool {
        self.node_id().is_terminal()
    }

    /// DAG size (number of decision nodes); the paper's BDD-size cost.
    pub fn size(&self) -> usize {
        let f = self.node_id();
        self.session.lock().size(f)
    }

    /// Conjunction.
    pub fn and(&self, other: &Bdd) -> Bdd {
        self.assert_same_mgr(other);
        let (f, g) = (self.node_id(), other.node_id());
        let id = self.session.lock().and(f, g);
        self.session.wrap(id)
    }

    /// Disjunction.
    pub fn or(&self, other: &Bdd) -> Bdd {
        self.assert_same_mgr(other);
        let (f, g) = (self.node_id(), other.node_id());
        let id = self.session.lock().or(f, g);
        self.session.wrap(id)
    }

    /// Exclusive or.
    pub fn xor(&self, other: &Bdd) -> Bdd {
        self.assert_same_mgr(other);
        let (f, g) = (self.node_id(), other.node_id());
        let id = self.session.lock().xor(f, g);
        self.session.wrap(id)
    }

    /// Equivalence (`xnor`).
    pub fn iff(&self, other: &Bdd) -> Bdd {
        self.assert_same_mgr(other);
        let (f, g) = (self.node_id(), other.node_id());
        let id = self.session.lock().iff(f, g);
        self.session.wrap(id)
    }

    /// Implication `self → other`.
    pub fn implies(&self, other: &Bdd) -> Bdd {
        self.assert_same_mgr(other);
        let (f, g) = (self.node_id(), other.node_id());
        let id = self.session.lock().implies(f, g);
        self.session.wrap(id)
    }

    /// Returns `true` if `self → other` is a tautology (set inclusion of the
    /// onsets).
    pub fn is_subset_of(&self, other: &Bdd) -> bool {
        self.implies(other).is_one()
    }

    /// Negation.
    pub fn complement(&self) -> Bdd {
        let f = self.node_id();
        let id = self.session.lock().not(f);
        self.session.wrap(id)
    }

    /// Set difference `self · ¬other`.
    pub fn diff(&self, other: &Bdd) -> Bdd {
        self.and(&other.complement())
    }

    /// If-then-else with `self` as the selector.
    pub fn ite(&self, then_f: &Bdd, else_f: &Bdd) -> Bdd {
        self.assert_same_mgr(then_f);
        self.assert_same_mgr(else_f);
        let (f, g, h) = (self.node_id(), then_f.node_id(), else_f.node_id());
        let _op = brel_obs::span(brel_obs::Category::KernelOp, "ite");
        let id = self.session.lock().ite(f, g, h);
        self.session.wrap(id)
    }

    /// Shannon cofactor with respect to `var = value`.
    pub fn cofactor(&self, var: Var, value: bool) -> Bdd {
        let f = self.node_id();
        let id = self.session.lock().cofactor(f, var, value);
        self.session.wrap(id)
    }

    /// Restriction by a partial assignment.
    pub fn restrict_assignment(&self, assignment: &[(Var, bool)]) -> Bdd {
        let f = self.node_id();
        let id = self.session.lock().restrict_assignment(f, assignment);
        self.session.wrap(id)
    }

    /// Functional composition: substitute `var` by `g`.
    pub fn compose(&self, var: Var, g: &Bdd) -> Bdd {
        self.assert_same_mgr(g);
        let (f, gid) = (self.node_id(), g.node_id());
        let id = self.session.lock().compose(f, var, gid);
        self.session.wrap(id)
    }

    /// Exchanges two variables.
    pub fn swap_vars(&self, a: Var, b: Var) -> Bdd {
        let f = self.node_id();
        let id = self.session.lock().swap_vars(f, a, b);
        self.session.wrap(id)
    }

    /// Existential quantification of `vars`.
    pub fn exists(&self, vars: &[Var]) -> Bdd {
        let f = self.node_id();
        let _op = brel_obs::span(brel_obs::Category::KernelOp, "quantify");
        let id = self.session.lock().exists_many(f, vars);
        self.session.wrap(id)
    }

    /// Universal quantification of `vars`.
    pub fn forall(&self, vars: &[Var]) -> Bdd {
        let f = self.node_id();
        let _op = brel_obs::span(brel_obs::Category::KernelOp, "quantify");
        let id = self.session.lock().forall_many(f, vars);
        self.session.wrap(id)
    }

    /// The `constrain` generalized cofactor.
    ///
    /// # Panics
    ///
    /// Panics if `care` is the constant-false function.
    pub fn constrain(&self, care: &Bdd) -> Bdd {
        self.assert_same_mgr(care);
        let (f, c) = (self.node_id(), care.node_id());
        let id = self.session.lock().constrain(f, c);
        self.session.wrap(id)
    }

    /// The `restrict` generalized cofactor.
    ///
    /// # Panics
    ///
    /// Panics if `care` is the constant-false function.
    pub fn restrict(&self, care: &Bdd) -> Bdd {
        self.assert_same_mgr(care);
        let (f, c) = (self.node_id(), care.node_id());
        let id = self.session.lock().restrict(f, c);
        self.session.wrap(id)
    }

    /// Safe (never-growing) don't-care minimization.
    ///
    /// # Panics
    ///
    /// Panics if `care` is the constant-false function.
    pub fn li_compact(&self, care: &Bdd) -> Bdd {
        self.assert_same_mgr(care);
        let (f, c) = (self.node_id(), care.node_id());
        let id = self.session.lock().li_compact(f, c);
        self.session.wrap(id)
    }

    /// Minato–Morreale ISOP for the interval `[self, upper]`.
    ///
    /// # Panics
    ///
    /// Panics if `self` does not imply `upper`.
    pub fn isop_interval(&self, upper: &Bdd) -> IsopResult {
        self.assert_same_mgr(upper);
        let (l, u) = (self.node_id(), upper.node_id());
        let _op = brel_obs::span(brel_obs::Category::KernelOp, "isop");
        self.session.lock().isop(l, u)
    }

    /// Minato–Morreale ISOP of a completely specified function.
    pub fn isop(&self) -> IsopResult {
        let f = self.node_id();
        let _op = brel_obs::span(brel_obs::Category::KernelOp, "isop");
        self.session.lock().isop_exact(f)
    }

    /// Support: sorted list of variables the function depends on.
    pub fn support(&self) -> Vec<Var> {
        let f = self.node_id();
        self.session.lock().support(f)
    }

    /// Evaluates the function under a complete assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        let f = self.node_id();
        self.session.lock().eval(f, assignment)
    }

    /// Number of satisfying assignments over `num_vars` variables.
    pub fn sat_count(&self, num_vars: usize) -> u128 {
        let f = self.node_id();
        self.session.lock().sat_count(f, num_vars)
    }

    /// All satisfying minterms over `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars` exceeds [`crate::EXHAUSTIVE_VAR_LIMIT`].
    pub fn minterms(&self, num_vars: usize) -> Vec<Vec<bool>> {
        let f = self.node_id();
        self.session.lock().minterms(f, num_vars)
    }

    /// The cube with the fewest literals reaching the 1-terminal, or `None`
    /// if the function is unsatisfiable.
    pub fn shortest_path(&self) -> Option<PathCube> {
        let f = self.node_id();
        self.session.lock().shortest_path(f)
    }

    /// One satisfying cube, or `None` if unsatisfiable.
    pub fn pick_cube(&self) -> Option<PathCube> {
        let f = self.node_id();
        self.session.lock().pick_cube(f)
    }

    /// First-order symmetry check between two variables.
    pub fn is_symmetric(&self, a: Var, b: Var) -> bool {
        let f = self.node_id();
        self.session.lock().is_symmetric(f, a, b)
    }

    /// All first-order symmetry kinds between two variables.
    pub fn symmetries(&self, a: Var, b: Var) -> Vec<SymmetryKind> {
        let f = self.node_id();
        self.session.lock().symmetries(f, a, b)
    }

    /// Second-order symmetry check between two pairs of variables.
    pub fn is_second_order_symmetric(&self, a1: Var, a2: Var, b1: Var, b2: Var) -> bool {
        let f = self.node_id();
        self.session
            .lock()
            .is_second_order_symmetric(f, a1, a2, b1, b2)
    }

    /// Graphviz rendering of this function.
    pub fn to_dot(&self, label: &str) -> String {
        let f = self.node_id();
        crate::dot::to_dot(&self.session.lock(), &[f], &[label])
    }
}

impl BitAnd for &Bdd {
    type Output = Bdd;
    fn bitand(self, rhs: &Bdd) -> Bdd {
        self.and(rhs)
    }
}

impl BitOr for &Bdd {
    type Output = Bdd;
    fn bitor(self, rhs: &Bdd) -> Bdd {
        self.or(rhs)
    }
}

impl BitXor for &Bdd {
    type Output = Bdd;
    fn bitxor(self, rhs: &Bdd) -> Bdd {
        self.xor(rhs)
    }
}

impl Not for &Bdd {
    type Output = Bdd;
    fn not(self) -> Bdd {
        self.complement()
    }
}

impl BitAnd for Bdd {
    type Output = Bdd;
    fn bitand(self, rhs: Bdd) -> Bdd {
        self.and(&rhs)
    }
}

impl BitOr for Bdd {
    type Output = Bdd;
    fn bitor(self, rhs: Bdd) -> Bdd {
        self.or(&rhs)
    }
}

impl BitXor for Bdd {
    type Output = Bdd;
    fn bitxor(self, rhs: Bdd) -> Bdd {
        self.xor(&rhs)
    }
}

impl Not for Bdd {
    type Output = Bdd;
    fn not(self) -> Bdd {
        self.complement()
    }
}

/// Compile-time proof that the whole handle stack crosses threads: the
/// engine moves warm sessions (and rehydrated handles) between pool
/// workers.
#[allow(dead_code)]
fn _assert_kernel_is_send() {
    fn assert_send<T: Send>() {}
    assert_send::<BddManager>();
    assert_send::<BddSession>();
    assert_send::<Bdd>();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_and_handles_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<BddManager>();
        assert_send::<BddSession>();
        assert_send::<Bdd>();
    }

    #[test]
    fn a_session_moves_between_threads() {
        let session = BddSession::new(3);
        let f = session.var(0).and(&session.var(1));
        let (session, f) = std::thread::spawn(move || {
            let g = f.or(&session.var(2));
            assert!(g.eval(&[false, false, true]));
            (session, f)
        })
        .join()
        .unwrap();
        assert!(f.eval(&[true, true, false]));
        assert_eq!(session.num_vars(), 3);
    }

    #[test]
    fn import_copies_functions_across_sessions() {
        let a = BddSession::new(5);
        let b = BddSession::new(5);
        // A function with sharing and both polarities of several vars.
        let f = (a.var(0).xor(&a.var(1)))
            .or(&a.var(2).and(&a.nvar(3)))
            .iff(&a.var(4));
        let g = b.import(&f);
        assert!(g.manager().same_manager(&b));
        assert_eq!(g.size(), f.size(), "canonical copy preserves DAG size");
        for bits in 0..32u32 {
            let assignment: Vec<bool> = (0..5).map(|i| bits & (1 << i) != 0).collect();
            assert_eq!(f.eval(&assignment), g.eval(&assignment), "{assignment:?}");
        }
        // Terminals and same-session imports are trivial.
        assert!(b.import(&a.one()).is_one());
        assert!(b.import(&a.zero()).is_zero());
        assert_eq!(b.import(&g), g);
    }

    #[test]
    fn reset_rewinds_to_cold_state() {
        let session = BddSession::with_config(4, 512, BddConfig::new());
        let junk = session.var(0).xor(&session.var(1)).or(&session.var(2));
        assert!(
            !session.reset(4, 512, BddConfig::new()),
            "live handle blocks reset"
        );
        drop(junk);
        assert!(session.reset(6, 512, BddConfig::new()));
        assert_eq!(session.num_vars(), 6);
        assert_eq!(session.num_nodes(), 2, "only terminals survive a reset");
        assert_eq!(session.live_roots(), 0);
        // The reset session is fully usable with the new variable count.
        let f = session.var(5).and(&session.var(0));
        assert!(f.eval(&[true, false, false, false, false, true]));
    }

    #[test]
    fn reset_matches_cold_gauges() {
        let warm = BddSession::with_config(4, 2048, BddConfig::new());
        {
            let mut junk = Vec::new();
            for i in 0..4u32 {
                junk.push(warm.var(i).xor(&warm.var((i + 1) % 4)));
            }
        }
        assert!(warm.reset(4, 2048, BddConfig::new()));
        let cold = BddSession::with_config(4, 2048, BddConfig::new());
        let (ws, cs) = (warm.cache_stats(), cold.cache_stats());
        assert_eq!(ws.unique_len, cs.unique_len);
        assert_eq!(ws.unique_capacity, cs.unique_capacity);
        assert_eq!(ws.cache_slots, cs.cache_slots);
        assert_eq!(ws.num_nodes, cs.num_nodes);
        assert_eq!(
            warm.gc_stats().var_order_hash,
            cold.gc_stats().var_order_hash
        );
        // And the two sessions now produce identical gauge trajectories.
        let wf = warm.var(0).and(&warm.var(3));
        let cf = cold.var(0).and(&cold.var(3));
        assert_eq!(wf.size(), cf.size());
        assert_eq!(warm.num_nodes(), cold.num_nodes());
    }

    #[test]
    fn poisoned_sessions_recover() {
        let session = BddSession::new(2);
        let a = session.var(0);
        let zero = session.zero();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = a.constrain(&zero); // panics while holding the lock
        }));
        assert!(result.is_err());
        // The lock is poisoned now; handle traffic must still work.
        let b = session.var(1);
        assert!(a.or(&b).eval(&[true, false]));
        drop((a, b, zero));
        assert_eq!(session.live_roots(), 0);
    }

    #[test]
    fn try_with_surfaces_poisoning_instead_of_clearing_it() {
        let session = BddSession::new(2);
        assert!(!session.is_poisoned());
        // A healthy session runs the closure like `with` does.
        assert_eq!(session.try_with(|m| m.num_vars()).unwrap(), 2);
        let a = session.var(0);
        let zero = session.zero();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = a.constrain(&zero); // panics while holding the lock
        }));
        assert!(result.is_err());
        // The checked API refuses the poisoned session with a typed error…
        assert!(session.is_poisoned());
        assert_eq!(session.try_with(|m| m.num_vars()), Err(BddError::Poisoned));
        // …and keeps refusing: observing the poison must not clear it.
        assert!(session.is_poisoned());
        assert_eq!(session.try_with(|m| m.num_vars()), Err(BddError::Poisoned));
        // The unchecked path (engine quarantine, handle drops) still works.
        let b = session.var(1);
        assert!(a.or(&b).eval(&[true, false]));
        assert_eq!(session.with(|m| m.num_vars()), 2);
        drop((a, b, zero));
        assert_eq!(session.live_roots(), 0);
    }

    #[test]
    fn governed_session_aborts_when_a_sweep_cannot_help() {
        use crate::governor::{catch_resource_abort, BddError, ResourceGovernor};
        // Everything stays rooted, so the quota's GC-first attempt reclaims
        // nothing and the abort must fire.
        let session = BddSession::with_config(16, 64, BddConfig::new().gc_min_nodes(16));
        session.set_governor(ResourceGovernor::new().with_max_live_nodes(8));
        let result = catch_resource_abort(|| {
            let mut rooted = Vec::new();
            let mut f = session.var(0);
            for i in 1..16u32 {
                f = f.xor(&session.var(i));
                rooted.push(f.clone());
            }
            rooted.len()
        });
        assert!(
            matches!(result, Err(BddError::QuotaExceeded { .. })),
            "rooted growth past the quota must abort, got {result:?}"
        );
        // The manager survived the unwind structurally intact: new handle
        // traffic works and the governor can be cleared.
        assert!(session.clear_governor().is_some());
        let a = session.var(0);
        let b = session.var(1);
        assert!(a.or(&b).eval(&[true, false]));
    }

    #[test]
    fn governed_session_survives_when_gc_reclaims_enough() {
        use crate::governor::{catch_resource_abort, ResourceGovernor};
        // The same amount of churn, but nothing stays rooted: every trip's
        // sweep reclaims the garbage, so the quota never aborts.
        let session = BddSession::with_config(16, 64, BddConfig::new().gc_min_nodes(16));
        session.set_governor(ResourceGovernor::new().with_max_live_nodes(64));
        let result = catch_resource_abort(|| {
            for round in 0..32u32 {
                let mut f = session.var(round % 16);
                for i in 0..16u32 {
                    f = f.xor(&session.var(i));
                }
                // `f` drops here; the next safe point can reclaim its cone.
            }
            session.live_nodes()
        });
        let live = result.expect("reclaimable churn must stay under quota");
        assert!(live <= 64 * 2 + 2, "live nodes stayed bounded, got {live}");
        session.clear_governor();
    }

    #[test]
    fn governed_session_honours_an_expired_deadline() {
        use crate::governor::{catch_resource_abort, BddError, ResourceGovernor};
        let session = BddSession::new(20);
        session.set_governor(ResourceGovernor::new().with_deadline_in(std::time::Duration::ZERO));
        let result = catch_resource_abort(|| {
            // Enough allocations to pass several deadline-check intervals.
            let mut rooted = Vec::new();
            let mut f = session.var(0);
            for round in 0..64u32 {
                for i in 0..20u32 {
                    f = f.xor(&session.var((i + round) % 20)).or(&session.var(i));
                    rooted.push(f.clone());
                }
            }
            rooted.len()
        });
        assert!(
            matches!(result, Err(BddError::DeadlineExceeded { .. })),
            "an already-expired deadline must abort, got {result:?}"
        );
        session.clear_governor();
    }

    #[test]
    fn session_reset_clears_the_governor() {
        use crate::governor::ResourceGovernor;
        let session = BddSession::new(2);
        session.set_governor(ResourceGovernor::new().with_max_live_nodes(1));
        assert!(session.reset(2, 64, BddConfig::new()));
        // Were the governor still installed, this rooted growth past one
        // live node would abort (and poison the test with a panic).
        let a = session.var(0);
        let b = session.var(1);
        let f = a.and(&b).or(&a.xor(&b));
        assert!(f.eval(&[true, false]));
        assert!(session.clear_governor().is_none());
    }

    #[test]
    fn operators_match_methods() {
        let mgr = BddSession::new(2);
        let a = mgr.var(0);
        let b = mgr.var(1);
        assert_eq!(&a & &b, a.and(&b));
        assert_eq!(&a | &b, a.or(&b));
        assert_eq!(&a ^ &b, a.xor(&b));
        assert_eq!(!&a, a.complement());
        assert_eq!(a.clone() & b.clone(), a.and(&b));
    }

    #[test]
    fn cube_and_minterm_builders() {
        let mgr = BddSession::new(3);
        let cube = mgr.cube(&[(Var(0), true), (Var(2), false)]);
        assert!(cube.eval(&[true, false, false]));
        assert!(cube.eval(&[true, true, false]));
        assert!(!cube.eval(&[true, true, true]));
        let mt = mgr.minterm(&[true, false, true]);
        assert_eq!(mt.sat_count(3), 1);
    }

    #[test]
    fn subset_and_diff() {
        let mgr = BddSession::new(2);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let ab = a.and(&b);
        assert!(ab.is_subset_of(&a));
        assert!(!a.is_subset_of(&ab));
        let only_a = a.diff(&b);
        assert!(only_a.eval(&[true, false]));
        assert!(!only_a.eval(&[true, true]));
    }

    #[test]
    fn and_all_or_all() {
        let mgr = BddSession::new(3);
        let vars: Vec<Bdd> = (0..3).map(|i| mgr.var(i as u32)).collect();
        let all = mgr.and_all(vars.iter());
        let any = mgr.or_all(vars.iter());
        assert!(all.eval(&[true, true, true]));
        assert!(!all.eval(&[true, false, true]));
        assert!(any.eval(&[false, true, false]));
        assert!(!any.eval(&[false, false, false]));
    }

    #[test]
    #[should_panic]
    fn cross_manager_operations_panic() {
        let m1 = BddSession::new(1);
        let m2 = BddSession::new(1);
        let a = m1.var(0);
        let b = m2.var(0);
        let _ = a.and(&b);
    }

    #[test]
    fn shared_size_counts_once() {
        let mgr = BddSession::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = a.and(&b);
        let g = a.or(&b);
        let total = mgr.shared_size(&[f.clone(), g.clone(), f.clone()]);
        assert!(total <= f.size() + g.size());
    }

    #[test]
    fn drop_and_clone_track_roots() {
        let mgr = BddSession::new(2);
        let base = mgr.live_roots();
        let a = mgr.var(0);
        assert_eq!(mgr.live_roots(), base + 1);
        let b = a.clone();
        assert_eq!(mgr.live_roots(), base + 1, "clones share one root slot");
        drop(a);
        assert_eq!(mgr.live_roots(), base + 1);
        drop(b);
        assert_eq!(mgr.live_roots(), base);
    }

    #[test]
    fn collect_garbage_reclaims_dropped_functions_and_reuses_slots() {
        let mgr = BddSession::new(8);
        let vars: Vec<Bdd> = (0..8).map(|i| mgr.var(i as u32)).collect();
        let keep = vars[0].and(&vars[1]);
        {
            let mut junk = Vec::new();
            for i in 0..6 {
                junk.push(vars[i].xor(&vars[i + 2]).or(&vars[i + 1]));
            }
        }
        let before = mgr.num_nodes();
        let reclaimed = mgr.collect_garbage();
        assert!(reclaimed > 0, "dropped functions must be reclaimed");
        assert!(mgr.live_nodes() < before);
        // The sweep flushed the op cache: recomputing a reclaimed result is
        // a miss, not a stale hit, and the recomputation reuses free slots
        // instead of growing the arena.
        let rebuilt = vars[0].xor(&vars[2]).or(&vars[1]);
        assert_eq!(mgr.num_nodes(), before, "free-listed slots are reused");
        assert!(rebuilt.eval(&[false, true, false, false, false, false, false, false]));
        // The kept function survived untouched.
        assert!(keep.eval(&[true, true, false, false, false, false, false, false]));
        assert!(mgr.gc_stats().collections >= 1);
        assert!(mgr.gc_stats().nodes_reclaimed >= reclaimed as u64);
    }

    #[test]
    fn compact_renumbers_but_handles_survive() {
        let mgr = BddSession::new(6);
        let vars: Vec<Bdd> = (0..6).map(|i| mgr.var(i as u32)).collect();
        // Interleave garbage and keepers so survivors sit at scattered ids.
        let mut keepers = Vec::new();
        for i in 0..4 {
            let _junk = vars[i].xor(&vars[i + 1]).and(&vars[(i + 2) % 6]);
            keepers.push(vars[i].iff(&vars[i + 2]));
        }
        let truth: Vec<Vec<bool>> = keepers
            .iter()
            .map(|f| {
                (0..64u32)
                    .map(|bits| f.eval(&(0..6).map(|k| bits & (1 << k) != 0).collect::<Vec<_>>()))
                    .collect()
            })
            .collect();
        let live = mgr.compact();
        assert_eq!(mgr.num_nodes(), live + 2, "arena is dense after compact");
        for (f, expected) in keepers.iter().zip(&truth) {
            for bits in 0..64u32 {
                let asg: Vec<bool> = (0..6).map(|k| bits & (1 << k) != 0).collect();
                assert_eq!(f.eval(&asg), expected[bits as usize]);
            }
        }
        // Handle equality still canonical after the renumbering.
        assert_eq!(keepers[0], vars[0].iff(&vars[2]));
    }

    #[test]
    fn swap_adjacent_levels_preserves_functions() {
        let mgr = BddSession::new(4);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let d = mgr.var(3);
        let f = a.and(&b).or(&c.and(&d));
        let g = a.xor(&d);
        for level in [0u32, 1, 2, 0, 1, 0] {
            mgr.with(|m| m.swap_adjacent_levels(level));
            for bits in 0..16u32 {
                let asg: Vec<bool> = (0..4).map(|k| bits & (1 << k) != 0).collect();
                assert_eq!(f.eval(&asg), (asg[0] && asg[1]) || (asg[2] && asg[3]));
                assert_eq!(g.eval(&asg), asg[0] ^ asg[3]);
            }
        }
        let order = mgr.var_order();
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn reorder_sift_shrinks_an_interleaved_product() {
        // f = x0·x3 + x1·x4 + x2·x5 under the interleaved order is the
        // classic exponential-vs-linear sifting example.
        let mgr = BddSession::new(6);
        let f = {
            let t0 = mgr.var(0).and(&mgr.var(3));
            let t1 = mgr.var(1).and(&mgr.var(4));
            let t2 = mgr.var(2).and(&mgr.var(5));
            t0.or(&t1).or(&t2)
        };
        let before = f.size();
        let hash_before = mgr.gc_stats().var_order_hash;
        mgr.reorder_sift();
        let after = f.size();
        assert!(
            after < before,
            "sifting must shrink {before} nodes (got {after})"
        );
        assert_ne!(mgr.gc_stats().var_order_hash, hash_before);
        assert_eq!(mgr.gc_stats().reorder_passes, 1);
        for bits in 0..64u32 {
            let asg: Vec<bool> = (0..6).map(|k| bits & (1 << k) != 0).collect();
            let expected = (asg[0] && asg[3]) || (asg[1] && asg[4]) || (asg[2] && asg[5]);
            assert_eq!(f.eval(&asg), expected);
        }
    }

    #[test]
    fn auto_gc_keeps_a_churning_manager_bounded() {
        let mgr = BddSession::with_config(10, 1024, BddConfig::new().gc_min_nodes(256));
        let vars: Vec<Bdd> = (0..10).map(|i| mgr.var(i as u32)).collect();
        for round in 0..200u32 {
            // A fresh function every round, immediately dropped.
            let mut f = vars[(round % 10) as usize].clone();
            for (i, var) in vars.iter().take(9).enumerate() {
                let lit = if (round >> i) & 1 == 0 {
                    var.clone()
                } else {
                    var.complement()
                };
                f = if i % 2 == 0 { f.xor(&lit) } else { f.or(&lit) };
            }
        }
        let stats = mgr.gc_stats();
        assert!(stats.collections > 0, "auto-GC must have triggered");
        assert!(stats.nodes_reclaimed > 0);
        assert!(
            stats.peak_live_nodes < 4096,
            "peak live nodes stay bounded under churn (saw {})",
            stats.peak_live_nodes
        );
    }

    #[test]
    fn handle_equality_is_canonical() {
        let mgr = BddSession::new(2);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f1 = a.and(&b);
        let f2 = b.and(&a);
        assert_eq!(f1, f2);
        let g = a.or(&b);
        assert_ne!(f1, g);
    }
}
