//! Construction-time tuning of a BDD manager.
//!
//! Earlier kernel generations exposed the lifecycle knobs as ad-hoc
//! setters on the shared handle (`set_auto_gc`, `set_gc_threshold`,
//! `set_auto_reorder`) and read the `BREL_BDD_*` environment variables
//! deep inside the manager constructor. Both paths are collapsed here:
//! a [`BddConfig`] is built once — programmatically or from the
//! environment — and consumed at session construction. The environment
//! variables remain supported as *documented overrides* parsed in exactly
//! one place ([`BddConfig::from_env`]):
//!
//! * `BREL_BDD_GC_MIN_NODES` — live-node floor of the automatic-GC
//!   growth trigger (a plain integer).
//! * `BREL_BDD_AUTO_REORDER` — `1` or `true` (case-insensitive) enables
//!   automatic sifting when the live node count doubles.
//!
//! The CI smoke runs use them to force a tiny GC threshold and dynamic
//! reordering through every solver path without touching call sites.

use std::sync::OnceLock;

use crate::gc::GcState;

/// Builder for a manager's lifecycle configuration, consumed at session
/// construction ([`crate::BddSession::with_config`]).
///
/// The default configuration matches the historical setter defaults:
/// automatic GC on, an 8 Ki live-node floor, automatic reordering off.
///
/// ```
/// use brel_bdd::{BddConfig, BddSession};
///
/// let session = BddSession::with_config(
///     4,
///     1024,
///     BddConfig::new().gc_min_nodes(256).auto_reorder(true),
/// );
/// assert_eq!(session.num_vars(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BddConfig {
    pub(crate) auto_gc: bool,
    pub(crate) gc_min_nodes: usize,
    pub(crate) auto_reorder: bool,
}

impl Default for BddConfig {
    fn default() -> Self {
        BddConfig {
            auto_gc: true,
            gc_min_nodes: GcState::DEFAULT_MIN_NODES,
            auto_reorder: false,
        }
    }
}

impl BddConfig {
    /// The default configuration: automatic GC on with the standard
    /// live-node floor, automatic reordering off, environment ignored.
    pub fn new() -> Self {
        Self::default()
    }

    /// The default configuration with the `BREL_BDD_GC_MIN_NODES` /
    /// `BREL_BDD_AUTO_REORDER` environment overrides applied. This is the
    /// configuration the convenience constructors
    /// ([`crate::BddSession::new`], [`crate::BddSession::with_capacity`])
    /// use, so an operator can re-tune a whole binary without a rebuild.
    ///
    /// The environment is read once per process and cached.
    pub fn from_env() -> Self {
        let tuning = env_tuning();
        let mut config = Self::default();
        if let Some(min_nodes) = tuning.gc_min_nodes {
            config.gc_min_nodes = min_nodes;
        }
        config.auto_reorder = tuning.auto_reorder;
        config
    }

    /// Enables or disables automatic collection (explicit
    /// [`crate::BddSession::collect_garbage`] always works). Disable to
    /// pin an append-only arena for measurements.
    pub fn auto_gc(mut self, enabled: bool) -> Self {
        self.auto_gc = enabled;
        self
    }

    /// Sets the live-node floor of the automatic-GC growth trigger; the
    /// auto-reorder trigger scales with it. Clamped to at least 2.
    pub fn gc_min_nodes(mut self, min_nodes: usize) -> Self {
        self.gc_min_nodes = min_nodes.max(2);
        self
    }

    /// Enables or disables automatic sifting when the live node count
    /// doubles (runs at GC safe points only).
    pub fn auto_reorder(mut self, enabled: bool) -> Self {
        self.auto_reorder = enabled;
        self
    }
}

/// Process-wide lifecycle overrides read from the environment once.
struct EnvTuning {
    gc_min_nodes: Option<usize>,
    auto_reorder: bool,
}

fn env_tuning() -> &'static EnvTuning {
    static TUNING: OnceLock<EnvTuning> = OnceLock::new();
    TUNING.get_or_init(|| EnvTuning {
        gc_min_nodes: std::env::var("BREL_BDD_GC_MIN_NODES")
            .ok()
            .and_then(|v| v.parse().ok()),
        auto_reorder: std::env::var("BREL_BDD_AUTO_REORDER")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_overrides_defaults() {
        let c = BddConfig::new()
            .auto_gc(false)
            .gc_min_nodes(100)
            .auto_reorder(true);
        assert!(!c.auto_gc);
        assert_eq!(c.gc_min_nodes, 100);
        assert!(c.auto_reorder);
    }

    #[test]
    fn gc_floor_is_clamped() {
        assert_eq!(BddConfig::new().gc_min_nodes(0).gc_min_nodes, 2);
    }

    #[test]
    fn default_matches_historical_setters() {
        let c = BddConfig::default();
        assert!(c.auto_gc);
        assert_eq!(c.gc_min_nodes, GcState::DEFAULT_MIN_NODES);
        assert!(!c.auto_reorder);
    }
}
