//! The kernel's memory layer: a CUDD-style open-addressed unique table and
//! a fixed-size, lossy, direct-mapped operation cache.
//!
//! Both structures replace the `std::collections::HashMap`s of the first
//! kernel generation. SipHash (std's default hasher) is a DoS-hardened
//! streaming hash — far more work per lookup than a BDD node deserves. Here
//! keys are three machine words, so hashing is two Fx-style rotate-multiply
//! steps, tables are power-of-two sized, and the unique table stores plain
//! `u32` arena indices (the node data itself lives in the arena, so a probe
//! costs one extra cache line at most).
//!
//! The operation cache is shared by `ite` and every tagged unary or
//! quantification operation. It is *lossy*: a colliding insert simply
//! overwrites the previous entry. Losing an entry only costs a recompute,
//! never correctness. This mirrors the classical BDD-package design
//! (CUDD's "computed table") and is what lets `cofactor`, `exists_many` and
//! friends persist results *across* calls instead of allocating a fresh
//! memo table per call.
//!
//! Earlier kernel generations argued cache safety from an append-only
//! arena ("nodes are never garbage collected, so a cached result can never
//! dangle"). That argument is gone: the kernel now reclaims dead nodes
//! (see [`crate::gc`]). The replacement invariant is epoch-based — between
//! two sweeps every arena slot is stable, and **every sweep that reclaims
//! anything flushes the operation cache and rebuilds the unique table from
//! the survivors**, so no entry from a previous epoch survives into one
//! where its slots may have been reused. Dynamic reordering (see
//! [`crate::reorder`]) deliberately does *not* flush: the in-place level
//! swap preserves the Boolean function denoted by every node id, and cache
//! entries relate ids as functions.
//!
//! Reclamation also means the unique table must support deletion: removal
//! marks the slot with a tombstone that probing walks over and insertion
//! reuses; growth and the post-sweep rebuild drop tombstones wholesale.

use crate::manager::Node;
use crate::manager::{NodeId, Var, FREE_VAR};

/// Fx-hash multiplier (the firefox hash; also used by rustc).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

#[inline]
fn fx_add(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED)
}

/// Hashes a node key `(var, lo, hi)` / cache key to a table index seed.
/// The xor-fold pushes the multiplier's high-bit entropy into the low bits
/// the power-of-two mask keeps.
#[inline]
fn hash3(a: u32, b: u32, c: u32) -> u64 {
    let h = fx_add(fx_add(0, a as u64), ((b as u64) << 32) | c as u64);
    h ^ (h >> 32)
}

/// Counter block of the kernel's hashing and caching layer.
///
/// All counters are cumulative over the manager's lifetime and fully
/// deterministic: they are a pure function of the operation sequence, so
/// they may appear in reproducible report output. Gauges (`unique_len`,
/// `unique_capacity`, `cache_slots`, `num_nodes`) describe the current
/// state instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Unique-table lookups (`mk` calls that reached the table).
    pub unique_lookups: u64,
    /// Unique-table hits (an existing canonical node was returned).
    pub unique_hits: u64,
    /// Decision nodes currently stored in the unique table.
    pub unique_len: u64,
    /// Unique-table slot count (power of two).
    pub unique_capacity: u64,
    /// Operation-cache lookups.
    pub cache_lookups: u64,
    /// Operation-cache hits.
    pub cache_hits: u64,
    /// Operation-cache inserts.
    pub cache_inserts: u64,
    /// Inserts that overwrote a live entry with a different key (the cost
    /// of the lossy direct-mapped design).
    pub cache_evictions: u64,
    /// Operation-cache slot count (power of two).
    pub cache_slots: u64,
    /// Total nodes in the arena, terminals included.
    pub num_nodes: u64,
}

impl CacheStats {
    /// Operation-cache hit rate in `[0, 1]` (`0` when nothing was looked
    /// up).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.cache_lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_lookups as f64
        }
    }

    /// The counters as `(name, value)` pairs, for absorption into a
    /// [`brel_obs::MetricsRegistry`].
    pub fn metrics(&self) -> [(&'static str, u64); 10] {
        [
            ("unique_lookups", self.unique_lookups),
            ("unique_hits", self.unique_hits),
            ("unique_len", self.unique_len),
            ("unique_capacity", self.unique_capacity),
            ("cache_lookups", self.cache_lookups),
            ("cache_hits", self.cache_hits),
            ("cache_inserts", self.cache_inserts),
            ("cache_evictions", self.cache_evictions),
            ("cache_slots", self.cache_slots),
            ("num_nodes", self.num_nodes),
        ]
    }

    /// Unique-table load factor in `[0, 1]`.
    pub fn unique_load_factor(&self) -> f64 {
        if self.unique_capacity == 0 {
            0.0
        } else {
            self.unique_len as f64 / self.unique_capacity as f64
        }
    }

    /// The counter deltas accumulated since `earlier` (gauges keep their
    /// current values). Used by the engine to attribute kernel work to one
    /// backend run on a shared manager.
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            unique_lookups: self.unique_lookups.saturating_sub(earlier.unique_lookups),
            unique_hits: self.unique_hits.saturating_sub(earlier.unique_hits),
            unique_len: self.unique_len,
            unique_capacity: self.unique_capacity,
            cache_lookups: self.cache_lookups.saturating_sub(earlier.cache_lookups),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_inserts: self.cache_inserts.saturating_sub(earlier.cache_inserts),
            cache_evictions: self.cache_evictions.saturating_sub(earlier.cache_evictions),
            cache_slots: self.cache_slots,
            num_nodes: self.num_nodes,
        }
    }
}

/// Sentinel for an empty unique-table slot.
const UNIQUE_EMPTY: u32 = u32::MAX;
/// Sentinel for a deleted unique-table slot: probing continues past it,
/// insertion may reuse it.
const UNIQUE_TOMBSTONE: u32 = u32::MAX - 1;

/// Open-addressed unique table: maps `(var, lo, hi)` to the canonical
/// arena index. Slots store only the `u32` arena index; the key is read
/// back from the node arena during probing (linear probing, power-of-two
/// capacity, grown at 3/4 load counting tombstones).
#[derive(Debug)]
pub(crate) struct UniqueTable {
    slots: Box<[u32]>,
    mask: usize,
    len: usize,
    tombstones: usize,
    lookups: u64,
    hits: u64,
}

fn empty_slots(capacity: usize) -> Box<[u32]> {
    vec![UNIQUE_EMPTY; capacity].into_boxed_slice()
}

/// Rounds a requested element count up to the power-of-two capacity that
/// holds it under 3/4 load.
fn capacity_for(expected: usize, minimum: usize) -> usize {
    let needed = expected.saturating_mul(4) / 3 + 1;
    needed.max(minimum).next_power_of_two()
}

impl UniqueTable {
    const MIN_CAPACITY: usize = 256;

    /// A table pre-sized for `expected` nodes.
    pub(crate) fn with_capacity(expected: usize) -> Self {
        let capacity = capacity_for(expected, Self::MIN_CAPACITY);
        UniqueTable {
            slots: empty_slots(capacity),
            mask: capacity - 1,
            len: 0,
            tombstones: 0,
            lookups: 0,
            hits: 0,
        }
    }

    /// Finds the canonical node `(var, lo, hi)`, allocating a fresh node
    /// (from the arena free list when possible, appending otherwise) when
    /// none exists yet.
    #[inline]
    pub(crate) fn get_or_insert(
        &mut self,
        var: Var,
        lo: NodeId,
        hi: NodeId,
        nodes: &mut Vec<Node>,
        free: &mut Vec<u32>,
    ) -> NodeId {
        self.lookups += 1;
        if (self.len + self.tombstones + 1) * 4 > self.slots.len() * 3 {
            self.grow(
                capacity_for(self.len * 2, Self::MIN_CAPACITY).max(self.slots.len()),
                nodes,
            );
        }
        let mut i = hash3(var.0, lo.0, hi.0) as usize & self.mask;
        let mut reuse: Option<usize> = None;
        loop {
            let entry = self.slots[i];
            if entry == UNIQUE_EMPTY {
                let node = Node { var, lo, hi };
                let id = match free.pop() {
                    Some(slot) => {
                        nodes[slot as usize] = node;
                        slot
                    }
                    None => {
                        let id = nodes.len() as u32;
                        debug_assert!(id < UNIQUE_TOMBSTONE, "node arena exhausted u32 indices");
                        nodes.push(node);
                        id
                    }
                };
                let target = reuse.unwrap_or(i);
                if reuse.is_some() {
                    self.tombstones -= 1;
                }
                self.slots[target] = id;
                self.len += 1;
                return NodeId(id);
            }
            if entry == UNIQUE_TOMBSTONE {
                if reuse.is_none() {
                    reuse = Some(i);
                }
                i = (i + 1) & self.mask;
                continue;
            }
            let node = &nodes[entry as usize];
            if node.var == var && node.lo == lo && node.hi == hi {
                self.hits += 1;
                return NodeId(entry);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Inserts a node whose key is known not to be present (used by the
    /// reorder swap after rewriting a node in place). Does not count as a
    /// lookup.
    pub(crate) fn insert_known(
        &mut self,
        var: Var,
        lo: NodeId,
        hi: NodeId,
        id: NodeId,
        nodes: &[Node],
    ) {
        if (self.len + self.tombstones + 1) * 4 > self.slots.len() * 3 {
            self.grow(
                capacity_for(self.len * 2, Self::MIN_CAPACITY).max(self.slots.len()),
                nodes,
            );
        }
        let mut i = hash3(var.0, lo.0, hi.0) as usize & self.mask;
        loop {
            let entry = self.slots[i];
            if entry == UNIQUE_EMPTY || entry == UNIQUE_TOMBSTONE {
                if entry == UNIQUE_TOMBSTONE {
                    self.tombstones -= 1;
                }
                self.slots[i] = id.0;
                self.len += 1;
                return;
            }
            debug_assert!(entry != id.0, "insert_known: id already present");
            i = (i + 1) & self.mask;
        }
    }

    /// Deletes the entry of `id` (keyed `(var, lo, hi)`), leaving a
    /// tombstone so later probes keep walking.
    pub(crate) fn remove(&mut self, var: Var, lo: NodeId, hi: NodeId, id: NodeId) {
        let mut i = hash3(var.0, lo.0, hi.0) as usize & self.mask;
        loop {
            let entry = self.slots[i];
            assert!(entry != UNIQUE_EMPTY, "remove: node not in unique table");
            if entry == id.0 {
                self.slots[i] = UNIQUE_TOMBSTONE;
                self.len -= 1;
                self.tombstones += 1;
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Rebuilds the table from the arena after a sweep or compaction:
    /// every non-terminal, non-free slot is reinserted; tombstones and
    /// stale entries are dropped wholesale.
    pub(crate) fn rebuild(&mut self, nodes: &[Node]) {
        let live = nodes.len().saturating_sub(2);
        let capacity = capacity_for(live, Self::MIN_CAPACITY);
        self.slots = empty_slots(capacity);
        self.mask = capacity - 1;
        self.len = 0;
        self.tombstones = 0;
        for (index, node) in nodes.iter().enumerate().skip(2) {
            if node.var.0 == FREE_VAR {
                continue;
            }
            let mut i = hash3(node.var.0, node.lo.0, node.hi.0) as usize & self.mask;
            while self.slots[i] != UNIQUE_EMPTY {
                i = (i + 1) & self.mask;
            }
            self.slots[i] = index as u32;
            self.len += 1;
        }
    }

    /// Empties the table and restores the capacity a cold
    /// [`UniqueTable::with_capacity`]`(expected)` would have, reusing the
    /// current allocation when the capacities already agree. Lookup/hit
    /// counters survive (session resets report deltas). Part of the warm
    /// session-reset path: a reset manager must be observationally
    /// identical to a cold one, including the capacity gauge.
    pub(crate) fn reset(&mut self, expected: usize) {
        let capacity = capacity_for(expected, Self::MIN_CAPACITY);
        if capacity == self.slots.len() {
            self.slots.fill(UNIQUE_EMPTY);
        } else {
            self.slots = empty_slots(capacity);
            self.mask = capacity - 1;
        }
        self.len = 0;
        self.tombstones = 0;
    }

    /// Pre-grows the table so `additional` more nodes fit without a rehash.
    pub(crate) fn reserve(&mut self, additional: usize, nodes: &[Node]) {
        let capacity = capacity_for(self.len + self.tombstones + additional, Self::MIN_CAPACITY);
        if capacity > self.slots.len() {
            self.grow(capacity, nodes);
        }
    }

    fn grow(&mut self, new_capacity: usize, nodes: &[Node]) {
        let old = std::mem::replace(&mut self.slots, empty_slots(new_capacity));
        self.mask = new_capacity - 1;
        self.tombstones = 0;
        for &entry in old.iter() {
            if entry == UNIQUE_EMPTY || entry == UNIQUE_TOMBSTONE {
                continue;
            }
            let node = &nodes[entry as usize];
            let mut i = hash3(node.var.0, node.lo.0, node.hi.0) as usize & self.mask;
            while self.slots[i] != UNIQUE_EMPTY {
                i = (i + 1) & self.mask;
            }
            self.slots[i] = entry;
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    pub(crate) fn lookups(&self) -> u64 {
        self.lookups
    }

    pub(crate) fn hits(&self) -> u64 {
        self.hits
    }
}

/// Operation tags distinguishing cache users. `ite` keys are three node
/// ids; tagged operations reuse the `(a, b, c)` words for their own keys
/// (node id + variable, node id + cube, node id + interned map id, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub(crate) enum OpTag {
    Ite = 0,
    Cofactor0 = 1,
    Cofactor1 = 2,
    Exists = 3,
    Forall = 4,
    Rename = 5,
    Constrain = 6,
    Restrict = 7,
    RestrictCube = 8,
    LiCompact = 9,
}

/// Sentinel tag for an empty cache slot.
const TAG_EMPTY: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct CacheSlot {
    tag: u32,
    a: u32,
    b: u32,
    c: u32,
    result: u32,
}

const EMPTY_SLOT: CacheSlot = CacheSlot {
    tag: TAG_EMPTY,
    a: 0,
    b: 0,
    c: 0,
    result: 0,
};

/// The lossy, direct-mapped operation cache shared by every memoized
/// kernel operation.
///
/// The slot count starts small and doubles (clearing the table — entries
/// are disposable) whenever the insert volume outgrows it, up to
/// [`OpCache::MAX_SLOTS`]; small managers therefore stay cheap while
/// solver-scale managers converge to a large cache within a few resizes.
#[derive(Debug)]
pub(crate) struct OpCache {
    slots: Box<[CacheSlot]>,
    mask: usize,
    grow_at: u64,
    /// `true` once the size was pinned by an explicit resize; pinned
    /// caches never auto-grow (the eviction stress tests rely on this).
    fixed: bool,
    lookups: u64,
    hits: u64,
    inserts: u64,
    evictions: u64,
}

impl OpCache {
    const MIN_SLOTS: usize = 1 << 8;
    const MAX_SLOTS: usize = 1 << 20;
    /// Resize once inserts exceed this multiple of the slot count.
    const GROWTH_PRESSURE: u64 = 4;

    pub(crate) fn new() -> Self {
        Self::with_slots(Self::MIN_SLOTS)
    }

    /// A cache with `slots` slots (rounded up to a power of two).
    pub(crate) fn with_slots(slots: usize) -> Self {
        let capacity = slots.clamp(2, Self::MAX_SLOTS).next_power_of_two();
        OpCache {
            slots: vec![EMPTY_SLOT; capacity].into_boxed_slice(),
            mask: capacity - 1,
            grow_at: capacity as u64 * Self::GROWTH_PRESSURE,
            fixed: false,
            lookups: 0,
            hits: 0,
            inserts: 0,
            evictions: 0,
        }
    }

    #[inline]
    fn index(&self, tag: OpTag, a: u32, b: u32, c: u32) -> usize {
        (hash3(a, b, c).wrapping_add((tag as u64).wrapping_mul(FX_SEED))) as usize & self.mask
    }

    #[inline]
    pub(crate) fn lookup(&mut self, tag: OpTag, a: u32, b: u32, c: u32) -> Option<NodeId> {
        self.lookups += 1;
        let slot = &self.slots[self.index(tag, a, b, c)];
        if slot.tag == tag as u32 && slot.a == a && slot.b == b && slot.c == c {
            self.hits += 1;
            Some(NodeId(slot.result))
        } else {
            None
        }
    }

    #[inline]
    pub(crate) fn insert(&mut self, tag: OpTag, a: u32, b: u32, c: u32, result: NodeId) {
        self.inserts += 1;
        if !self.fixed && self.inserts >= self.grow_at && self.slots.len() < Self::MAX_SLOTS {
            self.grow(self.slots.len() * 2);
        }
        let i = self.index(tag, a, b, c);
        let slot = &mut self.slots[i];
        if slot.tag != TAG_EMPTY
            && (slot.tag != tag as u32 || slot.a != a || slot.b != b || slot.c != c)
        {
            self.evictions += 1;
        }
        *slot = CacheSlot {
            tag: tag as u32,
            a,
            b,
            c,
            result: result.0,
        };
    }

    /// Drops every entry, keeping the slot count and counters.
    pub(crate) fn clear(&mut self) {
        self.slots.fill(EMPTY_SLOT);
    }

    /// Restores the cold-start state: minimum slot count, auto-growth
    /// re-enabled, next growth re-armed at the same per-session insert
    /// distance a fresh cache would use. Counters survive (session resets
    /// report deltas), so a reset cache behaves — and reports — exactly
    /// like a cold one for the operations that follow.
    pub(crate) fn reset(&mut self) {
        if self.slots.len() == Self::MIN_SLOTS {
            self.slots.fill(EMPTY_SLOT);
        } else {
            self.slots = vec![EMPTY_SLOT; Self::MIN_SLOTS].into_boxed_slice();
            self.mask = Self::MIN_SLOTS - 1;
        }
        self.grow_at = self.inserts + Self::MIN_SLOTS as u64 * Self::GROWTH_PRESSURE;
        self.fixed = false;
    }

    /// Replaces the cache with one of the given slot count and *pins* it:
    /// a resized cache never auto-grows again. Entries are dropped,
    /// counters survive. Exposed for the eviction stress tests, which hold
    /// a tiny cache under sustained insert pressure.
    pub(crate) fn resize(&mut self, slots: usize) {
        self.grow(slots);
        self.fixed = true;
    }

    fn grow(&mut self, slots: usize) {
        let capacity = slots.clamp(2, Self::MAX_SLOTS).next_power_of_two();
        self.slots = vec![EMPTY_SLOT; capacity].into_boxed_slice();
        self.mask = capacity - 1;
        self.grow_at = self.inserts + capacity as u64 * Self::GROWTH_PRESSURE;
    }

    pub(crate) fn slot_count(&self) -> usize {
        self.slots.len()
    }

    pub(crate) fn lookups(&self) -> u64 {
        self.lookups
    }

    pub(crate) fn hits(&self) -> u64 {
        self.hits
    }

    pub(crate) fn inserts(&self) -> u64 {
        self.inserts
    }

    pub(crate) fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_table_canonicalizes_and_grows() {
        let mut nodes = vec![
            Node {
                var: Var(u32::MAX),
                lo: NodeId::ZERO,
                hi: NodeId::ZERO,
            },
            Node {
                var: Var(u32::MAX),
                lo: NodeId::ONE,
                hi: NodeId::ONE,
            },
        ];
        let mut free: Vec<u32> = Vec::new();
        let mut table = UniqueTable::with_capacity(0);
        let initial_capacity = table.capacity();
        // Insert enough distinct nodes to force at least one growth.
        let mut ids = Vec::new();
        for v in 0..1024u32 {
            ids.push(table.get_or_insert(Var(v), NodeId::ZERO, NodeId::ONE, &mut nodes, &mut free));
        }
        assert!(table.capacity() > initial_capacity);
        assert_eq!(table.len(), 1024);
        // Every node is still found after rehashing.
        for (v, &id) in ids.iter().enumerate() {
            let again = table.get_or_insert(
                Var(v as u32),
                NodeId::ZERO,
                NodeId::ONE,
                &mut nodes,
                &mut free,
            );
            assert_eq!(again, id);
        }
        assert_eq!(table.hits(), 1024);
        assert_eq!(table.lookups(), 2048);
    }

    #[test]
    fn unique_table_remove_and_reinsert_through_tombstones() {
        let mut nodes = vec![
            Node {
                var: Var(u32::MAX),
                lo: NodeId::ZERO,
                hi: NodeId::ZERO,
            },
            Node {
                var: Var(u32::MAX),
                lo: NodeId::ONE,
                hi: NodeId::ONE,
            },
        ];
        let mut free: Vec<u32> = Vec::new();
        let mut table = UniqueTable::with_capacity(64);
        let mut ids = Vec::new();
        for v in 0..64u32 {
            ids.push(table.get_or_insert(Var(v), NodeId::ZERO, NodeId::ONE, &mut nodes, &mut free));
        }
        // Delete every other node, leaving tombstones behind.
        for (v, &id) in ids.iter().enumerate().step_by(2) {
            table.remove(Var(v as u32), NodeId::ZERO, NodeId::ONE, id);
        }
        assert_eq!(table.len(), 32);
        // Survivors still probe past the tombstones.
        for (v, &id) in ids.iter().enumerate().skip(1).step_by(2) {
            let again = table.get_or_insert(
                Var(v as u32),
                NodeId::ZERO,
                NodeId::ONE,
                &mut nodes,
                &mut free,
            );
            assert_eq!(again, id);
        }
        // Reinsert a removed key through a free-listed arena slot.
        free.push(ids[0].0);
        nodes[ids[0].index()] = Node {
            var: Var(u32::MAX),
            lo: NodeId::ZERO,
            hi: NodeId::ZERO,
        };
        let back = table.get_or_insert(Var(0), NodeId::ZERO, NodeId::ONE, &mut nodes, &mut free);
        assert_eq!(back, ids[0], "free-listed slot is reused");
        assert!(free.is_empty());
    }

    #[test]
    fn op_cache_is_lossy_but_exact() {
        let mut cache = OpCache::with_slots(2);
        cache.insert(OpTag::Ite, 1, 2, 3, NodeId(7));
        assert_eq!(cache.lookup(OpTag::Ite, 1, 2, 3), Some(NodeId(7)));
        // A different key must never produce a false hit, even in a
        // two-slot cache where collisions are constant.
        assert_eq!(cache.lookup(OpTag::Ite, 3, 2, 1), None);
        assert_eq!(cache.lookup(OpTag::Exists, 1, 2, 3), None);
        for k in 0..64u32 {
            cache.insert(OpTag::Ite, k, k, k, NodeId(k));
        }
        assert!(cache.evictions() > 0);
    }

    #[test]
    fn op_cache_grows_under_pressure() {
        let mut cache = OpCache::with_slots(2);
        let before = cache.slot_count();
        for k in 0..256u32 {
            cache.insert(OpTag::Ite, k, 0, 0, NodeId(k));
        }
        assert!(cache.slot_count() > before);
    }

    #[test]
    fn stats_delta_subtracts_counters_and_keeps_gauges() {
        let earlier = CacheStats {
            cache_lookups: 10,
            cache_hits: 4,
            num_nodes: 5,
            ..CacheStats::default()
        };
        let now = CacheStats {
            cache_lookups: 25,
            cache_hits: 9,
            num_nodes: 50,
            cache_slots: 256,
            ..CacheStats::default()
        };
        let delta = now.delta_since(&earlier);
        assert_eq!(delta.cache_lookups, 15);
        assert_eq!(delta.cache_hits, 5);
        assert_eq!(delta.num_nodes, 50);
        assert_eq!(delta.cache_slots, 256);
        assert!((delta.cache_hit_rate() - 5.0 / 15.0).abs() < 1e-12);
        assert_eq!(CacheStats::default().cache_hit_rate(), 0.0);
        assert_eq!(CacheStats::default().unique_load_factor(), 0.0);
    }
}
