//! The Table 2 Boolean-relation benchmark family.
//!
//! The original `int*`, `b9`, `vtx`, `gr` and `she*` relation files used by
//! gyocro and BREL are not publicly archived. This module regenerates a
//! family with the same instance names and input/output counts, built the
//! way such relations arise in practice (and the way the paper motivates
//! them in Section 1): take a cut of a reconvergent network — a hidden
//! multiple-output function `H(X)` feeding a hidden gate `G(Y)` — and expose
//! as flexibility every value of the cut that produces the same primary
//! output, i.e. `R(X, Y) = (G(H(X)) ⇔ G(Y))`.
//!
//! Such relations are always well defined (take `Y = H(X)`) and, whenever
//! `G` is non-injective, contain input vertices whose image is not a cube —
//! exactly the situation of Fig. 1 of the paper.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use brel_bdd::Bdd;
use brel_relation::{BooleanRelation, RelationSpace};

/// One named instance of the Table 2 family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table2Instance {
    /// Instance name as it appears in the paper's Table 2.
    pub name: &'static str,
    /// Number of input variables (PI).
    pub num_inputs: usize,
    /// Number of output variables (PO).
    pub num_outputs: usize,
    /// Generator seed (fixed so every run sees the same relation).
    pub seed: u64,
}

/// The instance list. Input/output counts follow the sizes reported for
/// these benchmarks in the BR-minimization literature (small relations with
/// 4–10 inputs and 2–5 outputs); the names match Table 2 of the paper.
pub fn instances() -> Vec<Table2Instance> {
    vec![
        Table2Instance {
            name: "int1",
            num_inputs: 4,
            num_outputs: 3,
            seed: 101,
        },
        Table2Instance {
            name: "int2",
            num_inputs: 5,
            num_outputs: 3,
            seed: 102,
        },
        Table2Instance {
            name: "int3",
            num_inputs: 6,
            num_outputs: 3,
            seed: 103,
        },
        Table2Instance {
            name: "int4",
            num_inputs: 6,
            num_outputs: 4,
            seed: 104,
        },
        Table2Instance {
            name: "int5",
            num_inputs: 7,
            num_outputs: 4,
            seed: 105,
        },
        Table2Instance {
            name: "int6",
            num_inputs: 8,
            num_outputs: 4,
            seed: 106,
        },
        Table2Instance {
            name: "int7",
            num_inputs: 8,
            num_outputs: 5,
            seed: 107,
        },
        Table2Instance {
            name: "int8",
            num_inputs: 9,
            num_outputs: 5,
            seed: 108,
        },
        Table2Instance {
            name: "int9",
            num_inputs: 10,
            num_outputs: 5,
            seed: 109,
        },
        Table2Instance {
            name: "int10",
            num_inputs: 10,
            num_outputs: 4,
            seed: 110,
        },
        Table2Instance {
            name: "b9",
            num_inputs: 8,
            num_outputs: 4,
            seed: 201,
        },
        Table2Instance {
            name: "vtx",
            num_inputs: 9,
            num_outputs: 4,
            seed: 202,
        },
        Table2Instance {
            name: "gr",
            num_inputs: 7,
            num_outputs: 5,
            seed: 203,
        },
        Table2Instance {
            name: "she1",
            num_inputs: 6,
            num_outputs: 4,
            seed: 204,
        },
        Table2Instance {
            name: "she2",
            num_inputs: 8,
            num_outputs: 5,
            seed: 205,
        },
    ]
}

/// Looks up an instance by name.
pub fn instance(name: &str) -> Option<Table2Instance> {
    instances().into_iter().find(|i| i.name == name)
}

/// Generates the relation of one instance.
pub fn generate(instance: &Table2Instance) -> (RelationSpace, BooleanRelation) {
    generate_in_space(
        instance,
        RelationSpace::new(instance.num_inputs, instance.num_outputs),
    )
}

/// Generates the relation of one instance into a space with an explicit
/// kernel lifecycle configuration. Used by workloads that must pin GC /
/// reorder behaviour regardless of the `BREL_BDD_*` environment (which
/// since the `BddConfig` redesign can only be chosen at construction).
pub fn generate_with_config(
    instance: &Table2Instance,
    config: brel_bdd::BddConfig,
) -> (RelationSpace, BooleanRelation) {
    generate_in_space(
        instance,
        RelationSpace::with_config(instance.num_inputs, instance.num_outputs, 1024, config),
    )
}

fn generate_in_space(
    instance: &Table2Instance,
    space: RelationSpace,
) -> (RelationSpace, BooleanRelation) {
    let mut rng = StdRng::seed_from_u64(instance.seed);

    // Hidden cut functions H_j(X): random reconvergent expressions.
    let hidden: Vec<Bdd> = (0..instance.num_outputs)
        .map(|_| random_expression(&space, &mut rng))
        .collect();
    // Hidden downstream gate G(Y): a random symmetric-ish combination of the
    // cut signals — non-injective, so several cut values are interchangeable.
    let g_over_outputs = random_gate_over_outputs(&space, &mut rng);
    // G(H(X)): compose the gate with the hidden functions.
    let mut g_of_h = g_over_outputs.clone();
    for (j, h) in hidden.iter().enumerate() {
        g_of_h = g_of_h.compose(space.output_var(j), h);
    }
    // R(X, Y) = G(H(X)) ⇔ G(Y)
    let chi = g_of_h.iff(&g_over_outputs);
    let relation = BooleanRelation::from_characteristic(&space, chi);
    debug_assert!(relation.is_well_defined());
    (space, relation)
}

/// A random multilevel expression over the input variables.
fn random_expression(space: &RelationSpace, rng: &mut StdRng) -> Bdd {
    let n = space.num_inputs();
    let mut terms: Vec<Bdd> = Vec::new();
    let num_terms = rng.gen_range(2..=3);
    for _ in 0..num_terms {
        let mut term = space.mgr().one();
        let width = rng.gen_range(2..=3.min(n));
        for _ in 0..width {
            let v = space.input(rng.gen_range(0..n));
            let lit = if rng.gen_bool(0.5) { v } else { v.complement() };
            term = term.and(&lit);
        }
        terms.push(term);
    }
    let mut acc = space.mgr().zero();
    for t in &terms {
        if rng.gen_bool(0.25) {
            acc = acc.xor(t);
        } else {
            acc = acc.or(t);
        }
    }
    acc
}

/// A random non-injective gate over the output variables.
fn random_gate_over_outputs(space: &RelationSpace, rng: &mut StdRng) -> Bdd {
    let m = space.num_outputs();
    let outputs: Vec<Bdd> = (0..m).map(|j| space.output(j)).collect();
    match rng.gen_range(0..3) {
        // AND of ORs of pairs.
        0 => {
            let mut acc = space.mgr().one();
            for pair in outputs.chunks(2) {
                let or = pair.iter().fold(space.mgr().zero(), |a, b| a.or(b));
                acc = acc.and(&or);
            }
            acc
        }
        // Majority-like threshold.
        1 => {
            let mut acc = space.mgr().zero();
            for i in 0..m {
                for j in (i + 1)..m {
                    acc = acc.or(&outputs[i].and(&outputs[j]));
                }
            }
            acc
        }
        // Parity (fully symmetric, highly non-injective).
        _ => outputs.iter().fold(space.mgr().zero(), |a, b| a.xor(b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_instance_is_well_defined_with_flexibility() {
        for inst in instances() {
            let (_space, r) = generate(&inst);
            assert!(r.is_well_defined(), "{} must be well defined", inst.name);
            assert!(
                !r.is_function(),
                "{} should expose flexibility (non-injective gate)",
                inst.name
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let inst = instance("int1").unwrap();
        let (_s1, a) = generate(&inst);
        let (_s2, b) = generate(&inst);
        assert_eq!(a.num_pairs(), b.num_pairs());
    }

    #[test]
    fn instance_lookup() {
        assert!(instance("b9").is_some());
        assert!(instance("does-not-exist").is_none());
        assert_eq!(instances().len(), 15);
        let vtx = instance("vtx").unwrap();
        assert_eq!(vtx.num_inputs, 9);
        assert_eq!(vtx.num_outputs, 4);
    }

    #[test]
    fn some_instance_has_non_cube_flexibility() {
        // At least one generated relation must contain an input vertex whose
        // image is not expressible with per-output don't cares (the reason
        // these benchmarks need a BR solver at all).
        let mut found = false;
        for inst in instances().iter().take(5) {
            let (_space, r) = generate(inst);
            let misf_rel = r.to_misf().to_relation();
            if misf_rel != r {
                found = true;
                break;
            }
        }
        assert!(found, "the family must exercise true BR flexibility");
    }
}
