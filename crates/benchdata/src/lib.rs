//! # brel-benchdata
//!
//! Workload generators for the BREL reproduction's benchmark harness.
//!
//! The paper evaluates on two input families that are not publicly
//! archived: a set of Boolean-relation benchmarks (`int*`, `b9`, `vtx`,
//! `gr`, `she*`, …) used in Table 2, and the ISCAS'89 sequential circuits
//! used in Table 3. This crate synthesizes stand-ins with the same
//! interface shape (same input/output/flip-flop counts, same *kind* of
//! flexibility), as documented in `DESIGN.md`:
//!
//! * [`figures`] — the exact small relations used in the paper's worked
//!   examples (Fig. 1, Fig. 5, Fig. 7, Fig. 8, Fig. 10, Example 8.1),
//! * [`table2`] — Boolean relations generated from cuts of reconvergent
//!   logic (a hidden function composed with a hidden gate), matching the
//!   PI/PO counts reported in Table 2,
//! * [`iscas_like`] — synthetic sequential circuits with the PI/PO/FF
//!   counts of the ISCAS'89 benchmarks referenced in Table 3,
//! * [`random_relation`] — parameterized random well-defined relations for
//!   property-based tests and scaling studies.
//!
//! All generators are deterministic for a given seed so benchmark runs are
//! reproducible.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod figures;
pub mod iscas_like;
pub mod random_relation;
pub mod table2;

pub use random_relation::{random_well_defined_relation, random_well_defined_relation_with};
