//! Synthetic sequential circuits with the interface shape (primary inputs,
//! primary outputs, flip-flops) of the ISCAS'89 benchmarks used in Table 3
//! of the paper.
//!
//! The original netlists are not redistributed here; instead, each instance
//! is generated deterministically as a random reconvergent multilevel
//! network: every next-state and output function is a small multilevel
//! expression over a bounded random subset of the combinational inputs.
//! This preserves what the Table 3 experiment actually measures — how much
//! the mux-latch decomposition (a per-flip-flop BREL run) reshapes the
//! next-state logic — while keeping every instance solvable on a laptop.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use brel_sop::{Cover, Cube, CubeValue};

use brel_network::{Network, SignalId};

/// One named sequential instance of the Table 3 family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IscasInstance {
    /// Benchmark name (matching the rows of Table 3).
    pub name: &'static str,
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Number of primary outputs.
    pub num_outputs: usize,
    /// Number of flip-flops.
    pub num_flip_flops: usize,
    /// Generator seed.
    pub seed: u64,
}

/// The instance list, with the PI/PO/FF counts of the corresponding
/// ISCAS'89 circuits (the structural contents are synthetic).
pub fn instances() -> Vec<IscasInstance> {
    vec![
        IscasInstance {
            name: "s27",
            num_inputs: 4,
            num_outputs: 1,
            num_flip_flops: 3,
            seed: 2027,
        },
        IscasInstance {
            name: "s208",
            num_inputs: 10,
            num_outputs: 1,
            num_flip_flops: 8,
            seed: 2208,
        },
        IscasInstance {
            name: "s298",
            num_inputs: 3,
            num_outputs: 6,
            num_flip_flops: 14,
            seed: 2298,
        },
        IscasInstance {
            name: "s349",
            num_inputs: 9,
            num_outputs: 11,
            num_flip_flops: 15,
            seed: 2349,
        },
        IscasInstance {
            name: "s382",
            num_inputs: 3,
            num_outputs: 6,
            num_flip_flops: 21,
            seed: 2382,
        },
        IscasInstance {
            name: "s420",
            num_inputs: 18,
            num_outputs: 1,
            num_flip_flops: 16,
            seed: 2420,
        },
        IscasInstance {
            name: "s444",
            num_inputs: 3,
            num_outputs: 6,
            num_flip_flops: 21,
            seed: 2444,
        },
        IscasInstance {
            name: "s526",
            num_inputs: 3,
            num_outputs: 6,
            num_flip_flops: 21,
            seed: 2526,
        },
        IscasInstance {
            name: "s641",
            num_inputs: 35,
            num_outputs: 24,
            num_flip_flops: 19,
            seed: 2641,
        },
        IscasInstance {
            name: "s832",
            num_inputs: 18,
            num_outputs: 19,
            num_flip_flops: 5,
            seed: 2832,
        },
        IscasInstance {
            name: "s953",
            num_inputs: 16,
            num_outputs: 23,
            num_flip_flops: 29,
            seed: 2953,
        },
        IscasInstance {
            name: "s1196",
            num_inputs: 14,
            num_outputs: 14,
            num_flip_flops: 18,
            seed: 3196,
        },
        IscasInstance {
            name: "s1488",
            num_inputs: 8,
            num_outputs: 19,
            num_flip_flops: 6,
            seed: 3488,
        },
        IscasInstance {
            name: "sbc",
            num_inputs: 40,
            num_outputs: 56,
            num_flip_flops: 28,
            seed: 4001,
        },
    ]
}

/// Looks up an instance by name.
pub fn instance(name: &str) -> Option<IscasInstance> {
    instances().into_iter().find(|i| i.name == name)
}

/// Maximum number of distinct fanins of any generated next-state or output
/// function: keeps every per-flip-flop Boolean relation comfortably small.
pub const MAX_SUPPORT: usize = 6;

/// Generates the sequential network of one instance.
pub fn generate(instance: &IscasInstance) -> Network {
    let mut rng = StdRng::seed_from_u64(instance.seed);
    let mut net = Network::new(instance.name);
    let mut cis: Vec<SignalId> = Vec::new();
    for i in 0..instance.num_inputs {
        cis.push(net.add_input(&format!("pi{i}")).expect("fresh name"));
    }
    // Flip-flop outputs are combinational inputs too; create them with
    // placeholder next-state inputs and patch once the logic exists.
    let mut latch_outputs = Vec::new();
    for i in 0..instance.num_flip_flops {
        let placeholder = net
            .add_constant(&format!("__ph{i}"), false)
            .expect("fresh name");
        let q = net
            .add_latch(placeholder, &format!("q{i}"), rng.gen_bool(0.2))
            .expect("fresh name");
        latch_outputs.push(q);
        cis.push(q);
    }

    // Next-state functions.
    for (i, _q) in latch_outputs.iter().enumerate() {
        let node = random_node(&mut net, &cis, &mut rng, &format!("ns{i}"));
        net.set_latch_input(i, node);
    }
    // Primary outputs.
    for i in 0..instance.num_outputs {
        let node = random_node(&mut net, &cis, &mut rng, &format!("po{i}"));
        net.add_output(node);
    }
    net
}

/// Adds one random two-level node over a random bounded subset of `cis`.
fn random_node(net: &mut Network, cis: &[SignalId], rng: &mut StdRng, name: &str) -> SignalId {
    let support_size = rng.gen_range(2..=MAX_SUPPORT.min(cis.len()));
    // Choose distinct fanins.
    let mut fanins: Vec<SignalId> = Vec::new();
    while fanins.len() < support_size {
        let candidate = cis[rng.gen_range(0..cis.len())];
        if !fanins.contains(&candidate) {
            fanins.push(candidate);
        }
    }
    // Reject covers that collapse to a constant (e.g. "1-" + "0-"): every
    // generated function must have nonempty support, which the benchdata
    // tests and the decomposition flow rely on. (Individual fanins may
    // still be dead — only constancy is excluded.)
    let cover = loop {
        let num_cubes = rng.gen_range(2..=4);
        let mut cover = Cover::empty(support_size);
        for _ in 0..num_cubes {
            let mut values = vec![CubeValue::DontCare; support_size];
            let lits = rng.gen_range(1..=support_size);
            for _ in 0..lits {
                let pos = rng.gen_range(0..support_size);
                values[pos] = if rng.gen_bool(0.5) {
                    CubeValue::One
                } else {
                    CubeValue::Zero
                };
            }
            cover.push(Cube::new(values)).expect("width matches");
        }
        cover.remove_contained_cubes();
        if !cover.is_empty() && !cover.is_tautology() {
            break cover;
        }
    };
    net.add_node(name, fanins, cover).expect("fresh name")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_have_the_declared_interface() {
        for inst in instances().into_iter().take(6) {
            let net = generate(&inst);
            assert_eq!(net.primary_inputs().len(), inst.num_inputs, "{}", inst.name);
            assert_eq!(
                net.primary_outputs().len(),
                inst.num_outputs,
                "{}",
                inst.name
            );
            assert_eq!(net.latches().len(), inst.num_flip_flops, "{}", inst.name);
            assert!(net.topological_order().is_ok());
        }
    }

    #[test]
    fn next_state_functions_have_bounded_support() {
        let inst = instance("s298").unwrap();
        let net = generate(&inst);
        let (_mgr, _vars, funcs) = net.global_functions().unwrap();
        for latch in net.latches() {
            let support = funcs[&latch.input].support().len();
            assert!(support <= MAX_SUPPORT, "support {support} too large");
            assert!(support >= 1);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let inst = instance("s27").unwrap();
        let a = generate(&inst);
        let b = generate(&inst);
        assert_eq!(a.literal_count(), b.literal_count());
        assert_eq!(a.num_nodes(), b.num_nodes());
    }

    #[test]
    fn instance_lookup_matches_table3_rows() {
        assert_eq!(instances().len(), 14);
        let s641 = instance("s641").unwrap();
        assert_eq!(s641.num_inputs, 35);
        assert_eq!(s641.num_flip_flops, 19);
        assert!(instance("s9999").is_none());
    }
}
