//! The exact small relations used in the paper's worked examples.

use brel_relation::{BooleanRelation, RelationSpace};

/// Fig. 1a: the 2-input, 2-output relation whose flexibility at vertex `10`
/// ({00, 11}) cannot be expressed with don't cares.
pub fn fig1() -> (RelationSpace, BooleanRelation) {
    let space = RelationSpace::new(2, 2);
    let r =
        BooleanRelation::from_table(&space, "00 : {00}\n01 : {00}\n10 : {00, 11}\n11 : {10, 11}")
            .expect("static table");
    (space, r)
}

/// Fig. 5 / Example 6.1: the relation on which the quick solver produces an
/// unbalanced solution because the first output steals the flexibility.
pub fn fig5() -> (RelationSpace, BooleanRelation) {
    let space = RelationSpace::with_names(&["a", "b"], &["x", "y"]);
    let r =
        BooleanRelation::from_table(&space, "00 : {00, 11}\n01 : {10}\n10 : {01, 10}\n11 : {11}")
            .expect("static table");
    (space, r)
}

/// Fig. 7 / Example 6.2: a 3-input, 2-output relation solved by BREL in two
/// recursions (the first MISF minimization conflicts on two vertices).
pub fn fig7() -> (RelationSpace, BooleanRelation) {
    let space = RelationSpace::with_names(&["a", "b", "c"], &["x", "y"]);
    let r = BooleanRelation::from_table(
        &space,
        "000 : {00, 10}\n001 : {01, 10}\n010 : {01, 10}\n011 : {11}\n\
         100 : {00, 10}\n101 : {01, 10}\n110 : {11}\n111 : {01, 11}",
    )
    .expect("static table");
    (space, r)
}

/// Fig. 8: a relation symmetric in its two outputs (`x` and `y` are
/// interchangeable), whose split children are output permutations of each
/// other (used by the symmetry-pruning tests).
pub fn fig8() -> (RelationSpace, BooleanRelation) {
    let space = RelationSpace::with_names(&["a", "b"], &["x", "y"]);
    let r = BooleanRelation::from_table(
        &space,
        "00 : {01, 10}\n01 : {01, 10}\n10 : {01, 10}\n11 : {11}",
    )
    .expect("static table");
    (space, r)
}

/// Fig. 10 / Section 9.1: the relation on which the reduce–expand–
/// irredundant local search (gyocro) gets trapped in the quick solver's
/// local minimum `(x ⇔ 1)(y ⇔ a·b + ā·b̄)` while the optimum is
/// `(x ⇔ b)(y ⇔ a)`.
pub fn fig10() -> (RelationSpace, BooleanRelation) {
    fig5()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_figure_relations_are_well_defined_and_not_functions() {
        for (name, (_s, r)) in [
            ("fig1", fig1()),
            ("fig5", fig5()),
            ("fig7", fig7()),
            ("fig8", fig8()),
        ] {
            assert!(r.is_well_defined(), "{name} must be well defined");
            assert!(!r.is_function(), "{name} must have flexibility");
        }
    }

    #[test]
    fn fig1_has_non_cube_flexibility() {
        let (_space, r) = fig1();
        // Vertex 10 maps to {00, 11}: the projection of both outputs is {0,1}
        // there, yet the image is not the full cross product {00,01,10,11}.
        assert_eq!(r.image(&[true, false]).unwrap().len(), 2);
        let misf = r.to_misf().to_relation();
        assert_eq!(misf.image(&[true, false]).unwrap().len(), 4);
    }

    #[test]
    fn fig10_and_fig5_share_the_same_relation() {
        let (_s1, a) = fig5();
        let (_s2, b) = fig10();
        assert_eq!(a.num_pairs(), b.num_pairs());
    }
}
