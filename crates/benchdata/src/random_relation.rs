//! Parameterized random well-defined Boolean relations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use brel_relation::{BooleanRelation, RelationSpace};

/// Generates a random *well-defined* Boolean relation over `num_inputs`
/// inputs and `num_outputs` outputs.
///
/// Every input vertex receives at least one output vertex; with probability
/// `extra_pair_prob` additional output vertices are related, which creates
/// the kind of non-cube-expressible flexibility the BREL solver exists for.
/// The construction enumerates the input space, so `num_inputs` is limited
/// to 16.
///
/// # Panics
///
/// Panics if `num_inputs > 16` or `num_outputs > 16`.
pub fn random_well_defined_relation(
    num_inputs: usize,
    num_outputs: usize,
    extra_pair_prob: f64,
    seed: u64,
) -> (RelationSpace, BooleanRelation) {
    random_in_space(
        RelationSpace::new(num_inputs, num_outputs),
        extra_pair_prob,
        seed,
    )
}

/// Like [`random_well_defined_relation`], but the space's BDD manager is
/// built with an explicit [`brel_bdd::BddConfig`]. Oracle tests use this to
/// pin GC / reorder behaviour, which since the config redesign can only be
/// chosen at construction.
pub fn random_well_defined_relation_with(
    num_inputs: usize,
    num_outputs: usize,
    extra_pair_prob: f64,
    seed: u64,
    config: brel_bdd::BddConfig,
) -> (RelationSpace, BooleanRelation) {
    random_in_space(
        RelationSpace::with_config(num_inputs, num_outputs, 1024, config),
        extra_pair_prob,
        seed,
    )
}

fn random_in_space(
    space: RelationSpace,
    extra_pair_prob: f64,
    seed: u64,
) -> (RelationSpace, BooleanRelation) {
    let num_inputs = space.num_inputs();
    let num_outputs = space.num_outputs();
    assert!(num_inputs <= 16, "input space must stay enumerable");
    assert!(num_outputs <= 16, "output space must stay enumerable");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pairs: Vec<(Vec<bool>, Vec<bool>)> = Vec::new();
    let output_count = 1u64 << num_outputs;
    for input in space.enumerate_inputs() {
        // One mandatory image vertex.
        let first = rng.gen_range(0..output_count);
        pairs.push((input.clone(), to_bits(first, num_outputs)));
        // Optional extra vertices.
        for candidate in 0..output_count {
            if candidate != first && rng.gen_bool(extra_pair_prob) {
                pairs.push((input.clone(), to_bits(candidate, num_outputs)));
            }
        }
    }
    let relation = BooleanRelation::from_pairs(&space, &pairs).expect("arities match");
    (space, relation)
}

fn to_bits(value: u64, width: usize) -> Vec<bool> {
    (0..width).map(|i| value & (1 << i) != 0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_relations_are_well_defined() {
        for seed in 0..5 {
            let (_space, r) = random_well_defined_relation(4, 3, 0.2, seed);
            assert!(r.is_well_defined());
            assert!(r.num_pairs() >= 1 << 4);
        }
    }

    #[test]
    fn zero_extra_probability_yields_a_function() {
        let (_space, r) = random_well_defined_relation(3, 2, 0.0, 7);
        assert!(r.is_function());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let (_s1, a) = random_well_defined_relation(4, 2, 0.3, 42);
        let (_s2, b) = random_well_defined_relation(4, 2, 0.3, 42);
        assert_eq!(a.num_pairs(), b.num_pairs());
        let (_s3, c) = random_well_defined_relation(4, 2, 0.3, 43);
        // Different seeds almost surely differ in the number of pairs.
        assert!(a.num_pairs() != c.num_pairs() || a.to_table().unwrap() != c.to_table().unwrap());
    }
}
