//! brel-serve: a fault-contained solver daemon for BREL jobs.
//!
//! This crate turns the batch engine into a long-running service without
//! adding any dependencies: a std-only TCP daemon speaking length-prefixed
//! JSON frames, backed by the warm-session pool and the fault-policy
//! machinery the engine already has.
//!
//! The architecture is four layers, bottom up:
//!
//! - [`json`] — a strict hand-rolled JSON parser (the write side reuses
//!   [`brel_engine::Json::render`]).
//! - [`protocol`] — the frame vocabulary ([`Frame`]) and its total codec:
//!   `submit` / `cancel` / `stats` / `shutdown` inbound, `admitted` /
//!   `rejected` / `incumbent` / `final` / `stats` / `error` outbound,
//!   each a 4-byte big-endian length prefix plus a UTF-8 JSON object.
//! - [`queue`] — bounded admission with per-client budgets and
//!   earliest-deadline-first dispatch; overload is shed *explicitly* with
//!   a jittered `retry_after_ms` hint instead of queuing without bound.
//! - [`server`] — the daemon proper: one accept thread, one reader plus
//!   one writer thread per connection, N worker threads each owning a
//!   [`brel_engine::WarmSession`]. Faults stay contained exactly as in
//!   batch mode (panic isolation, quarantine, degrade-don't-die), and
//!   shutdown is a drain: stop admitting, cancel cooperatively, emit a
//!   `final` frame for every admitted job, join every thread, exit.
//!
//! [`client`] holds the blocking client and the synthetic load driver the
//! `brel_serve` benchmark binary builds on.
//!
//! Anytime semantics carry through end to end: every improvement the
//! search finds is streamed to the submitting client as an `incumbent`
//! frame, so a client that cancels — or is cancelled by its deadline —
//! still walks away with the best solution seen so far.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod json;
pub mod protocol;
pub mod queue;
pub mod server;

pub use client::{drive, percentile_us, Client, LoadOptions, LoadReport, SolveOutcome};
pub use protocol::{
    read_frame, write_frame, FinalReport, Frame, FrameReader, StatsSnapshot, Submit,
    MAX_FRAME_BYTES,
};
pub use queue::{Admission, AdmissionConfig, JobQueue, QueuedJob};
pub use server::{DrainReport, ServeConfig, Server};
