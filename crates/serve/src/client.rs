//! A blocking protocol client and the synthetic load driver.
//!
//! [`Client`] is the nuts-and-bolts side: connect, submit, stream, cancel,
//! drain. [`drive`] is the load harness — N client threads hammering a
//! daemon with a corpus under mixed deadlines, opportunistic mid-stream
//! cancels and backoff-respecting retry behaviour, producing the latency
//! samples `BENCH_serve.json` records.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use brel_engine::JobSpec;

use crate::protocol::{read_frame, write_frame, FinalReport, Frame, StatsSnapshot, Submit};

/// A blocking client over one TCP connection.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

/// What one submission produced, as seen from the client.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// The server ticket (`None` when the job was shed).
    pub ticket: Option<u64>,
    /// Shed details when rejected.
    pub rejected: Option<(String, u64)>,
    /// Streamed `(cost, explored)` incumbents, in arrival order.
    pub incumbents: Vec<(u64, u64)>,
    /// The final report (`None` when the job was shed).
    pub final_report: Option<FinalReport>,
    /// Client-measured submit-to-decision latency, microseconds.
    pub admission_us: u64,
    /// Client-measured submit-to-first-incumbent latency, microseconds.
    pub first_incumbent_us: Option<u64>,
}

impl Client {
    /// Connects with a generous read timeout (a stuck daemon fails tests
    /// instead of hanging them).
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        Ok(Client { stream })
    }

    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// Propagates the write failure.
    pub fn send(&mut self, frame: &Frame) -> io::Result<()> {
        write_frame(&mut self.stream, frame)
    }

    /// Blocking read of the next frame.
    ///
    /// # Errors
    ///
    /// Propagates the read failure (including the read timeout).
    pub fn recv(&mut self) -> io::Result<Frame> {
        read_frame(&mut self.stream)
    }

    /// Cancels a ticket (fire-and-forget; the `Final` still arrives).
    ///
    /// # Errors
    ///
    /// Propagates the write failure.
    pub fn cancel(&mut self, job: u64) -> io::Result<()> {
        self.send(&Frame::Cancel { job })
    }

    /// Requests and returns a stats snapshot. Must not be called while a
    /// solve of this connection is still streaming (frames would
    /// interleave).
    ///
    /// # Errors
    ///
    /// `InvalidData` if the daemon answers with something else.
    pub fn stats(&mut self) -> io::Result<StatsSnapshot> {
        self.send(&Frame::StatsRequest)?;
        match self.recv()? {
            Frame::Stats(stats) => Ok(stats),
            other => Err(unexpected(&other)),
        }
    }

    /// Requests a drain shutdown and blocks until the final `Stats` frame
    /// arrives (skipping any late `Final`/`Incumbent` frames of this
    /// connection's own jobs).
    ///
    /// # Errors
    ///
    /// Propagates read/write failures.
    pub fn shutdown_and_wait(&mut self) -> io::Result<StatsSnapshot> {
        self.send(&Frame::Shutdown)?;
        loop {
            match self.recv()? {
                Frame::Stats(stats) => return Ok(stats),
                Frame::Final(_) | Frame::Incumbent { .. } => {}
                other => return Err(unexpected(&other)),
            }
        }
    }

    /// Submits a job and pumps frames to completion: collects the
    /// admission decision, every streamed incumbent and the final report.
    /// With `cancel_after_first_incumbent` the client sends a `cancel` as
    /// soon as the first incumbent arrives — the mid-stream cancel path.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; a shed submission is an `Ok` outcome with
    /// `rejected` set.
    pub fn solve(
        &mut self,
        job: &JobSpec,
        client_id: &str,
        deadline_ms: Option<u64>,
        max_cost: Option<u64>,
        cancel_after_first_incumbent: bool,
    ) -> io::Result<SolveOutcome> {
        let submitted = Instant::now();
        self.send(&Frame::Submit(Submit {
            client: client_id.to_string(),
            job: job.clone(),
            deadline_ms,
            max_cost,
        }))?;

        let ticket = match self.recv()? {
            Frame::Admitted { job, .. } => job,
            Frame::Rejected {
                reason,
                retry_after_ms,
            } => {
                return Ok(SolveOutcome {
                    ticket: None,
                    rejected: Some((reason, retry_after_ms)),
                    incumbents: Vec::new(),
                    final_report: None,
                    admission_us: submitted.elapsed().as_micros() as u64,
                    first_incumbent_us: None,
                })
            }
            other => return Err(unexpected(&other)),
        };
        let admission_us = submitted.elapsed().as_micros() as u64;

        let mut incumbents = Vec::new();
        let mut first_incumbent_us = None;
        let mut cancelled = false;
        loop {
            match self.recv()? {
                Frame::Incumbent {
                    job,
                    cost,
                    explored,
                } if job == ticket => {
                    if first_incumbent_us.is_none() {
                        first_incumbent_us = Some(submitted.elapsed().as_micros() as u64);
                    }
                    incumbents.push((cost, explored));
                    if cancel_after_first_incumbent && !cancelled {
                        cancelled = true;
                        self.cancel(ticket)?;
                    }
                }
                Frame::Final(report) if report.job == ticket => {
                    return Ok(SolveOutcome {
                        ticket: Some(ticket),
                        rejected: None,
                        incumbents,
                        final_report: Some(report),
                        admission_us,
                        first_incumbent_us,
                    })
                }
                // Frames for other tickets of this connection (late
                // finals after a cancel race) are skipped.
                Frame::Incumbent { .. } | Frame::Final(_) => {}
                other => return Err(unexpected(&other)),
            }
        }
    }
}

fn unexpected(frame: &Frame) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected frame: {frame:?}"),
    )
}

/// Shape of one synthetic load run.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Concurrent client connections.
    pub clients: usize,
    /// Submissions per client (cycling through the corpus).
    pub jobs_per_client: usize,
    /// Deadlines cycled across submissions (`None` = unbounded).
    pub deadlines_ms: Vec<Option<u64>>,
    /// Cancel after the first incumbent on every Nth submission
    /// (0 = never).
    pub cancel_every: usize,
    /// On a shed, retry once after the server's backoff hint
    /// (exercises the backoff contract end to end).
    pub retry_after_shed: bool,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            clients: 8,
            jobs_per_client: 4,
            deadlines_ms: vec![None, Some(400), Some(100)],
            cancel_every: 5,
            retry_after_shed: true,
        }
    }
}

/// Aggregated results of one load run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Total submissions sent (retries included).
    pub submitted: u64,
    /// Admissions.
    pub admitted: u64,
    /// Sheds observed.
    pub shed: u64,
    /// Final frames received.
    pub finals: u64,
    /// Finals carrying a degraded winner.
    pub degraded: u64,
    /// Finals whose fault marks a cooperative cancellation.
    pub cancelled_finals: u64,
    /// Mid-stream cancels the driver sent.
    pub cancels_sent: u64,
    /// Incumbent frames streamed to the drivers.
    pub incumbents: u64,
    /// Client-measured admission latencies, microseconds.
    pub admission_us: Vec<u64>,
    /// Client-measured first-incumbent latencies, microseconds.
    pub first_incumbent_us: Vec<u64>,
    /// I/O errors client threads hit (0 in a healthy run).
    pub io_errors: u64,
}

impl LoadReport {
    fn merge(&mut self, other: LoadReport) {
        self.submitted += other.submitted;
        self.admitted += other.admitted;
        self.shed += other.shed;
        self.finals += other.finals;
        self.degraded += other.degraded;
        self.cancelled_finals += other.cancelled_finals;
        self.cancels_sent += other.cancels_sent;
        self.incumbents += other.incumbents;
        self.admission_us.extend(other.admission_us);
        self.first_incumbent_us.extend(other.first_incumbent_us);
        self.io_errors += other.io_errors;
    }
}

/// Runs the synthetic load: `options.clients` threads, each with its own
/// connection and client id, submitting `jobs_per_client` jobs from the
/// corpus (round-robin, offset per client) under the cycled deadlines.
pub fn drive(addr: SocketAddr, corpus: &[JobSpec], options: &LoadOptions) -> LoadReport {
    assert!(!corpus.is_empty(), "load driver needs a non-empty corpus");
    let threads: Vec<_> = (0..options.clients)
        .map(|client_index| {
            let corpus = corpus.to_vec();
            let options = options.clone();
            std::thread::spawn(move || drive_one(addr, &corpus, &options, client_index))
        })
        .collect();
    let mut merged = LoadReport::default();
    for thread in threads {
        if let Ok(report) = thread.join() {
            merged.merge(report);
        }
    }
    merged
}

fn drive_one(
    addr: SocketAddr,
    corpus: &[JobSpec],
    options: &LoadOptions,
    client_index: usize,
) -> LoadReport {
    let mut report = LoadReport::default();
    let client_id = format!("client-{client_index}");
    let Ok(mut client) = Client::connect(addr) else {
        report.io_errors += 1;
        return report;
    };
    for submission in 0..options.jobs_per_client {
        let job = &corpus[(client_index + submission) % corpus.len()];
        let deadline_ms = if options.deadlines_ms.is_empty() {
            None
        } else {
            options.deadlines_ms[submission % options.deadlines_ms.len()]
        };
        let cancel = options.cancel_every != 0
            && (client_index + submission).is_multiple_of(options.cancel_every);
        let mut attempts = 0;
        loop {
            attempts += 1;
            report.submitted += 1;
            match client.solve(job, &client_id, deadline_ms, None, cancel) {
                Ok(outcome) => {
                    report.admission_us.push(outcome.admission_us);
                    if let Some((_, retry_after_ms)) = outcome.rejected {
                        report.shed += 1;
                        if options.retry_after_shed && attempts == 1 {
                            std::thread::sleep(Duration::from_millis(retry_after_ms));
                            continue;
                        }
                        break;
                    }
                    report.admitted += 1;
                    report.incumbents += outcome.incumbents.len() as u64;
                    if cancel && !outcome.incumbents.is_empty() {
                        report.cancels_sent += 1;
                    }
                    if let Some(us) = outcome.first_incumbent_us {
                        report.first_incumbent_us.push(us);
                    }
                    if let Some(final_report) = outcome.final_report {
                        report.finals += 1;
                        if final_report.degraded {
                            report.degraded += 1;
                        }
                        if final_report
                            .fault
                            .as_deref()
                            .is_some_and(|f| f.contains("cancelled"))
                        {
                            report.cancelled_finals += 1;
                        }
                    }
                    break;
                }
                Err(_) => {
                    report.io_errors += 1;
                    break;
                }
            }
        }
    }
    report
}

/// Percentile over an unsorted sample set (nearest-rank); 0 for empty.
pub fn percentile_us(samples: &[u64], pct: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let samples = [50u64, 10, 40, 20, 30];
        assert_eq!(percentile_us(&samples, 50.0), 30);
        assert_eq!(percentile_us(&samples, 99.0), 50);
        assert_eq!(percentile_us(&samples, 1.0), 10);
        assert_eq!(percentile_us(&[], 99.0), 0);
    }
}
