//! A hand-rolled JSON parser producing [`brel_engine::Json`] values.
//!
//! The workspace has no registry access, so the wire protocol cannot lean
//! on serde; the write side already exists ([`Json::render`]) and this
//! module supplies the read side. It is a strict recursive-descent parser
//! over the subset `Json` can represent: non-negative integers parse as
//! [`Json::UInt`], every other number (negative, fractional, exponent) as
//! [`Json::Float`], and duplicate object keys are rejected rather than
//! silently last-wins — a malformed frame must fail loudly at the
//! protocol boundary, not deep inside a job.

use brel_engine::Json;

/// Maximum container nesting the parser accepts. Protocol frames are
/// three levels deep; the cap turns a hostile deeply-nested payload into
/// a parse error instead of a stack overflow.
const MAX_DEPTH: usize = 64;

/// Parses one JSON value, requiring the whole input to be consumed
/// (trailing whitespace allowed).
///
/// # Errors
///
/// Returns a human-readable message with the byte offset of the problem.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => *pos += 1,
            _ => break,
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(other) => Err(format!("unexpected byte {other:#04x} at byte {pos}")),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos} (expected `{word}`)"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if *pos == int_start {
        return Err(format!("invalid number at byte {start}"));
    }
    // Leading zeros are invalid JSON ("01"), but a lone "0" is fine.
    if bytes[int_start] == b'0' && *pos - int_start > 1 {
        return Err(format!("leading zero in number at byte {start}"));
    }
    let mut integral = true;
    if bytes.get(*pos) == Some(&b'.') {
        integral = false;
        *pos += 1;
        let frac_start = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err(format!("missing digits after `.` at byte {start}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        integral = false;
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err(format!("missing digits in exponent at byte {start}"));
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    if integral && bytes[start] != b'-' {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Json::UInt(n));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| format!("unrepresentable number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    let mut run_start = *pos;
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                out.push_str(str_run(bytes, run_start, *pos)?);
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                out.push_str(str_run(bytes, run_start, *pos)?);
                *pos += 1;
                let escape = *bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                *pos += 1;
                match escape {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => out.push(parse_unicode_escape(bytes, pos)?),
                    other => return Err(format!("invalid escape `\\{}`", other as char)),
                }
                run_start = *pos;
            }
            Some(b) if *b < 0x20 => {
                return Err(format!("unescaped control byte {b:#04x} at byte {pos}"));
            }
            Some(_) => *pos += 1,
        }
    }
}

fn str_run(bytes: &[u8], start: usize, end: usize) -> Result<&str, String> {
    std::str::from_utf8(&bytes[start..end]).map_err(|_| "invalid UTF-8 in string".to_string())
}

fn parse_unicode_escape(bytes: &[u8], pos: &mut usize) -> Result<char, String> {
    let unit = parse_hex4(bytes, pos)?;
    // Surrogate pairs: a high surrogate must be followed by `\uXXXX` with a
    // low surrogate; anything else is malformed.
    if (0xd800..0xdc00).contains(&unit) {
        if bytes.get(*pos) != Some(&b'\\') || bytes.get(*pos + 1) != Some(&b'u') {
            return Err("high surrogate without a following low surrogate".to_string());
        }
        *pos += 2;
        let low = parse_hex4(bytes, pos)?;
        if !(0xdc00..0xe000).contains(&low) {
            return Err("invalid low surrogate".to_string());
        }
        let code = 0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
        return char::from_u32(code).ok_or_else(|| "invalid surrogate pair".to_string());
    }
    if (0xdc00..0xe000).contains(&unit) {
        return Err("unpaired low surrogate".to_string());
    }
    char::from_u32(unit).ok_or_else(|| "invalid unicode escape".to_string())
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let mut value = 0u32;
    for _ in 0..4 {
        let digit = bytes
            .get(*pos)
            .and_then(|b| (*b as char).to_digit(16))
            .ok_or_else(|| format!("invalid \\u escape at byte {pos}"))?;
        value = value * 16 + digit;
        *pos += 1;
    }
    Ok(value)
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // consume `[`
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // consume `{`
    let mut fields: Vec<(String, Json)> = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let key = parse_string(bytes, pos)?;
        if fields.iter().any(|(k, _)| *k == key) {
            return Err(format!("duplicate object key `{key}`"));
        }
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::UInt(0)),
            ("18446744073709551615", Json::UInt(u64::MAX)),
            ("-3.5", Json::Float(-3.5)),
            ("1e3", Json::Float(1000.0)),
            ("\"hi\"", Json::str("hi")),
        ] {
            assert_eq!(parse(text).unwrap(), value, "{text}");
        }
    }

    #[test]
    fn containers_and_escapes_round_trip() {
        let value = Json::object(vec![
            ("name", Json::str("int1 \"quoted\" \\ \n \u{1f600} ☃")),
            ("rows", Json::Array(vec![Json::UInt(1), Json::Null])),
            ("nested", Json::object(vec![("deep", Json::Bool(false))])),
        ]);
        assert_eq!(parse(&value.render()).unwrap(), value);
        assert_eq!(parse(&value.render_pretty()).unwrap(), value);
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap(), Json::str("\u{1f600}"));
        assert!(parse("\"\\ud83d\"").is_err());
        assert!(parse("\"\\ude00\"").is_err());
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "01",
            "1.",
            "1e",
            "{\"a\":1,\"a\":2}",
            "nul",
            "\"\\q\"",
            "[1] x",
            "+1",
            "\u{0001}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn whitespace_is_tolerated_everywhere() {
        let parsed = parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } \n").unwrap();
        assert_eq!(parsed.get("a").and_then(Json::as_array).unwrap().len(), 2);
        assert_eq!(parsed.get("b"), Some(&Json::Null));
    }
}
