//! The daemon: TCP accept loop, per-connection frame pumps, and a warm
//! worker pool running admitted jobs under cooperative cancellation.
//!
//! Fault containment is layered:
//!
//! * every solve runs through [`brel_engine::run_job_controlled`], so
//!   panics, quota trips and deadlines are caught at the attempt boundary
//!   and classified — a poisoned or faulted session is quarantined and
//!   rebuilt cold, never rehydrated into the next job;
//! * a cancelled or disconnected client flips the job's [`CancelToken`];
//!   the exploration stops at the next step boundary and the client (if
//!   still there) receives a `Final` carrying the best incumbent;
//! * connections are reaped when idle past the configured timeout, and a
//!   reader timeout can never desynchronize a frame mid-read
//!   ([`crate::protocol::FrameReader`] buffers partial bytes);
//! * shutdown is drain-style: stop admitting, cancel what is still
//!   queued (it degrades to its quick seed), let running jobs finish or
//!   degrade, flush every `Final`, answer the shutdown requester with one
//!   last `Stats` frame, then join every thread — the caller gets the
//!   final counters and the guarantee that no worker leaked.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use brel_core::CancelToken;
use brel_engine::{
    run_job_controlled, run_job_wide_controlled, FaultPlan, JobControl, WarmSession, WideOptions,
};
use brel_obs::Category;

use crate::protocol::{Frame, FrameReader, StatsSnapshot, Submit};
use crate::queue::{Admission, AdmissionConfig, JobQueue, QueuedJob};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; `127.0.0.1:0` picks a free port (see
    /// [`Server::addr`]).
    pub addr: String,
    /// Worker threads, each owning one persistent [`WarmSession`].
    pub workers: usize,
    /// Admission policy.
    pub admission: AdmissionConfig,
    /// Poll tick for the accept loop, connection readers and idle worker
    /// waits.
    pub poll_ms: u64,
    /// Connections idle (no complete frame) longer than this are reaped.
    pub idle_timeout_ms: u64,
    /// Optional seeded fault plan for chaos runs: injections fire into
    /// jobs whose names the plan targets, exactly as in `engine_batch
    /// --chaos`.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Solve BREL jobs with the engine's wide (work-stealing) search on
    /// `(search workers, options)` instead of the narrow walk. Each serve
    /// worker owns its own set of persistent search sessions; the shared
    /// incumbent bound streams *every* worker's improvement out as an
    /// [`Frame::Incumbent`], strictly decreasing. `None` keeps narrow.
    pub wide: Option<(usize, WideOptions)>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(4))
                .unwrap_or(2),
            admission: AdmissionConfig::default(),
            poll_ms: 10,
            idle_timeout_ms: 30_000,
            fault_plan: None,
            wide: None,
        }
    }
}

/// Latency samples collected server-side, returned by a drain.
#[derive(Debug, Clone, Default)]
pub struct DrainReport {
    /// Final counters.
    pub stats: StatsSnapshot,
    /// Per-job queue wait, microseconds.
    pub queue_wait_us: Vec<u64>,
    /// Per-job submit-to-first-incumbent latency, microseconds.
    pub first_incumbent_us: Vec<u64>,
}

#[derive(Debug, Default)]
struct Counters {
    admitted: AtomicU64,
    shed: AtomicU64,
    cancelled: AtomicU64,
    drained: AtomicU64,
    completed: AtomicU64,
    degraded: AtomicU64,
    warm_reuses: AtomicU64,
    cold_builds: AtomicU64,
    quarantines: AtomicU64,
}

#[derive(Debug, Default)]
struct Latencies {
    queue_wait_us: Vec<u64>,
    first_incumbent_us: Vec<u64>,
}

#[derive(Debug)]
struct Inflight {
    cancel: CancelToken,
    conn: u64,
}

struct Shared {
    config: ServeConfig,
    queue: JobQueue,
    counters: Counters,
    latencies: Mutex<Latencies>,
    /// Admitted-but-not-final jobs, keyed by ticket.
    inflight: Mutex<HashMap<u64, Inflight>>,
    /// Outbound channels of connections that requested shutdown; each
    /// gets the final `Stats` frame once the drain completes.
    shutdown_watchers: Mutex<Vec<Sender<Frame>>>,
    next_ticket: AtomicU64,
    next_conn: AtomicU64,
    stopping: AtomicBool,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("queue_depth", &self.queue.depth())
            .finish_non_exhaustive()
    }
}

impl Shared {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            admitted: self.counters.admitted.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            cancelled: self.counters.cancelled.load(Ordering::Relaxed),
            drained: self.counters.drained.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            degraded: self.counters.degraded.load(Ordering::Relaxed),
            warm_reuses: self.counters.warm_reuses.load(Ordering::Relaxed),
            cold_builds: self.counters.cold_builds.load(Ordering::Relaxed),
            quarantines: self.counters.quarantines.load(Ordering::Relaxed),
            queue_depth: self.queue.depth() as u64,
            inflight: self
                .inflight
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len() as u64,
            draining: self.queue.is_draining(),
        }
    }

    /// Begins the drain: no new admissions, queued jobs are cancelled (so
    /// they degrade to their quick seed instead of exploring during
    /// shutdown), running jobs stop at their next step boundary.
    fn begin_drain(&self) {
        self.queue.drain();
        for token in self.queue.queued_cancel_tokens() {
            token.cancel();
        }
        for entry in self
            .inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
        {
            entry.cancel.cancel();
        }
    }

    fn poll_tick(&self) -> Duration {
        Duration::from_millis(self.config.poll_ms.max(1))
    }
}

/// A running daemon. Dropping it without [`Server::shutdown`] aborts the
/// threads unceremoniously; call `shutdown` for the drain contract.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts the daemon: one accept thread, `config.workers`
    /// solver threads.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            queue: JobQueue::new(config.admission),
            config,
            counters: Counters::default(),
            latencies: Mutex::new(Latencies::default()),
            inflight: Mutex::new(HashMap::new()),
            shutdown_watchers: Mutex::new(Vec::new()),
            next_ticket: AtomicU64::new(0),
            next_conn: AtomicU64::new(0),
            stopping: AtomicBool::new(false),
            conn_threads: Mutex::new(Vec::new()),
        });

        let accept_shared = shared.clone();
        let accept_thread = std::thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || accept_loop(&accept_shared, &listener))?;

        let worker_threads = (0..workers)
            .map(|worker_id| {
                let worker_shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("serve-worker-{worker_id}"))
                    .spawn(move || worker_loop(&worker_shared, worker_id))
            })
            .collect::<io::Result<Vec<_>>>()?;

        Ok(Server {
            addr,
            shared,
            accept_thread: Some(accept_thread),
            worker_threads,
        })
    }

    /// The bound address (with the actual port when `addr` asked for 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// Whether a client's `shutdown` frame (or [`Server::shutdown`]) has
    /// begun a drain.
    pub fn is_draining(&self) -> bool {
        self.shared.queue.is_draining()
    }

    /// Blocks until a client requests shutdown, then drains and returns.
    pub fn run_until_shutdown(self) -> DrainReport {
        while !self.shared.queue.is_draining() {
            std::thread::sleep(self.shared.poll_tick());
        }
        self.shutdown()
    }

    /// Drain-style graceful shutdown: stop admitting, finish or degrade
    /// every admitted job, flush the `Final` frames, answer shutdown
    /// requesters with the final `Stats`, join every thread.
    pub fn shutdown(mut self) -> DrainReport {
        self.shared.begin_drain();
        // Workers exit once the backlog is gone; joining them proves every
        // admitted job produced (and flushed) its Final frame.
        for worker in self.worker_threads.drain(..) {
            let _ = worker.join();
        }
        let stats = self.shared.snapshot();
        let watchers = std::mem::take(
            &mut *self
                .shared
                .shutdown_watchers
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for watcher in watchers {
            let _ = watcher.send(Frame::Stats(stats.clone()));
        }
        // Now tear down the I/O layer: readers notice `stopping`, drop
        // their writer channels, and the writer threads flush out.
        self.shared.stopping.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        let conns = std::mem::take(
            &mut *self
                .shared
                .conn_threads
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for conn in conns {
            let _ = conn.join();
        }
        let latencies = std::mem::take(
            &mut *self
                .shared
                .latencies
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        DrainReport {
            stats,
            queue_wait_us: latencies.queue_wait_us,
            first_incumbent_us: latencies.first_incumbent_us,
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    while !shared.stopping.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                brel_obs::event(Category::Serve, "accept");
                let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                let conn_shared = shared.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("serve-conn-{conn_id}"))
                    .spawn(move || connection_loop(&conn_shared, conn_id, stream));
                match handle {
                    Ok(handle) => shared
                        .conn_threads
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(handle),
                    Err(_) => brel_obs::count(Category::Serve, "spawn_failed", 1),
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                reap_finished_connections(shared);
                std::thread::sleep(shared.poll_tick());
            }
            Err(_) => std::thread::sleep(shared.poll_tick()),
        }
    }
}

/// Joins connection threads that already exited, so a long-running daemon
/// does not accumulate dead handles.
fn reap_finished_connections(shared: &Shared) {
    let mut conns = shared
        .conn_threads
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    let mut live = Vec::with_capacity(conns.len());
    for handle in conns.drain(..) {
        if handle.is_finished() {
            let _ = handle.join();
        } else {
            live.push(handle);
        }
    }
    *conns = live;
}

/// Reader side of one connection; spawns the paired writer thread.
fn connection_loop(shared: &Arc<Shared>, conn_id: u64, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.poll_tick()));
    let writer_stream = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let (reply, outbound) = channel::<Frame>();
    let writer = std::thread::Builder::new()
        .name(format!("serve-write-{conn_id}"))
        .spawn(move || {
            let mut stream = writer_stream;
            for frame in outbound {
                if crate::protocol::write_frame(&mut stream, &frame).is_err() {
                    break;
                }
            }
        });

    let mut reader = FrameReader::new(stream);
    let idle_timeout = Duration::from_millis(shared.config.idle_timeout_ms.max(1));
    let mut last_activity = Instant::now();
    loop {
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        match reader.poll() {
            Ok(Some(frame)) => {
                last_activity = Instant::now();
                handle_frame(shared, conn_id, &reply, frame);
            }
            Ok(None) => {
                if last_activity.elapsed() > idle_timeout {
                    brel_obs::count(Category::Serve, "idle_reaped", 1);
                    break;
                }
            }
            Err(e) => {
                if e.kind() == io::ErrorKind::InvalidData {
                    let _ = reply.send(Frame::Error {
                        message: e.to_string(),
                    });
                }
                break;
            }
        }
    }

    // Disconnect containment: cancel every job this connection still has
    // in flight, so its worker frees within one step boundary instead of
    // solving for a client that is gone.
    let mut disconnect_cancels = 0u64;
    for entry in shared
        .inflight
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .values()
    {
        if entry.conn == conn_id && !entry.cancel.is_cancelled() {
            entry.cancel.cancel();
            disconnect_cancels += 1;
        }
    }
    if disconnect_cancels > 0 {
        shared
            .counters
            .cancelled
            .fetch_add(disconnect_cancels, Ordering::Relaxed);
        brel_obs::count(Category::Serve, "disconnect_cancelled", disconnect_cancels);
    }
    drop(reply);
    if let Ok(writer) = writer {
        let _ = writer.join();
    }
}

fn handle_frame(shared: &Arc<Shared>, conn_id: u64, reply: &Sender<Frame>, frame: Frame) {
    match frame {
        Frame::Submit(submit) => handle_submit(shared, conn_id, reply, submit),
        Frame::Cancel { job } => {
            let inflight = shared
                .inflight
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(entry) = inflight.get(&job) {
                if !entry.cancel.is_cancelled() {
                    entry.cancel.cancel();
                    shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
                    brel_obs::count(Category::Serve, "cancelled", 1);
                }
            }
            // Cancelling an unknown/finished ticket is a harmless no-op:
            // the race against a concurrent Final is inherent.
        }
        Frame::StatsRequest => {
            let _ = reply.send(Frame::Stats(shared.snapshot()));
        }
        Frame::Shutdown => {
            shared
                .shutdown_watchers
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(reply.clone());
            shared.begin_drain();
            brel_obs::event(Category::Serve, "shutdown_requested");
        }
        // Server-to-client frames arriving at the server are a protocol
        // violation worth reporting but not a reason to kill the daemon.
        other => {
            let _ = reply.send(Frame::Error {
                message: format!("unexpected client frame: {other:?}"),
            });
        }
    }
}

fn handle_submit(shared: &Arc<Shared>, conn_id: u64, reply: &Sender<Frame>, submit: Submit) {
    let mut span = brel_obs::span(Category::Serve, "admit");
    let ticket = shared.next_ticket.fetch_add(1, Ordering::Relaxed);
    let cancel = CancelToken::new();
    let now = Instant::now();
    let job = QueuedJob {
        ticket,
        client: submit.client,
        conn: conn_id,
        spec: submit.job,
        max_cost: submit.max_cost,
        deadline: submit.deadline_ms.map(|ms| now + Duration::from_millis(ms)),
        enqueued: now,
        cancel: cancel.clone(),
        reply: reply.clone(),
    };
    // The in-flight registration and the `admitted` reply happen inside
    // `on_admit`, while the queue lock still shields the job from the
    // workers: the client is guaranteed to see `admitted` before any
    // `incumbent`, and a cancel that races the admission finds the token.
    let on_admit = |queue_depth: usize| {
        shared
            .inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(
                ticket,
                Inflight {
                    cancel: cancel.clone(),
                    conn: conn_id,
                },
            );
        shared.counters.admitted.fetch_add(1, Ordering::Relaxed);
        let _ = reply.send(Frame::Admitted {
            job: ticket,
            queue_depth: queue_depth as u64,
        });
    };
    match shared.queue.offer(job, submit.deadline_ms, on_admit) {
        Admission::Admitted { queue_depth } => {
            span.arg("admitted", 1)
                .arg("queue_depth", queue_depth as u64);
        }
        Admission::Shed {
            reason,
            retry_after_ms,
        } => {
            shared.counters.shed.fetch_add(1, Ordering::Relaxed);
            brel_obs::count(Category::Serve, "shed", 1);
            span.arg("admitted", 0);
            let _ = reply.send(Frame::Rejected {
                reason: reason.to_string(),
                retry_after_ms,
            });
        }
    }
}

fn worker_loop(shared: &Arc<Shared>, worker_id: usize) {
    let _track = brel_obs::set_track(&format!("serve-worker-{worker_id}"));
    let mut warm = WarmSession::new();
    // Wide mode: this serve worker's persistent search sessions, reused
    // across jobs exactly like the batch engine's.
    let mut wide_sessions: Vec<WarmSession> = shared
        .config
        .wide
        .map(|(n, _)| (0..n.max(1)).map(|_| WarmSession::new()).collect())
        .unwrap_or_default();
    let mut last_counts = (0u64, 0u64, 0u64);
    let tick = shared.poll_tick();
    while let Some(mut job) = shared.queue.pop(tick) {
        let draining = shared.queue.is_draining();
        let queue_wait_us = job.enqueued.elapsed().as_micros() as u64;
        brel_obs::event_with(Category::Serve, "queue_wait", "us", queue_wait_us);

        // Install the remaining wall-clock budget as the job's governor
        // deadline: a runaway solve aborts through the kernel's deadline
        // path even if it never reaches a cooperative checkpoint.
        if let Some(deadline) = job.deadline {
            let remaining_ms = (deadline
                .saturating_duration_since(Instant::now())
                .as_millis() as u64)
                .max(1);
            job.spec.fault.deadline_ms = Some(
                job.spec
                    .fault
                    .deadline_ms
                    .map_or(remaining_ms, |own| own.min(remaining_ms)),
            );
        }

        // The streaming side: every incumbent (seed included) goes out as
        // an `Incumbent` frame; the first one records the anytime latency;
        // reaching `max_cost` flips the cancel token (early stop).
        let stream_reply = Mutex::new(job.reply.clone());
        let ticket = job.ticket;
        let submitted = job.enqueued;
        let stream_shared = shared.clone();
        let early_stop = job.cancel.clone();
        let max_cost = job.max_cost;
        let first_seen = AtomicBool::new(false);
        let control = JobControl::new()
            .with_cancel(job.cancel.clone())
            .on_incumbent(move |cost, explored| {
                brel_obs::count(Category::Serve, "incumbent", 1);
                if !first_seen.swap(true, Ordering::Relaxed) {
                    stream_shared
                        .latencies
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .first_incumbent_us
                        .push(submitted.elapsed().as_micros() as u64);
                }
                let _ = stream_reply
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .send(Frame::Incumbent {
                        job: ticket,
                        cost,
                        explored: explored as u64,
                    });
                if max_cost.is_some_and(|target| cost <= target) && !early_stop.is_cancelled() {
                    // A reached cost target is a server-side cancellation:
                    // counted like a client cancel so the stats tell the
                    // whole truncation story.
                    early_stop.cancel();
                    stream_shared
                        .counters
                        .cancelled
                        .fetch_add(1, Ordering::Relaxed);
                    brel_obs::count(Category::Serve, "cost_target_stop", 1);
                }
            });

        let injections: Vec<&brel_engine::FaultInjection> = shared
            .config
            .fault_plan
            .as_deref()
            .map(|plan| plan.for_job(&job.spec.name))
            .unwrap_or_default();

        let solve_start = Instant::now();
        let report = {
            let mut span = brel_obs::span(Category::Serve, "solve");
            span.arg("ticket", ticket);
            match shared.config.wide {
                Some((_, options)) => run_job_wide_controlled(
                    ticket as usize,
                    &job.spec,
                    options,
                    &mut warm,
                    &mut wide_sessions,
                    &control,
                    &injections,
                ),
                None => {
                    run_job_controlled(ticket as usize, &job.spec, &mut warm, &control, &injections)
                }
            }
        };
        let solve_us = solve_start.elapsed().as_micros() as u64;

        // Fold this worker's warm-pool movement into the shared counters
        // (the wide search sessions count like any other warm session).
        let counts = wide_sessions.iter().fold(warm.counts(), |acc, s| {
            let c = s.counts();
            (acc.0 + c.0, acc.1 + c.1, acc.2 + c.2)
        });
        shared
            .counters
            .warm_reuses
            .fetch_add(counts.0 - last_counts.0, Ordering::Relaxed);
        shared
            .counters
            .cold_builds
            .fetch_add(counts.1 - last_counts.1, Ordering::Relaxed);
        shared
            .counters
            .quarantines
            .fetch_add(counts.2 - last_counts.2, Ordering::Relaxed);
        last_counts = counts;

        shared.counters.completed.fetch_add(1, Ordering::Relaxed);
        if report.winning().is_some_and(|w| w.degraded) {
            shared.counters.degraded.fetch_add(1, Ordering::Relaxed);
        }
        if draining {
            shared.counters.drained.fetch_add(1, Ordering::Relaxed);
        }
        shared
            .latencies
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .queue_wait_us
            .push(queue_wait_us);

        let final_frame = Frame::Final(crate::protocol::FinalReport::from_report(
            ticket,
            &report,
            queue_wait_us,
            solve_us,
        ));
        // Retire the job *before* the final frame goes out: a client that
        // reads the final and disconnects immediately must not find a
        // stale in-flight entry still counted as a disconnect-cancel.
        shared
            .inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&ticket);
        // A disconnected client makes this send fail; the job was still
        // accounted above, which is what the drain gates check.
        let _ = job.reply.send(final_frame);
        shared.queue.finish(&job.client);
    }
}
