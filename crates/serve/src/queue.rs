//! Bounded admission with earliest-deadline-first dispatch.
//!
//! Admission is where the daemon defends itself: a bounded queue, a
//! per-client outstanding-job budget, and explicit load shedding with a
//! jittered backoff hint — a client that is told `retry_after_ms` will not
//! stampede back in lockstep with every other shed client. Admitted jobs
//! are dispatched earliest-deadline-first (ties broken by admission
//! order), so a tight-deadline job does not sit behind a batch of
//! unbounded ones. Deadlines the queue can already prove infeasible are
//! shed at the door instead of wasting a worker on a job that will only
//! time out.

use std::collections::{BTreeMap, HashMap};
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use brel_core::CancelToken;
use brel_engine::JobSpec;

use crate::protocol::Frame;

/// Admission-control knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum number of queued (not yet running) jobs.
    pub capacity: usize,
    /// Maximum outstanding (queued + running) jobs per client id.
    pub per_client: usize,
    /// Rough per-job service estimate used for the deadline-feasibility
    /// check: a submission whose deadline is shorter than
    /// `queued * est_job_ms` is shed as infeasible.
    pub est_job_ms: u64,
    /// Base backoff hint for shed replies; the jittered hint is in
    /// `[backoff_ms, 2 * backoff_ms]`.
    pub backoff_ms: u64,
    /// Seed of the deterministic jitter sequence.
    pub jitter_seed: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            capacity: 64,
            per_client: 8,
            est_job_ms: 3,
            backoff_ms: 25,
            jitter_seed: 0x5eed_cafe,
        }
    }
}

/// The admission decision for one submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// Queued; `queue_depth` is the depth right after insertion.
    Admitted {
        /// Queue depth after insertion.
        queue_depth: usize,
    },
    /// Shed with a structured reason and a jittered backoff hint.
    Shed {
        /// `draining`, `client-budget`, `infeasible-deadline` or
        /// `queue-full`.
        reason: &'static str,
        /// Do not retry sooner than this.
        retry_after_ms: u64,
    },
}

/// One admitted job waiting for (or holding) a worker.
#[derive(Debug)]
pub struct QueuedJob {
    /// Server-assigned ticket.
    pub ticket: u64,
    /// Submitting client id (admission budget key).
    pub client: String,
    /// Id of the connection the job arrived on (disconnect cleanup key).
    pub conn: u64,
    /// The job itself.
    pub spec: JobSpec,
    /// Early-stop cost target.
    pub max_cost: Option<u64>,
    /// Absolute deadline derived from the submit's `deadline_ms`.
    pub deadline: Option<Instant>,
    /// When the job was admitted (queue-wait accounting).
    pub enqueued: Instant,
    /// Cooperative cancel flag shared with the connection.
    pub cancel: CancelToken,
    /// The connection's outbound frame channel.
    pub reply: Sender<Frame>,
}

#[derive(Debug, Default)]
struct QueueInner {
    /// EDF order: key is (deadline in µs since queue start, admission
    /// sequence). Deadline-less jobs sort last via `u64::MAX`.
    queue: BTreeMap<(u64, u64), QueuedJob>,
    /// Outstanding (queued + running) jobs per client id.
    outstanding: HashMap<String, usize>,
    running: usize,
    next_seq: u64,
    sheds: u64,
    draining: bool,
}

/// The admission queue shared by connections (producers) and workers
/// (consumers).
#[derive(Debug)]
pub struct JobQueue {
    config: AdmissionConfig,
    start: Instant,
    inner: Mutex<QueueInner>,
    ready: Condvar,
}

impl JobQueue {
    /// An empty queue with the given admission policy.
    pub fn new(config: AdmissionConfig) -> Self {
        JobQueue {
            config,
            start: Instant::now(),
            inner: Mutex::new(QueueInner::default()),
            ready: Condvar::new(),
        }
    }

    /// The admission policy.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Decides admission for `job`. On admission the job is queued in EDF
    /// order and one waiting worker is woken; on shed the caller relays
    /// the reason and backoff hint to the client.
    ///
    /// `on_admit` runs with the queue lock still held, *before* any worker
    /// can pop the job — the caller's chance to register in-flight state
    /// and enqueue the `admitted` reply so it is ordered ahead of every
    /// frame the job's worker will stream. Keep it cheap and never call
    /// back into the queue from it.
    pub fn offer(
        &self,
        job: QueuedJob,
        deadline_ms: Option<u64>,
        on_admit: impl FnOnce(usize),
    ) -> Admission {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.draining {
            return self.shed(&mut inner, "draining");
        }
        let held = inner.outstanding.get(&job.client).copied().unwrap_or(0);
        if held >= self.config.per_client {
            return self.shed(&mut inner, "client-budget");
        }
        if let Some(deadline_ms) = deadline_ms {
            let est_wait_ms = inner.queue.len() as u64 * self.config.est_job_ms;
            if deadline_ms < est_wait_ms {
                return self.shed(&mut inner, "infeasible-deadline");
            }
        }
        if inner.queue.len() >= self.config.capacity {
            return self.shed(&mut inner, "queue-full");
        }

        let deadline_key = job.deadline.map_or(u64::MAX, |deadline| {
            deadline.saturating_duration_since(self.start).as_micros() as u64
        });
        let seq = inner.next_seq;
        inner.next_seq += 1;
        *inner.outstanding.entry(job.client.clone()).or_insert(0) += 1;
        inner.queue.insert((deadline_key, seq), job);
        let queue_depth = inner.queue.len();
        on_admit(queue_depth);
        drop(inner);
        self.ready.notify_one();
        Admission::Admitted { queue_depth }
    }

    fn shed(&self, inner: &mut QueueInner, reason: &'static str) -> Admission {
        inner.sheds += 1;
        let jitter = splitmix64(self.config.jitter_seed.wrapping_add(inner.sheds))
            % (self.config.backoff_ms + 1);
        Admission::Shed {
            reason,
            retry_after_ms: self.config.backoff_ms + jitter,
        }
    }

    /// Pops the earliest-deadline job, blocking up to `tick` per wait
    /// round. Returns `None` once the queue is draining and empty — the
    /// worker-exit signal.
    pub fn pop(&self, tick: Duration) -> Option<QueuedJob> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some((_, job)) = inner.queue.pop_first() {
                inner.running += 1;
                return Some(job);
            }
            if inner.draining {
                return None;
            }
            inner = self
                .ready
                .wait_timeout(inner, tick)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Marks one popped job finished, releasing its client-budget slot.
    pub fn finish(&self, client: &str) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(held) = inner.outstanding.get_mut(client) {
            *held = held.saturating_sub(1);
            if *held == 0 {
                inner.outstanding.remove(client);
            }
        }
        inner.running = inner.running.saturating_sub(1);
        drop(inner);
        self.ready.notify_all();
    }

    /// Flips the queue into draining mode: every subsequent [`offer`]
    /// sheds, and workers exit once the backlog is gone.
    ///
    /// [`offer`]: JobQueue::offer
    pub fn drain(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.draining = true;
        drop(inner);
        self.ready.notify_all();
    }

    /// Whether [`JobQueue::drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .draining
    }

    /// Current queued (not running) job count.
    pub fn depth(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .queue
            .len()
    }

    /// Cancel tokens of every still-queued job (the drain path cancels
    /// them so queued work degrades to its quick seed instead of running
    /// a full exploration during shutdown).
    pub fn queued_cancel_tokens(&self) -> Vec<CancelToken> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .queue
            .values()
            .map(|job| job.cancel.clone())
            .collect()
    }
}

/// SplitMix64, the workspace's standard tiny deterministic generator.
fn splitmix64(mut state: u64) -> u64 {
    state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use brel_engine::RelationSpec;
    use brel_relation::{BooleanRelation, RelationSpace};
    use std::sync::mpsc::channel;

    fn tiny_spec() -> RelationSpec {
        let space = RelationSpace::new(1, 1);
        let r = BooleanRelation::from_table(&space, "0:{0}\n1:{1}").unwrap();
        RelationSpec::from_relation(&r).unwrap()
    }

    fn job(ticket: u64, client: &str, deadline_ms: Option<u64>) -> QueuedJob {
        let now = Instant::now();
        QueuedJob {
            ticket,
            client: client.to_string(),
            conn: 0,
            spec: brel_engine::JobSpec::portfolio(format!("job{ticket}"), tiny_spec()),
            max_cost: None,
            deadline: deadline_ms.map(|ms| now + Duration::from_millis(ms)),
            enqueued: now,
            cancel: CancelToken::new(),
            reply: channel().0,
        }
    }

    fn offer(queue: &JobQueue, j: QueuedJob, deadline_ms: Option<u64>) -> Admission {
        queue.offer(j, deadline_ms, |_| {})
    }

    #[test]
    fn dispatch_is_earliest_deadline_first_with_fifo_ties() {
        let queue = JobQueue::new(AdmissionConfig::default());
        offer(&queue, job(0, "a", None), None);
        offer(&queue, job(1, "b", Some(500)), Some(500));
        offer(&queue, job(2, "c", Some(50)), Some(50));
        offer(&queue, job(3, "d", None), None);
        let order: Vec<u64> = (0..4)
            .map(|_| queue.pop(Duration::from_millis(1)).unwrap().ticket)
            .collect();
        // Tight deadline first, then the looser one, then deadline-less
        // jobs in admission order.
        assert_eq!(order, vec![2, 1, 0, 3]);
    }

    #[test]
    fn per_client_budget_and_capacity_shed_with_backoff_hints() {
        let queue = JobQueue::new(AdmissionConfig {
            capacity: 2,
            per_client: 1,
            ..AdmissionConfig::default()
        });
        assert!(matches!(
            offer(&queue, job(0, "a", None), None),
            Admission::Admitted { queue_depth: 1 }
        ));
        let Admission::Shed {
            reason,
            retry_after_ms,
        } = offer(&queue, job(1, "a", None), None)
        else {
            panic!("second job of the same client must shed");
        };
        assert_eq!(reason, "client-budget");
        let base = queue.config().backoff_ms;
        assert!((base..=2 * base).contains(&retry_after_ms));

        offer(&queue, job(2, "b", None), None);
        let Admission::Shed { reason, .. } = offer(&queue, job(3, "c", None), None) else {
            panic!("over-capacity job must shed");
        };
        assert_eq!(reason, "queue-full");

        // The budget frees when the job finishes (popped and completed).
        let popped = queue.pop(Duration::from_millis(1)).unwrap();
        queue.finish(&popped.client);
        assert!(matches!(
            offer(&queue, job(4, "a", None), None),
            Admission::Admitted { .. }
        ));
    }

    #[test]
    fn infeasible_deadlines_shed_before_capacity() {
        let queue = JobQueue::new(AdmissionConfig {
            capacity: 1,
            est_job_ms: 10,
            ..AdmissionConfig::default()
        });
        offer(&queue, job(0, "a", None), None);
        // One queued job ⇒ estimated wait 10 ms ⇒ a 5 ms deadline is
        // provably infeasible, and that verdict wins over `queue-full`.
        let Admission::Shed { reason, .. } = offer(&queue, job(1, "b", Some(5)), Some(5)) else {
            panic!("infeasible deadline must shed");
        };
        assert_eq!(reason, "infeasible-deadline");
    }

    #[test]
    fn draining_sheds_submissions_and_releases_workers() {
        let queue = JobQueue::new(AdmissionConfig::default());
        offer(&queue, job(0, "a", None), None);
        queue.drain();
        let Admission::Shed { reason, .. } = offer(&queue, job(1, "b", None), None) else {
            panic!("draining queue must shed");
        };
        assert_eq!(reason, "draining");
        // The backlog still drains...
        assert!(queue.pop(Duration::from_millis(1)).is_some());
        // ...and an empty draining queue releases the worker immediately.
        assert!(queue.pop(Duration::from_millis(1)).is_none());
    }

    #[test]
    fn jitter_spreads_backoff_hints() {
        let queue = JobQueue::new(AdmissionConfig {
            capacity: 0,
            ..AdmissionConfig::default()
        });
        let hints: Vec<u64> = (0..16)
            .map(|i| match offer(&queue, job(i, "a", None), None) {
                Admission::Shed { retry_after_ms, .. } => retry_after_ms,
                Admission::Admitted { .. } => panic!("capacity 0 admits nothing"),
            })
            .collect();
        let distinct: std::collections::HashSet<u64> = hints.iter().copied().collect();
        assert!(
            distinct.len() > 1,
            "jittered hints must not all collide: {hints:?}"
        );
    }
}
