//! The wire protocol: length-prefixed JSON frames over a byte stream.
//!
//! Every frame is a 4-byte big-endian length followed by that many bytes
//! of UTF-8 JSON — one object with a `"type"` tag. Client-to-server
//! frames are `submit`, `cancel`, `stats` and `shutdown`; server-to-client
//! frames are `admitted`, `rejected`, `incumbent` (streamed anytime
//! results), `final`, `stats` and `error`. The codec is total in both
//! directions: [`Frame::to_json`] and [`Frame::from_json`] round-trip
//! every representable frame, and malformed input surfaces as a
//! structured error at the protocol boundary instead of a panic inside
//! the daemon.

use std::io::{self, Read, Write};

use brel_engine::{
    BackendKind, CostSpec, FaultPolicy, JobBudget, JobReport, JobSpec, Json, RelationSpec,
    SearchStrategy,
};
use brel_relation::RelationRow;

use crate::json;

/// Ceiling on a single frame body. A length prefix beyond this is treated
/// as a protocol error (it is far above any real `JobSpec`, and it keeps a
/// corrupt or hostile prefix from allocating gigabytes).
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// One protocol frame, either direction.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: submit a job.
    Submit(Submit),
    /// Client → server: cooperatively cancel an admitted job. The job
    /// still produces a `Final` frame carrying its best incumbent.
    Cancel {
        /// The server-assigned job ticket.
        job: u64,
    },
    /// Client → server: request a [`StatsSnapshot`].
    StatsRequest,
    /// Client → server: begin a drain shutdown. The server stops
    /// admitting, finishes or degrades every in-flight job, flushes the
    /// `Final` frames, then answers with one last `Stats` frame.
    Shutdown,
    /// Server → client: the job was admitted.
    Admitted {
        /// The server-assigned job ticket (used by `cancel`, `incumbent`
        /// and `final`).
        job: u64,
        /// Queue depth right after admission.
        queue_depth: u64,
    },
    /// Server → client: the job was shed at admission.
    Rejected {
        /// Why: `draining`, `client-budget`, `infeasible-deadline` or
        /// `queue-full`.
        reason: String,
        /// Jittered backoff hint; clients should not retry sooner.
        retry_after_ms: u64,
    },
    /// Server → client: a streamed anytime result — the quick-solver seed
    /// or a BREL incumbent improvement.
    Incumbent {
        /// The job ticket.
        job: u64,
        /// Cost of the incumbent under the job's cost function.
        cost: u64,
        /// Expansions explored when the incumbent was found (0 = seed).
        explored: u64,
    },
    /// Server → client: the job finished (solved, degraded or faulted).
    Final(FinalReport),
    /// Server → client: current counters.
    Stats(StatsSnapshot),
    /// Server → client: a request-level error (e.g. malformed submit).
    Error {
        /// Human-readable description.
        message: String,
    },
}

/// The payload of a `submit` frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Submit {
    /// Client identity for per-client admission budgets.
    pub client: String,
    /// The job to solve.
    pub job: JobSpec,
    /// Soft deadline: admission rejects infeasible deadlines, and the
    /// remaining time is installed as the job's wall-clock deadline (the
    /// kernel governor aborts a runaway solve past it).
    pub deadline_ms: Option<u64>,
    /// Early-stop target: the server cancels the exploration as soon as a
    /// streamed incumbent costs this much or less.
    pub max_cost: Option<u64>,
}

/// The payload of a `final` frame: the deterministic projection of a
/// [`JobReport`] plus per-job service timings.
#[derive(Debug, Clone, PartialEq)]
pub struct FinalReport {
    /// The job ticket.
    pub job: u64,
    /// Job name from the spec.
    pub name: String,
    /// Outcome name (`solved`, `degraded`, `timed-out`, `quota-exceeded`,
    /// `panicked`) or `failed` when the job errored structurally.
    pub outcome: String,
    /// Whether the winning solution is a degraded result.
    pub degraded: bool,
    /// Winning backend name, when a winner exists.
    pub backend: Option<String>,
    /// Winning cost, when a winner exists.
    pub cost: Option<u64>,
    /// Winning solution's cube count.
    pub cubes: Option<u64>,
    /// Winning solution's literal count.
    pub literals: Option<u64>,
    /// Winning attempt's exploration count.
    pub explored: Option<u64>,
    /// Deterministic fault/truncation description, if any.
    pub fault: Option<String>,
    /// Structural failure message, if the job produced no solution.
    pub error: Option<String>,
    /// Time the job spent queued, in microseconds (timing — excluded
    /// from the deterministic projection).
    pub queue_wait_us: u64,
    /// Time the job spent solving, in microseconds (timing).
    pub solve_us: u64,
}

impl FinalReport {
    /// Projects an engine [`JobReport`] into the wire shape. Both the
    /// daemon and the serial-replay gate build finals through this one
    /// function, so "byte-identical to `engine_batch`" is a comparison of
    /// the same projection applied to both paths.
    pub fn from_report(job: u64, report: &JobReport, queue_wait_us: u64, solve_us: u64) -> Self {
        let winning = report.winning();
        FinalReport {
            job,
            name: report.name.clone(),
            outcome: report
                .outcome
                .map_or("failed", |outcome| outcome.name())
                .to_string(),
            degraded: winning.is_some_and(|w| w.degraded),
            backend: winning.map(|w| w.backend.name().to_string()),
            cost: winning.map(|w| w.cost),
            cubes: winning.map(|w| w.cubes as u64),
            literals: winning.map(|w| w.literals as u64),
            explored: winning.map(|w| w.explored as u64),
            fault: report.fault.clone(),
            error: report.error.clone(),
            queue_wait_us,
            solve_us,
        }
    }

    /// The timing-free projection used by determinism gates: everything
    /// except `job`, `queue_wait_us` and `solve_us`.
    pub fn deterministic_json(&self) -> Json {
        Json::object(vec![
            ("name", Json::str(&self.name)),
            ("outcome", Json::str(&self.outcome)),
            ("degraded", Json::Bool(self.degraded)),
            ("backend", opt_str(&self.backend)),
            ("cost", opt_uint(self.cost)),
            ("cubes", opt_uint(self.cubes)),
            ("literals", opt_uint(self.literals)),
            ("explored", opt_uint(self.explored)),
            ("fault", opt_str(&self.fault)),
            ("error", opt_str(&self.error)),
        ])
    }
}

/// One snapshot of the daemon's counters, carried by `stats` frames and
/// returned from drains.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Jobs admitted into the queue.
    pub admitted: u64,
    /// Jobs shed at admission.
    pub shed: u64,
    /// Cancellations observed (explicit `cancel` frames on live jobs plus
    /// disconnect- and drain-driven cancels).
    pub cancelled: u64,
    /// Jobs whose `Final` was emitted after a drain began.
    pub drained: u64,
    /// Jobs that reached a `Final` frame.
    pub completed: u64,
    /// Completed jobs whose winner was a degraded result.
    pub degraded: u64,
    /// Warm-session rehydrations that reused a live manager.
    pub warm_reuses: u64,
    /// Cold session (re)builds.
    pub cold_builds: u64,
    /// Sessions quarantined after a fault (every one is rebuilt cold
    /// before its next job; none leak past a drain unreported).
    pub quarantines: u64,
    /// Jobs currently queued.
    pub queue_depth: u64,
    /// Jobs admitted but not yet final.
    pub inflight: u64,
    /// Whether a drain is in progress (or completed).
    pub draining: bool,
}

impl StatsSnapshot {
    /// The `(name, value)` pairs for
    /// [`brel_obs::MetricsRegistry::absorb`] under the `serve.` prefix.
    pub fn metrics(&self) -> [(&'static str, u64); 9] {
        [
            ("admitted", self.admitted),
            ("shed", self.shed),
            ("cancelled", self.cancelled),
            ("drained", self.drained),
            ("completed", self.completed),
            ("degraded", self.degraded),
            ("quarantines", self.quarantines),
            ("queue_depth", self.queue_depth),
            ("inflight", self.inflight),
        ]
    }

    /// The warm-pool pairs for the `reuse.` prefix (mirrors
    /// [`brel_engine::BatchReuse`]'s accounting for the daemon's workers).
    pub fn reuse_metrics(&self) -> [(&'static str, u64); 3] {
        [
            ("warm_reuses", self.warm_reuses),
            ("cold_builds", self.cold_builds),
            ("quarantines", self.quarantines),
        ]
    }
}

fn opt_uint(value: Option<u64>) -> Json {
    value.map_or(Json::Null, Json::UInt)
}

fn opt_str(value: &Option<String>) -> Json {
    value.as_deref().map_or(Json::Null, Json::str)
}

impl Frame {
    /// Serializes the frame to its JSON object.
    pub fn to_json(&self) -> Json {
        match self {
            Frame::Submit(submit) => {
                let mut fields = vec![
                    ("type", Json::str("submit")),
                    ("client", Json::str(&submit.client)),
                    ("job", job_to_json(&submit.job)),
                    ("deadline_ms", opt_uint(submit.deadline_ms)),
                    ("max_cost", opt_uint(submit.max_cost)),
                ];
                fields.retain(|(_, v)| *v != Json::Null);
                Json::object(fields)
            }
            Frame::Cancel { job } => Json::object(vec![
                ("type", Json::str("cancel")),
                ("job", Json::UInt(*job)),
            ]),
            Frame::StatsRequest => Json::object(vec![("type", Json::str("stats"))]),
            Frame::Shutdown => Json::object(vec![("type", Json::str("shutdown"))]),
            Frame::Admitted { job, queue_depth } => Json::object(vec![
                ("type", Json::str("admitted")),
                ("job", Json::UInt(*job)),
                ("queue_depth", Json::UInt(*queue_depth)),
            ]),
            Frame::Rejected {
                reason,
                retry_after_ms,
            } => Json::object(vec![
                ("type", Json::str("rejected")),
                ("reason", Json::str(reason)),
                ("retry_after_ms", Json::UInt(*retry_after_ms)),
            ]),
            Frame::Incumbent {
                job,
                cost,
                explored,
            } => Json::object(vec![
                ("type", Json::str("incumbent")),
                ("job", Json::UInt(*job)),
                ("cost", Json::UInt(*cost)),
                ("explored", Json::UInt(*explored)),
            ]),
            Frame::Final(report) => Json::object(vec![
                ("type", Json::str("final")),
                ("job", Json::UInt(report.job)),
                ("name", Json::str(&report.name)),
                ("outcome", Json::str(&report.outcome)),
                ("degraded", Json::Bool(report.degraded)),
                ("backend", opt_str(&report.backend)),
                ("cost", opt_uint(report.cost)),
                ("cubes", opt_uint(report.cubes)),
                ("literals", opt_uint(report.literals)),
                ("explored", opt_uint(report.explored)),
                ("fault", opt_str(&report.fault)),
                ("error", opt_str(&report.error)),
                ("queue_wait_us", Json::UInt(report.queue_wait_us)),
                ("solve_us", Json::UInt(report.solve_us)),
            ]),
            Frame::Stats(stats) => {
                let mut fields = vec![("type", Json::str("stats"))];
                let metric_pairs = stats.metrics();
                fields.extend(metric_pairs.iter().map(|&(name, value)| {
                    (name, Json::UInt(value)) // counters
                }));
                fields.push(("warm_reuses", Json::UInt(stats.warm_reuses)));
                fields.push(("cold_builds", Json::UInt(stats.cold_builds)));
                fields.push(("draining", Json::Bool(stats.draining)));
                Json::object(fields)
            }
            Frame::Error { message } => Json::object(vec![
                ("type", Json::str("error")),
                ("message", Json::str(message)),
            ]),
        }
    }

    /// Parses a frame from its JSON object.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem.
    pub fn from_json(value: &Json) -> Result<Frame, String> {
        let tag = value
            .get("type")
            .and_then(Json::as_str)
            .ok_or("frame has no `type` tag")?;
        match tag {
            "submit" => Ok(Frame::Submit(Submit {
                client: req_str(value, "client")?,
                job: job_from_json(value.get("job").ok_or("submit has no `job`")?)?,
                deadline_ms: opt_u64(value, "deadline_ms")?,
                max_cost: opt_u64(value, "max_cost")?,
            })),
            "cancel" => Ok(Frame::Cancel {
                job: req_u64(value, "job")?,
            }),
            "shutdown" => Ok(Frame::Shutdown),
            "admitted" => Ok(Frame::Admitted {
                job: req_u64(value, "job")?,
                queue_depth: req_u64(value, "queue_depth")?,
            }),
            "rejected" => Ok(Frame::Rejected {
                reason: req_str(value, "reason")?,
                retry_after_ms: req_u64(value, "retry_after_ms")?,
            }),
            "incumbent" => Ok(Frame::Incumbent {
                job: req_u64(value, "job")?,
                cost: req_u64(value, "cost")?,
                explored: req_u64(value, "explored")?,
            }),
            "final" => Ok(Frame::Final(FinalReport {
                job: req_u64(value, "job")?,
                name: req_str(value, "name")?,
                outcome: req_str(value, "outcome")?,
                degraded: value
                    .get("degraded")
                    .and_then(Json::as_bool)
                    .ok_or("final has no `degraded`")?,
                backend: opt_string(value, "backend"),
                cost: opt_u64(value, "cost")?,
                cubes: opt_u64(value, "cubes")?,
                literals: opt_u64(value, "literals")?,
                explored: opt_u64(value, "explored")?,
                fault: opt_string(value, "fault"),
                error: opt_string(value, "error"),
                queue_wait_us: req_u64(value, "queue_wait_us")?,
                solve_us: req_u64(value, "solve_us")?,
            })),
            // A bare `{"type":"stats"}` is the request; any counter field
            // marks the reply.
            "stats" => {
                if value.get("admitted").is_none() {
                    return Ok(Frame::StatsRequest);
                }
                Ok(Frame::Stats(StatsSnapshot {
                    admitted: req_u64(value, "admitted")?,
                    shed: req_u64(value, "shed")?,
                    cancelled: req_u64(value, "cancelled")?,
                    drained: req_u64(value, "drained")?,
                    completed: req_u64(value, "completed")?,
                    degraded: req_u64(value, "degraded")?,
                    warm_reuses: req_u64(value, "warm_reuses")?,
                    cold_builds: req_u64(value, "cold_builds")?,
                    quarantines: req_u64(value, "quarantines")?,
                    queue_depth: req_u64(value, "queue_depth")?,
                    inflight: req_u64(value, "inflight")?,
                    draining: value
                        .get("draining")
                        .and_then(Json::as_bool)
                        .unwrap_or(false),
                }))
            }
            "error" => Ok(Frame::Error {
                message: req_str(value, "message")?,
            }),
            other => Err(format!("unknown frame type `{other}`")),
        }
    }
}

fn req_str(value: &Json, key: &str) -> Result<String, String> {
    value
        .get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

fn req_u64(value: &Json, key: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing integer field `{key}`"))
}

fn opt_u64(value: &Json, key: &str) -> Result<Option<u64>, String> {
    match value.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(field) => field
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field `{key}` must be an integer")),
    }
}

fn opt_string(value: &Json, key: &str) -> Option<String> {
    value.get(key).and_then(Json::as_str).map(str::to_string)
}

/// Serializes a [`JobSpec`] to its wire object. Relation rows travel as
/// compact `input:image,image` bitstrings (e.g. `"10:00,11"`), the same
/// 0/1 convention the table parser uses.
pub fn job_to_json(job: &JobSpec) -> Json {
    let relation = Json::object(vec![
        ("inputs", Json::UInt(job.relation.num_inputs() as u64)),
        ("outputs", Json::UInt(job.relation.num_outputs() as u64)),
        (
            "rows",
            Json::Array(job.relation.rows().iter().map(row_to_json).collect()),
        ),
    ]);
    Json::object(vec![
        ("name", Json::str(&job.name)),
        ("relation", relation),
        (
            "backends",
            Json::Array(job.backends.iter().map(|b| Json::str(b.name())).collect()),
        ),
        ("cost", Json::str(job.cost.name())),
        (
            "budget",
            Json::object(vec![
                (
                    "max_explored",
                    job.budget
                        .max_explored
                        .map_or(Json::Null, |n| Json::UInt(n as u64)),
                ),
                (
                    "fifo_capacity",
                    job.budget
                        .fifo_capacity
                        .map_or(Json::Null, |n| Json::UInt(n as u64)),
                ),
                (
                    "gyocro_max_passes",
                    Json::UInt(job.budget.gyocro_max_passes as u64),
                ),
            ]),
        ),
        ("strategy", Json::str(job.strategy.to_string())),
        (
            "fault",
            Json::object(vec![
                ("deadline_ms", opt_uint(job.fault.deadline_ms)),
                ("max_live_nodes", opt_uint(job.fault.max_live_nodes)),
                (
                    "step_deadline",
                    job.fault
                        .step_deadline
                        .map_or(Json::Null, |n| Json::UInt(n as u64)),
                ),
                ("retries", Json::UInt(job.fault.retries as u64)),
                ("fallback", Json::Bool(job.fault.fallback)),
            ]),
        ),
    ])
}

fn row_to_json(row: &RelationRow) -> Json {
    let (input, images) = row;
    let mut text = String::with_capacity(input.len() + images.len() * (input.len() + 1));
    for &bit in input {
        text.push(if bit { '1' } else { '0' });
    }
    text.push(':');
    for (i, image) in images.iter().enumerate() {
        if i > 0 {
            text.push(',');
        }
        for &bit in image {
            text.push(if bit { '1' } else { '0' });
        }
    }
    Json::Str(text)
}

/// Parses a [`JobSpec`] from its wire object.
///
/// # Errors
///
/// Returns a description of the first structural problem (missing field,
/// bad backend/strategy/cost name, or row arity mismatch).
pub fn job_from_json(value: &Json) -> Result<JobSpec, String> {
    let name = req_str(value, "name")?;
    let relation = value.get("relation").ok_or("job has no `relation`")?;
    let num_inputs = req_u64(relation, "inputs")? as usize;
    let num_outputs = req_u64(relation, "outputs")? as usize;
    let rows: Vec<RelationRow> = relation
        .get("rows")
        .and_then(Json::as_array)
        .ok_or("relation has no `rows` array")?
        .iter()
        .map(|row| {
            row.as_str()
                .ok_or_else(|| "row must be a string".to_string())
                .and_then(row_from_text)
        })
        .collect::<Result<_, _>>()?;
    let relation = RelationSpec::new(num_inputs, num_outputs, rows)
        .map_err(|e| format!("bad relation: {e}"))?;

    let backends: Vec<BackendKind> = match value.get("backends").and_then(Json::as_array) {
        None => BackendKind::all().to_vec(),
        Some(names) => names
            .iter()
            .map(|n| {
                n.as_str()
                    .and_then(backend_from_name)
                    .ok_or_else(|| format!("unknown backend `{}`", n.render()))
            })
            .collect::<Result<_, _>>()?,
    };
    if backends.is_empty() {
        return Err("job has an empty backend list".to_string());
    }

    let cost = match value.get("cost").and_then(Json::as_str) {
        None => CostSpec::default(),
        Some(name) => cost_from_name(name).ok_or_else(|| format!("unknown cost `{name}`"))?,
    };
    let strategy = match value.get("strategy").and_then(Json::as_str) {
        None => SearchStrategy::default(),
        Some(name) => {
            SearchStrategy::parse(name).ok_or_else(|| format!("unknown strategy `{name}`"))?
        }
    };
    let budget = match value.get("budget") {
        None => JobBudget::default(),
        Some(budget) => JobBudget {
            max_explored: opt_u64(budget, "max_explored")?.map(|n| n as usize),
            fifo_capacity: opt_u64(budget, "fifo_capacity")?.map(|n| n as usize),
            gyocro_max_passes: opt_u64(budget, "gyocro_max_passes")?
                .map_or(JobBudget::default().gyocro_max_passes, |n| n as usize),
        },
    };
    let fault = match value.get("fault") {
        None => FaultPolicy::default(),
        Some(fault) => FaultPolicy {
            deadline_ms: opt_u64(fault, "deadline_ms")?,
            max_live_nodes: opt_u64(fault, "max_live_nodes")?,
            step_deadline: opt_u64(fault, "step_deadline")?.map(|n| n as usize),
            retries: opt_u64(fault, "retries")?.map_or(0, |n| n as u32),
            fallback: fault
                .get("fallback")
                .and_then(Json::as_bool)
                .unwrap_or(true),
        },
    };

    Ok(JobSpec {
        name,
        relation,
        backends,
        cost,
        budget,
        strategy,
        fault,
    })
}

fn row_from_text(text: &str) -> Result<RelationRow, String> {
    let (input, images) = text
        .split_once(':')
        .ok_or_else(|| format!("row `{text}` has no `:`"))?;
    let input = bits_from_text(input)?;
    let images = images
        .split(',')
        .filter(|s| !s.is_empty())
        .map(bits_from_text)
        .collect::<Result<_, _>>()?;
    Ok((input, images))
}

fn bits_from_text(text: &str) -> Result<Vec<bool>, String> {
    text.chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(format!("invalid bit `{other}` in row")),
        })
        .collect()
}

fn backend_from_name(name: &str) -> Option<BackendKind> {
    BackendKind::all().into_iter().find(|b| b.name() == name)
}

fn cost_from_name(name: &str) -> Option<CostSpec> {
    [
        CostSpec::SumBddSize,
        CostSpec::SumSquaredBddSize,
        CostSpec::SharedBddSize,
        CostSpec::CubeCount,
        CostSpec::LiteralCount,
    ]
    .into_iter()
    .find(|c| c.name() == name)
}

/// Writes one length-prefixed frame and flushes.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_frame(writer: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let body = frame.to_json().render();
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame too large"))?;
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(body.as_bytes())?;
    writer.flush()
}

/// Blocking read of one length-prefixed frame. Intended for clients; the
/// daemon uses [`FrameReader`] so a read timeout cannot desynchronize the
/// stream mid-frame.
///
/// # Errors
///
/// `UnexpectedEof` at a clean close, `InvalidData` for malformed frames.
pub fn read_frame(reader: &mut impl Read) -> io::Result<Frame> {
    let mut prefix = [0u8; 4];
    reader.read_exact(&mut prefix)?;
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds {MAX_FRAME_BYTES}"),
        ));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    decode_body(&body)
}

fn decode_body(body: &[u8]) -> io::Result<Frame> {
    let text = std::str::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))?;
    let value = json::parse(text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad frame JSON: {e}")))?;
    Frame::from_json(&value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad frame: {e}")))
}

/// An incremental frame decoder over a stream with a read timeout.
///
/// `read` may time out between (or inside) frames; the reader buffers
/// partial bytes so a timeout never loses protocol position — the
/// connection loop polls, handles idle bookkeeping, and polls again.
#[derive(Debug)]
pub struct FrameReader<R> {
    stream: R,
    buf: Vec<u8>,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a stream (typically with `set_read_timeout` configured).
    pub fn new(stream: R) -> Self {
        FrameReader {
            stream,
            buf: Vec::new(),
        }
    }

    /// Reads whatever is available: `Ok(Some(frame))` when a full frame
    /// is buffered, `Ok(None)` on a read timeout with no complete frame.
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` when the peer closed, other I/O errors verbatim,
    /// `InvalidData` for malformed frames.
    pub fn poll(&mut self) -> io::Result<Option<Frame>> {
        loop {
            if let Some(frame) = self.try_decode()? {
                return Ok(Some(frame));
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "peer closed the connection",
                    ))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(None)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    fn try_decode(&mut self) -> io::Result<Option<Frame>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds {MAX_FRAME_BYTES}"),
            ));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let frame = decode_body(&self.buf[4..4 + len])?;
        self.buf.drain(..4 + len);
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brel_relation::{BooleanRelation, RelationSpace};

    fn fig1_job() -> JobSpec {
        let space = RelationSpace::new(2, 2);
        let r = BooleanRelation::from_table(&space, "00:{00}\n01:{00}\n10:{00,11}\n11:{10,11}")
            .unwrap();
        JobSpec::portfolio("fig1", RelationSpec::from_relation(&r).unwrap())
    }

    #[test]
    fn every_frame_round_trips_through_json() {
        let frames = vec![
            Frame::Submit(Submit {
                client: "c0".to_string(),
                job: fig1_job(),
                deadline_ms: Some(250),
                max_cost: None,
            }),
            Frame::Cancel { job: 7 },
            Frame::StatsRequest,
            Frame::Shutdown,
            Frame::Admitted {
                job: 7,
                queue_depth: 3,
            },
            Frame::Rejected {
                reason: "queue-full".to_string(),
                retry_after_ms: 40,
            },
            Frame::Incumbent {
                job: 7,
                cost: 12,
                explored: 4,
            },
            Frame::Final(FinalReport {
                job: 7,
                name: "fig1".to_string(),
                outcome: "degraded".to_string(),
                degraded: true,
                backend: Some("brel".to_string()),
                cost: Some(9),
                cubes: Some(3),
                literals: Some(5),
                explored: Some(11),
                fault: Some("cancelled after 11 expansions".to_string()),
                error: None,
                queue_wait_us: 1234,
                solve_us: 5678,
            }),
            Frame::Stats(StatsSnapshot {
                admitted: 10,
                shed: 2,
                cancelled: 1,
                drained: 3,
                completed: 9,
                degraded: 2,
                warm_reuses: 7,
                cold_builds: 2,
                quarantines: 1,
                queue_depth: 0,
                inflight: 1,
                draining: true,
            }),
            Frame::Error {
                message: "bad frame".to_string(),
            },
        ];
        for frame in frames {
            let rendered = frame.to_json().render();
            let parsed = Frame::from_json(&crate::json::parse(&rendered).unwrap()).unwrap();
            assert_eq!(parsed, frame, "{rendered}");
        }
    }

    #[test]
    fn job_codec_preserves_the_full_spec() {
        let job = fig1_job()
            .with_cost(CostSpec::LiteralCount)
            .with_budget(JobBudget {
                max_explored: None,
                fifo_capacity: Some(32),
                gyocro_max_passes: 5,
            })
            .with_strategy(SearchStrategy::BestFirst)
            .with_fault(FaultPolicy {
                deadline_ms: Some(500),
                max_live_nodes: Some(10_000),
                step_deadline: Some(64),
                retries: 2,
                fallback: false,
            });
        let round = job_from_json(&job_to_json(&job)).unwrap();
        assert_eq!(round.name, job.name);
        assert_eq!(round.relation, job.relation);
        assert_eq!(round.relation.fingerprint(), job.relation.fingerprint());
        assert_eq!(round.backends, job.backends);
        assert_eq!(round.cost, job.cost);
        assert_eq!(round.budget, job.budget);
        assert_eq!(round.strategy, job.strategy);
        assert_eq!(round.fault, job.fault);
    }

    #[test]
    fn job_parsing_applies_defaults_and_rejects_garbage() {
        let minimal = Json::object(vec![
            ("name", Json::str("tiny")),
            (
                "relation",
                Json::object(vec![
                    ("inputs", Json::UInt(1)),
                    ("outputs", Json::UInt(1)),
                    (
                        "rows",
                        Json::Array(vec![Json::str("0:0"), Json::str("1:1")]),
                    ),
                ]),
            ),
        ]);
        let job = job_from_json(&minimal).unwrap();
        assert_eq!(job.backends, BackendKind::all().to_vec());
        assert_eq!(job.cost, CostSpec::default());
        assert_eq!(job.budget, JobBudget::default());
        assert_eq!(job.fault, FaultPolicy::default());

        let mut bad_backend = minimal.clone();
        if let Json::Object(fields) = &mut bad_backend {
            fields.push((
                "backends".to_string(),
                Json::Array(vec![Json::str("warp-drive")]),
            ));
        }
        assert!(job_from_json(&bad_backend).is_err());

        let bad_row = Json::object(vec![
            ("name", Json::str("bad")),
            (
                "relation",
                Json::object(vec![
                    ("inputs", Json::UInt(2)),
                    ("outputs", Json::UInt(1)),
                    ("rows", Json::Array(vec![Json::str("0:0")])),
                ]),
            ),
        ]);
        assert!(job_from_json(&bad_row).is_err());
    }

    #[test]
    fn frame_reader_survives_split_and_coalesced_frames() {
        // Two frames in one byte stream, delivered in adversarial chunks.
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Cancel { job: 1 }).unwrap();
        write_frame(&mut wire, &Frame::Shutdown).unwrap();

        // A reader whose `read` returns one byte at a time, then times out.
        struct Trickle(Vec<u8>, usize);
        impl Read for Trickle {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "dry"));
                }
                buf[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let mut reader = FrameReader::new(Trickle(wire, 0));
        let mut frames = Vec::new();
        loop {
            match reader.poll() {
                Ok(Some(frame)) => frames.push(frame),
                Ok(None) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(frames, vec![Frame::Cancel { job: 1 }, Frame::Shutdown]);
    }

    #[test]
    fn oversized_length_prefixes_are_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME_BYTES as u32 + 1).to_be_bytes());
        wire.extend_from_slice(b"xxxx");
        assert!(read_frame(&mut wire.as_slice()).is_err());
    }
}
