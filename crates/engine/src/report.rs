//! Report serialization: a minimal JSON value tree (the workspace has no
//! serde; see `vendor/README.md`) plus JSON/CSV renderers for batch
//! results. The bench binaries reuse [`Json`] for their own `--json`
//! output so every emitted artefact shares one serializer.
//!
//! Wall-clock fields are only emitted when `include_timing` is set; with it
//! off, the serialized batch is a pure function of the job specs and is
//! byte-identical across worker counts — the property the determinism
//! tests pin down.

use std::fmt::Write as _;

use crate::backend::SolutionReport;
use crate::pool::BatchReport;
use crate::portfolio::JobReport;

/// A JSON value. Object keys keep their insertion order, so rendering is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number (rendered with Rust's shortest-round-trip
    /// formatting).
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for objects.
    pub fn object(fields: Vec<(&str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up `key` in an object. `None` for missing keys and for
    /// non-object values, so lookups chain without intermediate matches.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The unsigned-integer value, if this is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value widened to `f64`, for either number variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders the value with two-space indentation and a trailing newline,
    /// the format the `BENCH_*.json` artefacts are stored in.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Object(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    escape_into(key, out);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl SolutionReport {
    /// The JSON representation of one backend attempt. The `cache` and
    /// `gc` blocks carry the BDD-kernel counters attributed to this run;
    /// like every non-timing field they are deterministic across worker
    /// counts.
    pub fn to_json(&self, include_timing: bool) -> Json {
        let mut fields = vec![
            ("backend", Json::str(self.backend.name())),
            (
                "strategy",
                match self.strategy {
                    Some(strategy) => Json::str(strategy.name()),
                    None => Json::Null,
                },
            ),
            ("cost", Json::UInt(self.cost)),
            ("cubes", Json::UInt(self.cubes as u64)),
            ("literals", Json::UInt(self.literals as u64)),
            ("explored", Json::UInt(self.explored as u64)),
            ("splits", Json::UInt(self.splits as u64)),
            ("frontier_peak", Json::UInt(self.frontier_peak as u64)),
            // Deterministic: a truncated or ladder-recovered attempt is
            // degraded at every worker count or not at all.
            ("degraded", Json::Bool(self.degraded)),
            (
                "cache",
                Json::object(vec![
                    ("lookups", Json::UInt(self.cache.cache_lookups)),
                    ("hits", Json::UInt(self.cache.cache_hits)),
                    ("hit_rate", Json::Float(self.cache.cache_hit_rate())),
                    ("inserts", Json::UInt(self.cache.cache_inserts)),
                    ("evictions", Json::UInt(self.cache.cache_evictions)),
                    ("unique_lookups", Json::UInt(self.cache.unique_lookups)),
                    ("unique_hits", Json::UInt(self.cache.unique_hits)),
                    (
                        "unique_load_factor",
                        Json::Float(self.cache.unique_load_factor()),
                    ),
                    ("nodes", Json::UInt(self.cache.num_nodes)),
                ]),
            ),
            (
                "gc",
                Json::object(vec![
                    ("collections", Json::UInt(self.gc.collections)),
                    ("nodes_reclaimed", Json::UInt(self.gc.nodes_reclaimed)),
                    ("live_nodes", Json::UInt(self.gc.live_nodes)),
                    ("peak_live_nodes", Json::UInt(self.gc.peak_live_nodes)),
                    ("reorder_passes", Json::UInt(self.gc.reorder_passes)),
                    ("var_order_hash", Json::UInt(self.gc.var_order_hash)),
                ]),
            ),
        ];
        if include_timing {
            // Reuse provenance is scheduling-dependent (which worker landed
            // the job decides warm vs cold), so it rides with the timing
            // fields, outside the deterministic surface.
            fields.push((
                "reuse",
                Json::object(vec![
                    ("warm_session", Json::Bool(self.reuse.warm_session)),
                    ("subrel_cache_hit", Json::Bool(self.reuse.subrel_cache_hit)),
                ]),
            ));
            fields.push(("wall_micros", Json::UInt(self.wall_micros)));
        }
        Json::object(fields)
    }
}

impl JobReport {
    /// The JSON representation of one job.
    pub fn to_json(&self, include_timing: bool) -> Json {
        Json::object(vec![
            ("job_id", Json::UInt(self.job_id as u64)),
            ("name", Json::str(&self.name)),
            ("inputs", Json::UInt(self.num_inputs as u64)),
            ("outputs", Json::UInt(self.num_outputs as u64)),
            (
                "winner",
                match self.winning() {
                    Some(w) => Json::str(w.backend.name()),
                    None => Json::Null,
                },
            ),
            (
                "outcome",
                match self.outcome {
                    Some(outcome) => Json::str(outcome.name()),
                    None => Json::Null,
                },
            ),
            (
                "attempts",
                Json::Array(
                    self.attempts
                        .iter()
                        .map(|a| a.to_json(include_timing))
                        .collect(),
                ),
            ),
            (
                "fault",
                match &self.fault {
                    Some(f) => Json::str(f),
                    None => Json::Null,
                },
            ),
            (
                "error",
                match &self.error {
                    Some(e) => Json::str(e),
                    None => Json::Null,
                },
            ),
        ])
    }
}

impl BatchReport {
    /// The JSON representation of the whole batch. With `include_timing`
    /// off the output is byte-identical across worker counts.
    pub fn to_json(&self, include_timing: bool) -> String {
        let mut fields = vec![
            ("schema", Json::str("brel-engine/batch-v1")),
            ("num_jobs", Json::UInt(self.jobs.len() as u64)),
            ("num_solved", Json::UInt(self.num_solved() as u64)),
        ];
        if include_timing {
            fields.push(("num_workers", Json::UInt(self.num_workers as u64)));
            fields.push(("wall_micros", Json::UInt(self.wall_micros)));
            fields.push((
                "reuse",
                Json::object(vec![
                    ("warm_reuses", Json::UInt(self.reuse.warm_reuses)),
                    ("cold_builds", Json::UInt(self.reuse.cold_builds)),
                    (
                        "subrel_cache_hits",
                        Json::UInt(self.reuse.subrel_cache_hits),
                    ),
                    (
                        "subrel_cache_misses",
                        Json::UInt(self.reuse.subrel_cache_misses),
                    ),
                    ("quarantines", Json::UInt(self.reuse.quarantines)),
                ]),
            ));
        }
        fields.push((
            "wins",
            Json::Object(
                self.wins_by_backend()
                    .into_iter()
                    .map(|(kind, wins)| (kind.name().to_string(), Json::UInt(wins as u64)))
                    .collect(),
            ),
        ));
        fields.push((
            "jobs",
            Json::Array(
                self.jobs
                    .iter()
                    .map(|j| j.to_json(include_timing))
                    .collect(),
            ),
        ));
        Json::object(fields).render_pretty()
    }

    /// The CSV representation: one line per backend attempt, prefixed by a
    /// header. A job on which every backend failed still contributes one
    /// line, with `error` in the backend column and zeroed metrics, so no
    /// job is invisible to CSV consumers. With `include_timing` off the
    /// output is byte-identical across worker counts.
    pub fn to_csv(&self, include_timing: bool) -> String {
        let mut out = String::from(
            "job_id,name,inputs,outputs,backend,strategy,winner,outcome,cost,cubes,literals,explored,splits,frontier_peak,cache_lookups,cache_hits,gc_collections,gc_nodes_reclaimed,gc_peak_live_nodes",
        );
        if include_timing {
            out.push_str(",warm_session,subrel_cache_hit,wall_micros");
        }
        out.push('\n');
        for job in &self.jobs {
            // The outcome classifies the whole job, so every attempt row of
            // a job repeats it ("-" for structural failures, see `error`).
            let outcome = job.outcome.map_or("-", |o| o.name());
            let mut line = |backend: &str, winner: u8, attempt: Option<&SolutionReport>| {
                let _ = write!(
                    out,
                    "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                    job.job_id,
                    csv_field(&job.name),
                    job.num_inputs,
                    job.num_outputs,
                    backend,
                    attempt
                        .and_then(|a| a.strategy)
                        .map_or("-", |strategy| strategy.name()),
                    winner,
                    outcome,
                    attempt.map_or(0, |a| a.cost),
                    attempt.map_or(0, |a| a.cubes as u64),
                    attempt.map_or(0, |a| a.literals as u64),
                    attempt.map_or(0, |a| a.explored as u64),
                    attempt.map_or(0, |a| a.splits as u64),
                    attempt.map_or(0, |a| a.frontier_peak as u64),
                    attempt.map_or(0, |a| a.cache.cache_lookups),
                    attempt.map_or(0, |a| a.cache.cache_hits),
                    attempt.map_or(0, |a| a.gc.collections),
                    attempt.map_or(0, |a| a.gc.nodes_reclaimed),
                    attempt.map_or(0, |a| a.gc.peak_live_nodes),
                );
                if include_timing {
                    let _ = write!(
                        out,
                        ",{},{},{}",
                        attempt.map_or(0, |a| u8::from(a.reuse.warm_session)),
                        attempt.map_or(0, |a| u8::from(a.reuse.subrel_cache_hit)),
                        attempt.map_or(0, |a| a.wall_micros)
                    );
                }
                out.push('\n');
            };
            if job.attempts.is_empty() {
                line("error", 0, None);
                continue;
            }
            for (i, attempt) in job.attempts.iter().enumerate() {
                line(
                    attempt.backend.name(),
                    u8::from(job.winner == Some(i)),
                    Some(attempt),
                );
            }
        }
        out
    }
}

fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobSpec, RelationSpec};
    use crate::pool::Engine;
    use brel_relation::{BooleanRelation, RelationSpace};

    #[test]
    fn json_escaping_and_shapes() {
        let v = Json::object(vec![
            ("s", Json::str("a\"b\\c\nd\u{1}")),
            ("n", Json::UInt(42)),
            ("f", Json::Float(1.5)),
            ("nan", Json::Float(f64::NAN)),
            ("a", Json::Array(vec![Json::Bool(true), Json::Null])),
            ("empty", Json::Array(vec![])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"s":"a\"b\\c\nd\u0001","n":42,"f":1.5,"nan":null,"a":[true,null],"empty":[]}"#
        );
        let pretty = v.render_pretty();
        assert!(pretty.ends_with("}\n"));
        assert!(pretty.contains("  \"n\": 42"));
    }

    #[test]
    fn errored_jobs_still_appear_in_csv() {
        let space = RelationSpace::new(1, 1);
        let broken = BooleanRelation::from_table(&space, "1 : {1}").unwrap();
        let jobs = vec![JobSpec::portfolio(
            "broken",
            RelationSpec::from_relation(&broken).unwrap(),
        )];
        let report = Engine::with_workers(1).solve_batch(&jobs);
        let csv = report.to_csv(false);
        assert_eq!(csv.lines().count(), 2, "header plus one error line");
        assert!(csv
            .lines()
            .nth(1)
            .unwrap()
            .starts_with("0,broken,1,1,error,-,0,-,"));
        let json = report.to_json(false);
        assert!(json.contains("not well defined"));
        // A structural failure has no outcome classification and no fault.
        assert!(json.contains("\"outcome\": null"));
        assert!(json.contains("\"fault\": null"));
    }

    #[test]
    fn csv_fields_are_quoted_when_needed() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("a\"b"), "\"a\"\"b\"");
    }

    #[test]
    fn batch_serializations_are_deterministic_without_timing() {
        let space = RelationSpace::new(2, 2);
        let r = BooleanRelation::from_table(&space, "00:{00}\n01:{00}\n10:{00,11}\n11:{10,11}")
            .unwrap();
        let jobs = vec![JobSpec::portfolio(
            "fig1",
            RelationSpec::from_relation(&r).unwrap(),
        )];
        let a = Engine::with_workers(1).solve_batch(&jobs);
        let b = Engine::with_workers(4).solve_batch(&jobs);
        assert_eq!(a.to_json(false), b.to_json(false));
        assert_eq!(a.to_csv(false), b.to_csv(false));
        // The lifecycle block is part of the deterministic surface.
        assert!(a.to_json(false).contains("\"gc\""));
        assert!(a.to_json(false).contains("\"peak_live_nodes\""));
        assert!(a
            .to_csv(false)
            .starts_with("job_id,name,inputs,outputs,backend,strategy,winner,outcome,cost,cubes,literals,explored,splits,frontier_peak,cache_lookups,cache_hits,gc_collections,gc_nodes_reclaimed,gc_peak_live_nodes\n"));
        // The fault-tolerance columns are part of the deterministic surface:
        // a clean job is classified "solved" with no degraded attempts.
        assert!(a.to_json(false).contains("\"outcome\": \"solved\""));
        assert!(a.to_json(false).contains("\"degraded\": false"));
        assert!(a.to_csv(false).lines().nth(1).unwrap().contains(",solved,"));
        // The search columns are part of the deterministic surface.
        assert!(a.to_json(false).contains("\"strategy\""));
        assert!(a.to_json(false).contains("\"splits\""));
        assert!(a.to_json(false).contains("\"frontier_peak\""));
        // Timing-bearing output still parses structurally: the header gains
        // the extra column and the JSON gains the worker fields.
        assert!(a.to_csv(true).starts_with("job_id,") && a.to_csv(true).contains("wall_micros"));
        assert!(a.to_json(true).contains("\"num_workers\""));
        assert!(!a.to_json(false).contains("\"num_workers\""));
        // Reuse provenance is timing-gated: present with timings, absent
        // from the deterministic surface.
        assert!(a.to_json(true).contains("\"reuse\""));
        assert!(a.to_json(true).contains("\"subrel_cache_hits\""));
        assert!(!a.to_json(false).contains("\"reuse\""));
        assert!(a
            .to_csv(true)
            .contains(",warm_session,subrel_cache_hit,wall_micros"));
        assert!(!a.to_csv(false).contains("warm_session"));
    }
}
