//! Fault policy, outcome taxonomy and the deterministic fault-injection
//! harness.
//!
//! The engine's fault-tolerance contract has three layers:
//!
//! * every job carries a [`FaultPolicy`] — a wall-clock deadline, a
//!   live-node quota mapped onto the kernel's
//!   [`brel_bdd::ResourceGovernor`], a deterministic step deadline, a
//!   bounded retry count for transient faults, and a degradation switch;
//! * every backend attempt is classified: panics are caught at the attempt
//!   boundary and folded, together with governor aborts, into a
//!   [`FaultClass`], which decides retry/quarantine/degradation and maps to
//!   the job-level [`JobOutcome`] taxonomy the reports carry;
//! * a seeded [`FaultPlan`] injects faults (a panic, a quota trip, or a
//!   step deadline at the Nth expansion of a named job) *deterministically*
//!   — each injection arms exactly once, so a chaos batch produces the same
//!   structured outcomes at every worker count, which is what lets the
//!   chaos gates byte-compare clean jobs against a no-fault run.

use std::any::Any;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

use brel_bdd::BddError;

/// Per-job fault policy: how much a job may consume and what happens when
/// it misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultPolicy {
    /// Wall-clock deadline for the BREL attempt, in milliseconds. Checked
    /// cooperatively between exploration steps and inside the kernel (via
    /// the governor), so a runaway job aborts with a structured
    /// [`JobOutcome::TimedOut`] instead of hanging the batch. Wall-clock
    /// deadlines are timing-dependent by nature and never participate in
    /// determinism gates — those use [`FaultPolicy::step_deadline`].
    pub deadline_ms: Option<u64>,
    /// Live-node quota for the BREL attempt's BDD manager. On the first
    /// crossing the kernel tries a garbage collection; if the quota is
    /// still exceeded afterwards (or the hard ceiling of twice the quota is
    /// hit), the attempt aborts with [`JobOutcome::QuotaExceeded`].
    pub max_live_nodes: Option<u64>,
    /// Deterministic deadline: stop the BREL exploration after this many
    /// expanded subrelations and keep the incumbent as a
    /// [`JobOutcome::Degraded`] result. The timing-free stand-in for
    /// `deadline_ms` in reproducible tests and chaos gates.
    pub step_deadline: Option<usize>,
    /// How many times a *transient* fault (a panic — not a quota or
    /// deadline abort, which would just recur) is retried on a fresh cold
    /// session before the attempt is given up.
    pub retries: u32,
    /// Walk the degradation ladder when every backend of the job failed:
    /// a budget-capped best-first BREL run, then the quick solver, so a
    /// batch always returns one scored row per job. With `false` the job
    /// reports its fault outcome and no solution.
    pub fallback: bool,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            deadline_ms: None,
            max_live_nodes: None,
            step_deadline: None,
            retries: 0,
            fallback: true,
        }
    }
}

impl FaultPolicy {
    /// `true` when the policy maps onto the kernel's resource governor
    /// (a quota or wall-clock deadline is set).
    pub fn governs(&self) -> bool {
        self.max_live_nodes.is_some() || self.deadline_ms.is_some()
    }
}

/// The structured outcome of one job, carried through every report
/// serialization so a batch consumer can tell a clean solve from a
/// degraded or aborted one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobOutcome {
    /// Every requested backend completed cleanly.
    Solved,
    /// The job hit a fault or truncation but still delivered a verified
    /// compatible solution (surviving portfolio backends, a retried
    /// attempt's incumbent, or a degradation-ladder rung).
    Degraded,
    /// A deadline (wall-clock or step) expired and no solution survived.
    TimedOut,
    /// The live-node quota aborted the job and no solution survived.
    QuotaExceeded,
    /// A panic killed the job and no solution survived.
    Panicked,
}

impl JobOutcome {
    /// Short stable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            JobOutcome::Solved => "solved",
            JobOutcome::Degraded => "degraded",
            JobOutcome::TimedOut => "timed-out",
            JobOutcome::QuotaExceeded => "quota-exceeded",
            JobOutcome::Panicked => "panicked",
        }
    }
}

/// The kind of fault a [`FaultInjection`] fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Panic at the Nth expansion (an [`InjectedPanic`] payload, so the
    /// engine can tell it from an organic bug).
    Panic,
    /// Raise the kernel's quota abort at the Nth expansion, as if the
    /// governor had tripped.
    QuotaTrip,
    /// Arm a step deadline at the Nth expansion: the exploration truncates
    /// there and the job degrades to its incumbent.
    StepDeadline,
}

impl FaultKind {
    /// Short stable name used in reports and logs.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::QuotaTrip => "quota-trip",
            FaultKind::StepDeadline => "step-deadline",
        }
    }
}

/// The panic payload of a [`FaultKind::Panic`] injection. A distinct type
/// (rather than a string) so the classifier can prove a panic was injected
/// and the quiet panic hook can suppress its default backtrace output.
#[derive(Debug, Clone)]
pub struct InjectedPanic {
    /// Name of the job the injection targeted.
    pub job: String,
    /// The expansion index the injection fired at.
    pub at_expansion: usize,
}

impl InjectedPanic {
    /// The deterministic description carried into the job report.
    pub fn describe(&self) -> String {
        format!(
            "injected panic at expansion {} of job {}",
            self.at_expansion, self.job
        )
    }
}

/// One armed fault: fire `kind` at the `at_expansion`-th expansion of the
/// job named `job`. Fires exactly once (compare-and-swap), so retries and
/// degradation-ladder rungs of the same job run clean — the property the
/// retry path and the chaos determinism gates rely on.
#[derive(Debug)]
pub struct FaultInjection {
    job: String,
    at_expansion: usize,
    kind: FaultKind,
    fired: AtomicBool,
}

impl FaultInjection {
    /// A new, unfired injection.
    pub fn new(job: impl Into<String>, at_expansion: usize, kind: FaultKind) -> Self {
        FaultInjection {
            job: job.into(),
            at_expansion,
            kind,
            fired: AtomicBool::new(false),
        }
    }

    /// Name of the targeted job.
    pub fn job(&self) -> &str {
        &self.job
    }

    /// The expansion index the fault fires at.
    pub fn at_expansion(&self) -> usize {
        self.at_expansion
    }

    /// What the injection does when it fires.
    pub fn kind(&self) -> FaultKind {
        self.kind
    }

    /// Whether the injection has fired already.
    pub fn has_fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }

    /// Arms the injection: returns `true` exactly once.
    pub(crate) fn fire(&self) -> bool {
        !self.fired.swap(true, Ordering::SeqCst)
    }
}

/// A deterministic set of fault injections for one batch run. Injections
/// are armed-once, so a plan is good for exactly one batch — rebuild a
/// fresh plan (same seed, same jobs) to replay the identical faults.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    injections: Vec<FaultInjection>,
}

impl FaultPlan {
    /// A plan from explicit injections.
    pub fn new(injections: Vec<FaultInjection>) -> Self {
        FaultPlan {
            seed: 0,
            injections,
        }
    }

    /// The canonical chaos plan: picks up to three *distinct* jobs from
    /// `job_names` (SplitMix64 on `seed`) and assigns one injection of each
    /// [`FaultKind`] — a panic, a quota trip and a step deadline — at
    /// expansion 0 or 1, indices every well-defined job is guaranteed to
    /// reach. Pure in `(seed, job_names)`, so rebuilding the plan replays
    /// the same faults.
    pub fn seeded(seed: u64, job_names: &[&str]) -> Self {
        let mut state = seed;
        let kinds = [
            FaultKind::Panic,
            FaultKind::QuotaTrip,
            FaultKind::StepDeadline,
        ];
        let mut picked: Vec<usize> = Vec::new();
        let mut injections = Vec::new();
        for kind in kinds.into_iter().take(job_names.len()) {
            let index = loop {
                let candidate = (splitmix64(&mut state) % job_names.len() as u64) as usize;
                if !picked.contains(&candidate) {
                    break candidate;
                }
            };
            picked.push(index);
            let at_expansion = (splitmix64(&mut state) % 2) as usize;
            injections.push(FaultInjection::new(job_names[index], at_expansion, kind));
        }
        FaultPlan { seed, injections }
    }

    /// The seed the plan was derived from (0 for explicit plans).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Every injection of the plan.
    pub fn injections(&self) -> &[FaultInjection] {
        &self.injections
    }

    /// The injections targeting the job named `name`.
    pub fn for_job(&self, name: &str) -> Vec<&FaultInjection> {
        self.injections.iter().filter(|i| i.job == name).collect()
    }

    /// The distinct job names the plan targets.
    pub fn targets(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.injections.iter().map(|i| i.job.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// How many injections have fired so far.
    pub fn num_fired(&self) -> usize {
        self.injections.iter().filter(|i| i.has_fired()).count()
    }
}

/// The SplitMix64 step shared by the chaos planner and wide mode's
/// stagger plans: cheap, seedable, and good enough to scramble schedules.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The engine-side classification of a failed backend attempt: what the
/// unwind payload (or governor error) proves about the failure. Decides
/// retry (panics are transient, resource aborts would just recur),
/// quarantine, and the job outcome when no solution survives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum FaultClass {
    /// The attempt panicked; the payload's message (deterministic for
    /// injected panics).
    Panicked(String),
    /// The kernel's live-node quota aborted the attempt.
    Quota,
    /// A deadline (wall-clock, kernel or injected) aborted the attempt.
    Deadline,
}

impl FaultClass {
    /// Classifies a caught panic payload: governor aborts carry a typed
    /// [`BddError`], injections carry an [`InjectedPanic`], anything else
    /// is an organic panic whose message is preserved.
    pub(crate) fn from_panic(payload: Box<dyn Any + Send>) -> FaultClass {
        let payload = match payload.downcast::<BddError>() {
            Ok(error) => {
                return match *error {
                    BddError::QuotaExceeded { .. } => FaultClass::Quota,
                    BddError::DeadlineExceeded { .. } => FaultClass::Deadline,
                    // A poisoned session means some computation died on it:
                    // treat it like a panic (transient, quarantine + retry).
                    BddError::Poisoned => FaultClass::Panicked(error.to_string()),
                };
            }
            Err(payload) => payload,
        };
        let payload = match payload.downcast::<InjectedPanic>() {
            Ok(injected) => return FaultClass::Panicked(injected.describe()),
            Err(payload) => payload,
        };
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "opaque panic payload".to_string()
        };
        FaultClass::Panicked(message)
    }

    /// The same classification for a governor abort that surfaced as a
    /// structured error (through `Explorer::step_guarded`) rather than an
    /// unwind.
    pub(crate) fn from_resource(error: &BddError) -> FaultClass {
        match error {
            BddError::QuotaExceeded { .. } => FaultClass::Quota,
            BddError::DeadlineExceeded { .. } => FaultClass::Deadline,
            BddError::Poisoned => FaultClass::Panicked(error.to_string()),
        }
    }

    /// Deterministic, timing-free description for the job report. No
    /// volatile numbers: the chaos gates byte-compare reports across runs.
    pub(crate) fn describe(&self) -> String {
        match self {
            FaultClass::Panicked(message) => format!("panic: {message}"),
            FaultClass::Quota => "live-node quota exceeded".to_string(),
            FaultClass::Deadline => "deadline exceeded".to_string(),
        }
    }

    /// Whether retrying could help: panics are one-off (a poisoned session
    /// is quarantined and rebuilt), resource aborts would just recur under
    /// the same policy.
    pub(crate) fn transient(&self) -> bool {
        matches!(self, FaultClass::Panicked(_))
    }

    /// The job outcome when no solution survives this fault.
    pub(crate) fn outcome(&self) -> JobOutcome {
        match self {
            FaultClass::Panicked(_) => JobOutcome::Panicked,
            FaultClass::Quota => JobOutcome::QuotaExceeded,
            FaultClass::Deadline => JobOutcome::TimedOut,
        }
    }
}

/// Suppresses the default panic-hook output (message + backtrace) for the
/// engine's *cooperative* unwinds — injected-fault payloads and the
/// kernel's resource aborts — which are caught and classified at the
/// attempt boundary. Organic panics keep the previous hook's behaviour.
/// Installed once per process; safe to call from any thread.
pub fn quiet_fault_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        brel_bdd::quiet_resource_aborts();
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_some() {
                return;
            }
            previous(info);
        }));
    });
}

/// Runs `f`, converting any unwind into a classified [`FaultClass`]. The
/// single panic-isolation boundary of the engine: pool workers, wide-round
/// workers, retries and degradation-ladder rungs all go through here, so a
/// panicking backend can never take the batch down or hang a coordinator.
pub(crate) fn catch_fault<T>(f: impl FnOnce() -> T) -> Result<T, FaultClass> {
    quiet_fault_panics();
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(FaultClass::from_panic)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_distinct() {
        let names = ["a", "b", "c", "d", "e"];
        let plan = FaultPlan::seeded(42, &names);
        let replay = FaultPlan::seeded(42, &names);
        assert_eq!(plan.injections().len(), 3);
        assert_eq!(plan.targets().len(), 3, "three distinct jobs");
        for (i, r) in plan.injections().iter().zip(replay.injections()) {
            assert_eq!(i.job(), r.job());
            assert_eq!(i.at_expansion(), r.at_expansion());
            assert_eq!(i.kind(), r.kind());
            assert!(i.at_expansion() <= 1, "guaranteed-reachable index");
        }
        let kinds: Vec<FaultKind> = plan.injections().iter().map(|i| i.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                FaultKind::Panic,
                FaultKind::QuotaTrip,
                FaultKind::StepDeadline
            ]
        );
    }

    #[test]
    fn small_batches_get_fewer_injections() {
        let plan = FaultPlan::seeded(7, &["only", "pair"]);
        assert_eq!(plan.injections().len(), 2);
        assert_eq!(plan.targets().len(), 2);
        assert!(FaultPlan::seeded(7, &[]).injections().is_empty());
    }

    #[test]
    fn injections_fire_exactly_once() {
        let injection = FaultInjection::new("j", 1, FaultKind::Panic);
        assert!(!injection.has_fired());
        assert!(injection.fire());
        assert!(!injection.fire(), "second fire is a no-op");
        assert!(injection.has_fired());
        let plan = FaultPlan::new(vec![injection]);
        assert_eq!(plan.num_fired(), 1);
    }

    #[test]
    fn panic_payloads_classify_by_type() {
        let quota = FaultClass::from_panic(Box::new(BddError::QuotaExceeded {
            live_nodes: 9,
            max_live_nodes: 4,
        }));
        assert_eq!(quota, FaultClass::Quota);
        assert_eq!(quota.outcome(), JobOutcome::QuotaExceeded);
        assert!(!quota.transient());

        let deadline = FaultClass::from_panic(Box::new(BddError::DeadlineExceeded {
            elapsed_ms: 2,
            deadline_ms: 1,
        }));
        assert_eq!(deadline, FaultClass::Deadline);
        assert_eq!(deadline.outcome(), JobOutcome::TimedOut);

        let injected = FaultClass::from_panic(Box::new(InjectedPanic {
            job: "int3".to_string(),
            at_expansion: 1,
        }));
        assert_eq!(
            injected,
            FaultClass::Panicked("injected panic at expansion 1 of job int3".to_string())
        );
        assert!(injected.transient());
        assert_eq!(injected.outcome(), JobOutcome::Panicked);
        assert!(injected.describe().starts_with("panic: injected panic"));

        let organic = FaultClass::from_panic(Box::new("index out of bounds".to_string()));
        assert_eq!(
            organic,
            FaultClass::Panicked("index out of bounds".to_string())
        );
    }

    #[test]
    fn catch_fault_passes_values_through_and_catches_unwinds() {
        assert_eq!(catch_fault(|| 5), Ok(5));
        let caught = catch_fault(|| -> u32 { panic!("boom") });
        assert_eq!(caught, Err(FaultClass::Panicked("boom".to_string())));
        let caught = catch_fault(|| {
            std::panic::panic_any(BddError::QuotaExceeded {
                live_nodes: 3,
                max_live_nodes: 1,
            })
        });
        assert_eq!(caught, Err(FaultClass::Quota));
    }

    #[test]
    fn outcome_names_are_stable() {
        assert_eq!(JobOutcome::Solved.name(), "solved");
        assert_eq!(JobOutcome::Degraded.name(), "degraded");
        assert_eq!(JobOutcome::TimedOut.name(), "timed-out");
        assert_eq!(JobOutcome::QuotaExceeded.name(), "quota-exceeded");
        assert_eq!(JobOutcome::Panicked.name(), "panicked");
        assert_eq!(FaultKind::QuotaTrip.name(), "quota-trip");
        assert_eq!(FaultPolicy::default().retries, 0);
        assert!(FaultPolicy::default().fallback);
        assert!(!FaultPolicy::default().governs());
    }
}
