//! Wide mode: asynchronous work-stealing search inside one BREL solve.
//!
//! The batch engine's unit of parallelism is the *job* — useless when one
//! relation dominates the batch. Wide mode parallelizes *inside* one BREL
//! solve instead, without the round barrier of its first incarnation:
//! every worker loops over three phases — **commit** ready expansions in
//! the exact order the sequential explorer would pop them, **claim** a
//! pending subproblem near the head of the frontier, and **execute** it
//! speculatively against a snapshot of the shared incumbent bound. There
//! is no coordinator thread and no round: whichever worker holds the
//! state lock drives the commit sequence forward, and idle workers steal
//! work instead of waiting for the slowest expansion of a round.
//!
//! Determinism is by construction, not by synchronization:
//!
//! * every subproblem carries a stable sequence number assigned at commit
//!   time (children are numbered in split order by the committing
//!   worker), so the frontier's pop order is a pure function of the
//!   search, never of thread timing;
//! * results only take effect at commit, in pop order — the incumbent,
//!   the explored/split counters, dominance pruning and child admission
//!   all advance exactly as a sequential run would;
//! * a speculative expansion runs against a *snapshot* of the shared
//!   bound taken when the subproblem was claimed. The bound only tightens
//!   at commit, so the snapshot is always ≥ the bound the sequential run
//!   would have used: a stale snapshot can only make the worker compute a
//!   superset of the needed result (children that commit then discards),
//!   never a different one.
//!
//! The rows-rehydration tax is gone from the hot path: a subproblem
//! expanded by the worker that created it reuses that worker's warm
//! [`brel_bdd::BddSession`] directly (the split halves are kept as live
//! BDD handles — the kernel is `Send`). Only subproblems *stolen* across
//! workers ship, lazily at steal time, by structural DAG copy from the
//! owner's live handle into the stealer's session
//! ([`brel_bdd::BddSession::import`] — O(shared nodes), no row
//! enumeration); subproblems below [`WideOptions::steal_threshold`]
//! input/output pairs are never stolen at all — they stay pinned to
//! their owner, where re-expanding is cheaper than shipping.

use std::collections::BTreeSet;
use std::sync::{Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use brel_bdd::ResourceGovernor;
use brel_core::{
    expand, CostFn, CostFunction, IsfMinimizer, QuickSolver, SearchStrategy, SharedBound,
};
use brel_relation::{BooleanRelation, RelationError, RelationSpace};

use crate::backend::SolutionReport;
use crate::control::JobControl;
use crate::fault::{catch_fault, splitmix64, FaultClass, FaultInjection, FaultKind, InjectedPanic};
use crate::job::{BackendKind, JobSpec};
use crate::reuse::{ReuseStats, WarmSession};

/// Wide-mode configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WideOptions {
    /// How far past the frontier head a worker may look for claimable
    /// work (clamped to at least 1). A larger lookahead keeps more
    /// workers busy on speculative expansions; a smaller one wastes less
    /// work when the incumbent improves quickly.
    pub lookahead: usize,
    /// Minimum size — in input/output pairs ([`BooleanRelation::num_pairs`])
    /// — for a subproblem to be stealable by other workers. Subproblems
    /// below the threshold stay pinned to the worker that created them
    /// (whose warm session already holds their BDD handles); at or above
    /// it, a stealer copies the owner's handle into its own session by
    /// structural DAG import ([`brel_bdd::BddSession::import`]).
    pub steal_threshold: usize,
    /// Optional seeded artificial delay before each expansion, used by
    /// the steal-order-invariance tests to scramble thread timing without
    /// touching results.
    pub stagger: Option<StaggerPlan>,
}

impl Default for WideOptions {
    fn default() -> Self {
        WideOptions {
            lookahead: 8,
            steal_threshold: 4,
            stagger: None,
        }
    }
}

/// A seeded per-expansion delay plan: worker `w` sleeps a SplitMix64-
/// derived number of microseconds (below `max_micros`) before expanding
/// subproblem `seq`. Changes scheduling, must never change results —
/// that is exactly what the invariance tests assert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaggerPlan {
    /// Seed mixed with the worker index and subproblem sequence number.
    pub seed: u64,
    /// Exclusive upper bound on the injected delay, in microseconds.
    pub max_micros: u64,
}

/// The incumbent's scored metrics (the function itself is re-derivable;
/// reports only carry numbers).
#[derive(Debug, Clone, Copy)]
struct Incumbent {
    cost: u64,
    cubes: usize,
    literals: usize,
}

/// The committed-form result of one expansion: everything `apply` needs,
/// with the candidate/quick functions already scored down to numbers.
/// Cover statistics re-run ISOP, so they are only present when the
/// commit can actually consume them: the bound at commit is never above
/// the claim-time snapshot, so a cost at or above the snapshot can never
/// improve the incumbent and its cover is never scored.
struct ReadyExpansion {
    candidate_cost: u64,
    compatible: bool,
    /// `(cubes, literals)` of the candidate, iff it can still improve.
    cover: Option<(usize, usize)>,
    /// `(cost, cubes, literals)` of the quick solution, iff it can still
    /// improve.
    quick: Option<(u64, usize, usize)>,
    /// Split halves as live handles in the expanding worker's session.
    children: Option<[BooleanRelation; 2]>,
}

/// Lifecycle of one frontier entry.
enum EntryState {
    /// Waiting to be claimed.
    Pending,
    /// Claimed by a worker; its expansion is in flight.
    Running,
    /// Expanded; waiting for the commit sequence to reach it.
    Ready(Box<ReadyExpansion>),
    /// Dominance-dropped at commit before (or while) expanding.
    Discarded,
}

/// One subproblem. Indexed by its sequence number: `entries[seq]` is the
/// subproblem whose deterministic identity is `seq` (the root is 0;
/// children get `entries.len()` at the moment their parent commits,
/// negative half first).
struct Entry {
    depth: usize,
    lower_bound: u64,
    /// The worker whose session hosts `relation` (meaningful while
    /// `relation` is `Some`).
    owner: usize,
    /// Live handle in the owner's session; taken when claimed.
    relation: Option<BooleanRelation>,
    state: EntryState,
}

/// Everything the commit sequence owns, guarded by one mutex.
struct CommitState {
    entries: Vec<Entry>,
    /// Uncommitted subproblems as `(bound-or-zero, seq)` keys: best-first
    /// keys on `(lower_bound, seq)`, FIFO/DFS on `(0, seq)` — FIFO pops
    /// the minimum seq, DFS the maximum (the global sequence counter is
    /// monotone, so the max key *is* the top of the sequential stack).
    frontier: BTreeSet<(u64, u64)>,
    best: Incumbent,
    explored: usize,
    splits: usize,
    frontier_peak: usize,
    done: bool,
    degraded: bool,
    fault: Option<String>,
    error: Option<RelationError>,
    /// Worker whose session must be quarantined after the join (injected
    /// faults are synthesized at commit, outside any worker's unwind, so
    /// the quarantine is applied by the orchestrator).
    quarantine_worker: Option<usize>,
}

/// The shared search: commit state, a wakeup channel for idle workers,
/// and the cross-worker incumbent bound (readable without the lock).
struct Shared {
    state: Mutex<CommitState>,
    work_ready: Condvar,
    bound: SharedBound,
}

/// Immutable per-run context threaded to every worker.
struct RunContext<'a> {
    job: &'a JobSpec,
    options: WideOptions,
    deadline: Option<Instant>,
    control: Option<&'a JobControl>,
    injections: &'a [&'a FaultInjection],
}

/// A claimed subproblem, ready to execute outside the lock. On a steal,
/// `relation` is the *old owner's* handle: the stealer serializes it to
/// rows, rebuilds in its own session, and drops it — all outside the
/// state lock.
struct Claimed {
    seq: usize,
    depth: usize,
    lower_bound: u64,
    relation: BooleanRelation,
    /// Shared-bound snapshot taken at claim time.
    snapshot: u64,
    stolen: bool,
}

fn frontier_key(strategy: SearchStrategy, lower_bound: u64, seq: u64) -> (u64, u64) {
    match strategy {
        SearchStrategy::BestFirst => (lower_bound, seq),
        SearchStrategy::Fifo | SearchStrategy::Dfs => (0, seq),
    }
}

/// The key the sequential strategy would pop next.
fn head_key(frontier: &BTreeSet<(u64, u64)>, strategy: SearchStrategy) -> Option<(u64, u64)> {
    match strategy {
        SearchStrategy::Dfs => frontier.iter().next_back().copied(),
        SearchStrategy::Fifo | SearchStrategy::BestFirst => frontier.iter().next().copied(),
    }
}

/// Records a new incumbent (only ever called at commit, under the state
/// lock, so improvements are serialized and strictly decreasing).
fn improve(
    state: &mut CommitState,
    shared: &Shared,
    ctx: &RunContext<'_>,
    cost: u64,
    cubes: usize,
    literals: usize,
) {
    state.best = Incumbent {
        cost,
        cubes,
        literals,
    };
    shared.bound.improve(cost);
    brel_obs::event_with(brel_obs::Category::Engine, "bound_improve", "cost", cost);
    if let Some(control) = ctx.control {
        control.notify_incumbent(cost, state.explored);
    }
}

fn discard_entry(entry: &mut Entry, garbage: &mut Vec<BooleanRelation>) {
    if let Some(handle) = entry.relation.take() {
        garbage.push(handle);
    }
    if let EntryState::Ready(ready) = std::mem::replace(&mut entry.state, EntryState::Discarded) {
        if let Some(children) = ready.children {
            garbage.extend(children);
        }
    }
}

/// Applies one committed expansion: counters, incumbent, dominance prune
/// and child admission — the exact transition the sequential explorer
/// performs on a popped subproblem.
fn apply_expansion(
    state: &mut CommitState,
    shared: &Shared,
    ctx: &RunContext<'_>,
    seq: usize,
    ready: ReadyExpansion,
    garbage: &mut Vec<BooleanRelation>,
) {
    let depth = state.entries[seq].depth;
    let owner = state.entries[seq].owner;
    state.explored += 1;
    if ready.candidate_cost >= state.best.cost {
        // Cost-pruned. The expansion may still carry children (it ran
        // against a stale-but-larger bound snapshot); they are exactly
        // the work the sequential run would never have produced.
        if let Some(children) = ready.children {
            garbage.extend(children);
        }
        return;
    }
    if ready.compatible {
        let (cubes, literals) = ready
            .cover
            .expect("cover stats exist for any cost below the claim snapshot");
        improve(state, shared, ctx, ready.candidate_cost, cubes, literals);
        return;
    }
    if let Some((q_cost, q_cubes, q_literals)) = ready.quick {
        if q_cost < state.best.cost {
            improve(state, shared, ctx, q_cost, q_cubes, q_literals);
        }
    }
    let children = ready
        .children
        .expect("expand splits every unpruned incompatible candidate");
    state.splits += 1;
    for child in children {
        if let Some(cap) = ctx.job.budget.fifo_capacity {
            if state.frontier.len() >= cap {
                garbage.push(child);
                continue;
            }
        }
        let child_seq = state.entries.len() as u64;
        state.entries.push(Entry {
            depth: depth + 1,
            lower_bound: ready.candidate_cost,
            owner,
            relation: Some(child),
            state: EntryState::Pending,
        });
        state.frontier.insert(frontier_key(
            ctx.job.strategy,
            ready.candidate_cost,
            child_seq,
        ));
        state.frontier_peak = state.frontier_peak.max(state.frontier.len());
    }
}

/// Drives the commit sequence as far as it can go: fires injections and
/// budget/deadline/cancel checks at each expansion index (mirroring the
/// sequential engine's per-step checks), then commits the frontier head
/// while it is `Ready`. Returns with the head `Pending`/`Running` (go
/// speculate) or with `done` set.
fn commit_ready(
    state: &mut CommitState,
    shared: &Shared,
    ctx: &RunContext<'_>,
    garbage: &mut Vec<BooleanRelation>,
) {
    while !state.done {
        // Injections fire by equality with the cumulative expansion
        // count — the commit sequence passes through every index, so a
        // plan aimed anywhere in the search fires deterministically,
        // before the next commit and regardless of worker count.
        for injection in ctx.injections {
            if injection.at_expansion() != state.explored {
                continue;
            }
            match injection.kind() {
                FaultKind::Panic => {
                    if injection.fire() {
                        state.degraded = true;
                        let described = FaultClass::Panicked(
                            InjectedPanic {
                                job: injection.job().to_string(),
                                at_expansion: injection.at_expansion(),
                            }
                            .describe(),
                        )
                        .describe();
                        state.fault.get_or_insert(described);
                        state.quarantine_worker.get_or_insert(0);
                        state.done = true;
                    }
                }
                FaultKind::QuotaTrip => {
                    if injection.fire() {
                        state.degraded = true;
                        state
                            .fault
                            .get_or_insert_with(|| FaultClass::Quota.describe());
                        state.quarantine_worker.get_or_insert(0);
                        state.done = true;
                    }
                }
                FaultKind::StepDeadline => {
                    if injection.fire() {
                        state.degraded = true;
                        state.fault.get_or_insert_with(|| {
                            format!(
                                "injected step deadline at expansion {} of job {}",
                                injection.at_expansion(),
                                injection.job()
                            )
                        });
                        state.done = true;
                    }
                }
            }
        }
        if state.done {
            return;
        }
        if state.frontier.is_empty() {
            state.done = true;
            return;
        }
        if let Some(limit) = ctx.job.fault.step_deadline {
            if state.explored >= limit {
                state.degraded = true;
                let explored = state.explored;
                state.fault.get_or_insert_with(|| {
                    format!("step deadline expired after {explored} expansions")
                });
                state.done = true;
                return;
            }
        }
        // The wall deadline is timing-dependent by nature; determinism
        // gates use step deadlines instead.
        if let Some(at) = ctx.deadline {
            if Instant::now() >= at {
                state.degraded = true;
                state
                    .fault
                    .get_or_insert_with(|| FaultClass::Deadline.describe());
                state.done = true;
                return;
            }
        }
        if let Some(control) = ctx.control {
            if control.is_cancelled() {
                state.degraded = true;
                let explored = state.explored;
                state
                    .fault
                    .get_or_insert_with(|| format!("cancelled after {explored} expansions"));
                state.done = true;
                return;
            }
        }
        if let Some(max) = ctx.job.budget.max_explored {
            if state.explored >= max {
                // Budget exhausted: stop expanding, keep the incumbent.
                state.done = true;
                return;
            }
        }
        let key = head_key(&state.frontier, ctx.job.strategy).expect("frontier checked non-empty");
        let seq = key.1 as usize;
        if ctx.job.strategy == SearchStrategy::BestFirst
            && state.entries[seq].lower_bound >= state.best.cost
        {
            // Dominance: dropped unexplored, like the sequential
            // best-first frontier — even if a speculative expansion is
            // in flight or finished (its result is simply discarded).
            state.frontier.remove(&key);
            discard_entry(&mut state.entries[seq], garbage);
            continue;
        }
        match state.entries[seq].state {
            EntryState::Ready(_) => {
                state.frontier.remove(&key);
                let prior = std::mem::replace(&mut state.entries[seq].state, EntryState::Discarded);
                let EntryState::Ready(ready) = prior else {
                    unreachable!("matched Ready above");
                };
                apply_expansion(state, shared, ctx, seq, *ready, garbage);
            }
            EntryState::Pending | EntryState::Running => return,
            EntryState::Discarded => {
                // Defensive: a discarded entry never stays in the
                // frontier, but dropping it again is harmless.
                state.frontier.remove(&key);
            }
        }
    }
}

/// Claims a `Pending`, not best-first-dominated entry within `lookahead`
/// of the frontier head, in pop order — with owner affinity: a worker
/// first looks for a subproblem *it* created (whose BDDs sit live in its
/// own warm session), and only when it owns nothing claimable does it
/// steal, taking the head-most entry of at least `steal_threshold` pairs.
/// Affinity changes which worker expands what, never what is expanded:
/// commits still apply in pop order regardless of who computed them.
fn claim_work(
    state: &mut CommitState,
    w: usize,
    ctx: &RunContext<'_>,
    bound: &SharedBound,
) -> Option<Claimed> {
    let budget_left = ctx
        .job
        .budget
        .max_explored
        .map_or(usize::MAX, |max| max.saturating_sub(state.explored))
        .max(1);
    let limit = ctx.options.lookahead.max(1).min(budget_left);
    let keys: Vec<(u64, u64)> = match ctx.job.strategy {
        SearchStrategy::Dfs => state.frontier.iter().rev().take(limit).copied().collect(),
        SearchStrategy::Fifo | SearchStrategy::BestFirst => {
            state.frontier.iter().take(limit).copied().collect()
        }
    };
    for steal_pass in [false, true] {
        for &key in &keys {
            let seq = key.1 as usize;
            let best_cost = state.best.cost;
            let entry = &mut state.entries[seq];
            if !matches!(entry.state, EntryState::Pending) {
                continue;
            }
            if ctx.job.strategy == SearchStrategy::BestFirst && entry.lower_bound >= best_cost {
                // Will be dominance-dropped at commit; not worth expanding.
                continue;
            }
            let Some(handle) = entry.relation.as_ref() else {
                continue;
            };
            let own = entry.owner == w;
            if own == steal_pass {
                continue;
            }
            if !own {
                // Steal gate: `num_pairs` is one sat-count over the
                // handle's characteristic BDD — cheap enough to ask under
                // the state lock (the owner's session mutex is a leaf
                // lock, never held across a wait on the state lock). The
                // serialization itself happens outside, in the stealer's
                // loop.
                if handle.num_pairs() < ctx.options.steal_threshold as u128 {
                    continue;
                }
            }
            let relation = entry.relation.take().expect("checked Some above");
            entry.owner = w;
            entry.state = EntryState::Running;
            return Some(Claimed {
                seq,
                depth: entry.depth,
                lower_bound: entry.lower_bound,
                relation,
                snapshot: bound.get(),
                stolen: !own,
            });
        }
    }
    None
}

/// Runs one speculative expansion in this worker's space and packages
/// the result for commit. Pure in `(relation, prune_bound)`.
fn execute_expand(
    space: &RelationSpace,
    relation: &BooleanRelation,
    cost_fn: &CostFn,
    prune_bound: u64,
    ctx: &RunContext<'_>,
) -> Result<ReadyExpansion, RelationError> {
    let governed = ctx.job.fault.max_live_nodes.is_some() || ctx.deadline.is_some();
    if governed {
        let mut governor = ResourceGovernor::new();
        if let Some(max) = ctx.job.fault.max_live_nodes {
            governor = governor.with_max_live_nodes(max);
        }
        if let Some(at) = ctx.deadline {
            governor = governor.with_deadline_at(at);
        }
        space.mgr().set_governor(governor);
    }
    let minimizer = IsfMinimizer::default();
    let quick = QuickSolver::new().with_minimizer(minimizer);
    let result = expand(&minimizer, cost_fn, &quick, relation, prune_bound);
    if governed {
        space.mgr().clear_governor();
    }
    let expansion = result?;
    // Scoring a cover re-runs ISOP per output — compute it at most once
    // per function, and only when the result can still beat the bound
    // (the bound at commit is never above `prune_bound`, the claim-time
    // snapshot, so anything at or above it is dead on arrival).
    let cover = (expansion.compatible && expansion.candidate_cost < prune_bound).then(|| {
        let cover = expansion.candidate.to_multicover();
        (cover.num_cubes(), cover.num_literals())
    });
    let quick = expansion
        .quick
        .as_ref()
        .filter(|(_, q_cost)| *q_cost < prune_bound)
        .map(|(q, q_cost)| {
            let cover = q.to_multicover();
            (*q_cost, cover.num_cubes(), cover.num_literals())
        });
    Ok(ReadyExpansion {
        candidate_cost: expansion.candidate_cost,
        compatible: expansion.compatible,
        cover,
        quick,
        children: expansion
            .split
            .map(|split| [split.negative, split.positive]),
    })
}

/// One worker's commit / claim / execute loop. Returns when the search
/// is done (complete, degraded or errored).
fn worker_loop(w: usize, space: RelationSpace, shared: &Shared, ctx: &RunContext<'_>) {
    let _drive = brel_obs::span(brel_obs::Category::Engine, "drive");
    let cost_fn = ctx.job.cost.to_cost_fn();
    loop {
        let mut garbage: Vec<BooleanRelation> = Vec::new();
        let mut claimed = None;
        let mut finished = false;
        {
            let mut guard = shared.state.lock().expect("wide state lock");
            let entries_before = guard.entries.len();
            commit_ready(&mut guard, shared, ctx, &mut garbage);
            let committed = guard.entries.len() != entries_before;
            if guard.done {
                finished = true;
            } else {
                claimed = claim_work(&mut guard, w, ctx, &shared.bound);
                if claimed.is_none() {
                    // Nothing claimable: the head is in flight elsewhere.
                    // Wait (bounded — wakeups also come from commits by
                    // other workers) and re-drive the commit sequence.
                    let _idle = brel_obs::span(brel_obs::Category::Engine, "idle");
                    let (guard, _timeout) = shared
                        .work_ready
                        .wait_timeout(guard, Duration::from_millis(25))
                        .expect("wide state lock");
                    drop(guard);
                }
            }
            if committed {
                shared.work_ready.notify_all();
            }
        }
        // BDD handles freed outside the lock: a drop locks the owning
        // session, which must never nest inside the state lock.
        drop(garbage);
        if finished {
            shared.work_ready.notify_all();
            return;
        }
        let Some(task) = claimed else {
            continue;
        };

        if let Some(plan) = ctx.options.stagger {
            if plan.max_micros > 0 {
                let mut state = plan.seed ^ ((w as u64) << 32) ^ task.seq as u64;
                let delay = splitmix64(&mut state) % plan.max_micros;
                thread::sleep(Duration::from_micros(delay));
            }
        }

        let mut relation = task.relation;
        if task.stolen {
            brel_obs::event(brel_obs::Category::Engine, "steal");
            // A steal ships the subproblem by structural BDD import from
            // the old owner's live handle — O(nodes), no row enumeration.
            // The two session mutexes are leaf locks taken one at a time,
            // so concurrent steals in any direction cannot deadlock.
            let built = {
                let _span = brel_obs::span(brel_obs::Category::Engine, "steal_build");
                BooleanRelation::import_into(&space, &relation)
            };
            match built {
                Ok(rebuilt) => relation = rebuilt,
                Err(error) => {
                    let mut guard = shared.state.lock().expect("wide state lock");
                    guard.error.get_or_insert(error);
                    guard.done = true;
                    drop(guard);
                    shared.work_ready.notify_all();
                    return;
                }
            }
        }

        let outcome = catch_fault(|| {
            let _span = brel_obs::span!(
                brel_obs::Category::Engine,
                "expand",
                "depth" => task.depth,
                "bound" => task.lower_bound,
            );
            execute_expand(&space, &relation, &cost_fn, task.snapshot, ctx)
        });

        let mut garbage: Vec<BooleanRelation> = Vec::new();
        let mut fatal = false;
        {
            let mut guard = shared.state.lock().expect("wide state lock");
            match outcome {
                Ok(Ok(ready)) => {
                    let entry = &mut guard.entries[task.seq];
                    if matches!(entry.state, EntryState::Discarded) {
                        // Dominance-dropped while in flight: wasted work
                        // by design, never wrong work.
                        if let Some(children) = ready.children {
                            garbage.extend(children);
                        }
                    } else {
                        entry.state = EntryState::Ready(Box::new(ready));
                    }
                }
                Ok(Err(RelationError::ResourceExhausted(err))) => {
                    // A genuine governor abort: the session may be
                    // mid-operation — degrade the search on the incumbent
                    // and flag this worker's session for quarantine.
                    guard.degraded = true;
                    guard
                        .fault
                        .get_or_insert_with(|| FaultClass::from_resource(&err).describe());
                    guard.quarantine_worker.get_or_insert(w);
                    guard.done = true;
                    fatal = true;
                }
                Ok(Err(error)) => {
                    guard.error.get_or_insert(error);
                    guard.done = true;
                    fatal = true;
                }
                Err(class) => {
                    // A genuine panic escaped the expansion: contain it
                    // like the round-mode worker did — quarantine and
                    // close the search on the incumbent.
                    guard.degraded = true;
                    guard.fault.get_or_insert_with(|| class.describe());
                    guard.quarantine_worker.get_or_insert(w);
                    guard.done = true;
                    fatal = true;
                }
            }
        }
        drop(garbage);
        shared.work_ready.notify_all();
        if fatal {
            return;
        }
    }
}

/// Solves the BREL backend of `job` with work-stealing parallel search
/// and scores it into the same [`SolutionReport`] shape as the
/// sequential backend. Deterministic across worker counts (not across
/// modes: wide commits in strategy pop order over its own frontier, so
/// `explored`/`splits` may differ from a narrow run with the same spec).
///
/// Symmetry pruning is not available in wide mode (the symmetry cache is
/// per-session); jobs run as if `use_symmetry` were off, which is the
/// engine default.
///
/// # Errors
///
/// Returns [`RelationError::NotWellDefined`] if the relation has no
/// compatible function.
pub fn solve_wide(
    job: &JobSpec,
    num_workers: usize,
    options: WideOptions,
) -> Result<SolutionReport, RelationError> {
    let mut sessions: Vec<WarmSession> = (0..num_workers.max(1))
        .map(|_| WarmSession::new())
        .collect();
    solve_wide_with(job, options, &mut sessions)
}

/// [`solve_wide`] over the caller's persistent per-worker sessions (one
/// worker per session): workers — and, through the batch engine,
/// successive jobs — reuse warm managers instead of building one per
/// expansion.
pub fn solve_wide_with(
    job: &JobSpec,
    options: WideOptions,
    sessions: &mut [WarmSession],
) -> Result<SolutionReport, RelationError> {
    solve_wide_faulted(job, options, sessions, None, &[]).map(|(report, _)| report)
}

/// The fault- and control-aware core of wide mode. On top of
/// [`solve_wide_with`] it honors the job's [`crate::fault::FaultPolicy`]
/// (wall deadline, node quota, step deadline), cooperative cancellation
/// and incumbent streaming through `control`, and the deterministic
/// injection slice. A faulted, cancelled or truncated search *degrades*:
/// the commit sequence closes, and the report keeps the best incumbent
/// (wide mode always holds one from the quick seed) with `degraded` set
/// and the first fault described in the second tuple slot. Structural
/// errors still fail the job.
pub(crate) fn solve_wide_faulted(
    job: &JobSpec,
    options: WideOptions,
    sessions: &mut [WarmSession],
    control: Option<&JobControl>,
    injections: &[&FaultInjection],
) -> Result<(SolutionReport, Option<String>), RelationError> {
    if sessions.is_empty() {
        let mut local = vec![WarmSession::cold()];
        return solve_wide_faulted(job, options, &mut local, control, injections);
    }
    let start = Instant::now();
    let solve_span = brel_obs::span(brel_obs::Category::Engine, "wide_solve");

    // Seed on the first worker's session: the root rehydrates exactly
    // once per solve (auto-reorder pinned off — a warm session's reorder
    // timing would otherwise depend on what it computed before, which
    // steal order must never influence).
    let seed_span = brel_obs::span(brel_obs::Category::Engine, "seed");
    let (space0, root, seed_warm) = sessions[0].rehydrate_stable(&job.relation);
    if !root.is_well_defined() {
        return Err(RelationError::NotWellDefined);
    }
    space0.mgr().reset_peak_live_nodes();
    let before = space0.mgr().stats_snapshot();
    let cost_fn = job.cost.to_cost_fn();
    let seed = QuickSolver::new()
        .with_minimizer(IsfMinimizer::default())
        .solve(&root)?;
    let best = Incumbent {
        cost: cost_fn.cost(&seed),
        cubes: seed.num_cubes(),
        literals: seed.num_literals(),
    };
    let after = space0.mgr().stats_snapshot();
    // Kernel counters are scoped to the deterministic seed phase: the
    // speculative phase's counters depend on steal order, and the report
    // must stay byte-identical across worker counts.
    let cache = after.cache.delta_since(&before.cache);
    let gc = after.gc.delta_since(&before.gc);
    drop(seed);
    drop(seed_span);
    if let Some(control) = control {
        control.notify_incumbent(best.cost, 0);
    }

    let bound = SharedBound::new();
    bound.improve(best.cost);
    let shared = Shared {
        state: Mutex::new(CommitState {
            entries: vec![Entry {
                depth: 0,
                lower_bound: 0,
                owner: 0,
                relation: Some(root),
                state: EntryState::Pending,
            }],
            frontier: BTreeSet::from([frontier_key(job.strategy, 0, 0)]),
            best,
            explored: 0,
            splits: 0,
            frontier_peak: 1,
            done: false,
            degraded: false,
            fault: None,
            error: None,
            quarantine_worker: None,
        }),
        work_ready: Condvar::new(),
        bound,
    };
    let ctx = RunContext {
        job,
        options,
        deadline: job
            .fault
            .deadline_ms
            .map(|ms| Instant::now() + Duration::from_millis(ms)),
        control,
        injections,
    };

    let num_inputs = job.relation.num_inputs();
    let num_outputs = job.relation.num_outputs();
    let num_vars = num_inputs + num_outputs;
    let pairs: usize = job
        .relation
        .rows()
        .iter()
        .map(|(_, outs)| outs.len().max(1))
        .sum();
    let expected_nodes = pairs.saturating_mul(num_vars);

    let (first, rest) = sessions.split_at_mut(1);
    {
        // Everything between spawning the stealing workers and joining
        // them, so the coordinator track's wide_solve time decomposes
        // into seed + parallel with no unattributed gap.
        let _parallel = brel_obs::span(brel_obs::Category::Engine, "parallel");
        thread::scope(|scope| {
            for (offset, warm) in rest.iter_mut().enumerate() {
                let w = offset + 1;
                let shared = &shared;
                let ctx = &ctx;
                scope.spawn(move || {
                    let _track = brel_obs::enabled(brel_obs::Category::Engine)
                        .then(|| brel_obs::set_track(&format!("wide-worker-{w}")));
                    let (session, _warm) = warm.prepare(num_vars, expected_nodes);
                    let space = RelationSpace::from_session(session, num_inputs, num_outputs);
                    worker_loop(w, space, shared, ctx);
                });
            }
            worker_loop(0, space0, &shared, &ctx);
        });
    }
    let _ = first;

    let state = shared.state.into_inner().expect(
        "wide workers cannot poison the state: faults are caught at the expansion boundary",
    );
    if let Some(w) = state.quarantine_worker {
        sessions[w].quarantine();
    }
    if let Some(error) = state.error {
        return Err(error);
    }

    drop(solve_span);
    Ok((
        SolutionReport {
            backend: BackendKind::Brel,
            cost: state.best.cost,
            cubes: state.best.cubes,
            literals: state.best.literals,
            explored: state.explored,
            splits: state.splits,
            frontier_peak: state.frontier_peak,
            strategy: Some(job.strategy),
            cache,
            gc,
            reuse: ReuseStats {
                warm_session: seed_warm,
                subrel_cache_hit: false,
            },
            degraded: state.degraded,
            wall_micros: brel_obs::wall_micros(start),
        },
        state.fault,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobBudget, RelationSpec};
    use brel_relation::{BooleanRelation, RelationSpace};
    use std::sync::{Arc, Mutex as StdMutex};

    fn fig10_job() -> JobSpec {
        let space = RelationSpace::with_names(&["a", "b"], &["x", "y"]);
        let r = BooleanRelation::from_table(&space, "00:{00,11}\n01:{10}\n10:{01,10}\n11:{11}")
            .unwrap();
        JobSpec::single(
            "fig10",
            RelationSpec::from_relation(&r).unwrap(),
            BackendKind::Brel,
        )
        .with_budget(JobBudget {
            max_explored: None,
            fifo_capacity: None,
            ..JobBudget::default()
        })
    }

    #[test]
    fn wide_mode_finds_the_fig10_optimum_under_every_strategy() {
        for strategy in SearchStrategy::all() {
            let job = fig10_job().with_strategy(strategy);
            let report = solve_wide(&job, 2, WideOptions::default()).unwrap();
            assert_eq!(report.backend, BackendKind::Brel);
            assert_eq!(report.cost, 2, "{strategy} missed the optimum");
            assert_eq!(report.strategy, Some(strategy));
            assert!(report.explored >= 1);
            assert!(report.frontier_peak >= 1);
        }
    }

    #[test]
    fn wide_mode_is_worker_count_invariant() {
        for strategy in SearchStrategy::all() {
            let job = fig10_job().with_strategy(strategy);
            let options = WideOptions {
                lookahead: 3,
                ..WideOptions::default()
            };
            let mask = |mut r: SolutionReport| {
                r.wall_micros = 0;
                r
            };
            let one = mask(solve_wide(&job, 1, options).unwrap());
            let two = mask(solve_wide(&job, 2, options).unwrap());
            let eight = mask(solve_wide(&job, 8, options).unwrap());
            assert_eq!(one, two, "{strategy}: 1 vs 2 workers");
            assert_eq!(one, eight, "{strategy}: 1 vs 8 workers");
        }
    }

    #[test]
    fn steal_thresholds_never_change_results() {
        // The threshold decides *where* a subproblem may run, never what
        // it computes: everything-stealable and nothing-stealable must
        // produce the same report at any worker count.
        for strategy in SearchStrategy::all() {
            let job = fig10_job().with_strategy(strategy);
            let mask = |mut r: SolutionReport| {
                r.wall_micros = 0;
                r
            };
            let reports: Vec<SolutionReport> = [0usize, 2, usize::MAX]
                .into_iter()
                .map(|steal_threshold| {
                    let options = WideOptions {
                        steal_threshold,
                        ..WideOptions::default()
                    };
                    mask(solve_wide(&job, 4, options).unwrap())
                })
                .collect();
            assert_eq!(reports[0], reports[1], "{strategy}: threshold 0 vs 2");
            assert_eq!(reports[0], reports[2], "{strategy}: stealable vs pinned");
        }
    }

    #[test]
    fn staggered_schedules_are_steal_order_invariant() {
        // A seeded artificial delay scrambles claim/commit interleaving;
        // the committed outcome must not move.
        let job = fig10_job().with_strategy(SearchStrategy::BestFirst);
        let mask = |mut r: SolutionReport| {
            r.wall_micros = 0;
            r
        };
        let baseline = mask(solve_wide(&job, 1, WideOptions::default()).unwrap());
        for workers in [1usize, 2, 8] {
            for seed in [1u64, 0xBEEF] {
                let options = WideOptions {
                    stagger: Some(StaggerPlan {
                        seed,
                        max_micros: 300,
                    }),
                    ..WideOptions::default()
                };
                let staggered = mask(solve_wide(&job, workers, options).unwrap());
                assert_eq!(
                    baseline, staggered,
                    "stagger seed {seed} at {workers} workers changed the result"
                );
            }
        }
    }

    #[test]
    fn wide_mode_respects_the_exploration_budget() {
        let job = fig10_job().with_budget(JobBudget {
            max_explored: Some(1),
            ..JobBudget::default()
        });
        let options = WideOptions {
            lookahead: 8,
            ..WideOptions::default()
        };
        let report = solve_wide(&job, 4, options).unwrap();
        assert_eq!(report.explored, 1, "commits must stop at the budget");
        assert!(report.cost >= 2);
    }

    #[test]
    fn wide_mode_streams_monotone_incumbents() {
        let seen: Arc<StdMutex<Vec<(u64, usize)>>> = Arc::new(StdMutex::new(Vec::new()));
        let sink = seen.clone();
        let control = JobControl::new().on_incumbent(move |cost, explored| {
            sink.lock().unwrap().push((cost, explored));
        });
        let job = fig10_job().with_strategy(SearchStrategy::BestFirst);
        let mut sessions: Vec<WarmSession> = (0..4).map(|_| WarmSession::new()).collect();
        let (report, fault) = solve_wide_faulted(
            &job,
            WideOptions::default(),
            &mut sessions,
            Some(&control),
            &[],
        )
        .unwrap();
        drop(control);
        assert_eq!(fault, None);
        let stream = seen.lock().unwrap();
        assert!(!stream.is_empty(), "the quick seed must be streamed");
        assert_eq!(stream[0].1, 0, "the seed arrives before any expansion");
        for pair in stream.windows(2) {
            assert!(
                pair[1].0 < pair[0].0,
                "incumbents must strictly improve: {stream:?}"
            );
        }
        assert_eq!(stream.last().unwrap().0, report.cost);
    }

    #[test]
    fn cancellation_degrades_on_the_incumbent() {
        let control = JobControl::new();
        control.cancel_token().cancel();
        let job = fig10_job();
        let mut sessions: Vec<WarmSession> = (0..2).map(|_| WarmSession::new()).collect();
        let (report, fault) = solve_wide_faulted(
            &job,
            WideOptions::default(),
            &mut sessions,
            Some(&control),
            &[],
        )
        .unwrap();
        assert!(report.degraded);
        assert_eq!(report.explored, 0);
        assert!(fault
            .as_deref()
            .unwrap()
            .contains("cancelled after 0 expansions"));
        assert!(report.cost >= 2, "quick-seed incumbent survives");
    }

    #[test]
    fn a_wide_worker_panic_degrades_instead_of_hanging() {
        // Satellite regression: an injected worker death must surface as
        // a degraded report, never a hang. The injection is synthesized
        // at commit, so it fires at the same expansion index — and
        // quarantines one session — at every worker count.
        let job = fig10_job();
        let injection = FaultInjection::new("fig10", 0, FaultKind::Panic);
        let mut sessions: Vec<WarmSession> = (0..2).map(|_| WarmSession::new()).collect();
        let (report, fault) = solve_wide_faulted(
            &job,
            WideOptions::default(),
            &mut sessions,
            None,
            &[&injection],
        )
        .expect("a fault degrades, it does not error");
        assert!(injection.has_fired());
        assert!(report.degraded);
        assert!(fault.as_deref().unwrap().contains("injected panic"));
        assert_eq!(report.explored, 0, "the fault fired before any commit");
        assert!(report.cost >= 2, "quick-seed incumbent survives");
        let quarantines: u64 = sessions.iter().map(|s| s.counts().2).sum();
        assert_eq!(quarantines, 1, "the faulted worker discards its session");
    }

    #[test]
    fn wide_faults_are_worker_count_invariant() {
        let job = fig10_job();
        let mask = |mut r: SolutionReport| {
            r.wall_micros = 0;
            r
        };
        let mut runs = Vec::new();
        for workers in [1usize, 2, 8] {
            // Injections are armed-once, so each run gets a fresh one.
            let injection = FaultInjection::new("fig10", 1, FaultKind::QuotaTrip);
            let mut sessions: Vec<WarmSession> = (0..workers).map(|_| WarmSession::new()).collect();
            let options = WideOptions {
                lookahead: 3,
                ..WideOptions::default()
            };
            let (report, fault) =
                solve_wide_faulted(&job, options, &mut sessions, None, &[&injection]).unwrap();
            runs.push((mask(report), fault));
        }
        assert_eq!(runs[0], runs[1], "1 vs 2 workers");
        assert_eq!(runs[0], runs[2], "1 vs 8 workers");
        assert!(runs[0].0.degraded);
        assert!(runs[0].1.as_deref().unwrap().contains("quota"));
    }

    #[test]
    fn injected_step_deadlines_truncate_deterministically() {
        let job = fig10_job();
        let injection = FaultInjection::new("fig10", 1, FaultKind::StepDeadline);
        let mut sessions: Vec<WarmSession> = (0..2).map(|_| WarmSession::new()).collect();
        let (report, fault) = solve_wide_faulted(
            &job,
            WideOptions::default(),
            &mut sessions,
            None,
            &[&injection],
        )
        .unwrap();
        assert!(report.degraded);
        assert_eq!(
            report.explored, 1,
            "the commit sequence must stop exactly at the injected mark"
        );
        assert!(fault.as_deref().unwrap().contains("injected step deadline"));
        // Truncation is a clean return: no session is quarantined.
        assert_eq!(sessions.iter().map(|s| s.counts().2).sum::<u64>(), 0);
    }

    #[test]
    fn wide_mode_rejects_ill_defined_relations() {
        let space = RelationSpace::new(1, 1);
        let r = BooleanRelation::from_table(&space, "1 : {1}").unwrap();
        let job = JobSpec::single(
            "broken",
            RelationSpec::from_relation(&r).unwrap(),
            BackendKind::Brel,
        );
        assert!(matches!(
            solve_wide(&job, 2, WideOptions::default()),
            Err(RelationError::NotWellDefined)
        ));
    }
}
