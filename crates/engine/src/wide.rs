//! Wide mode: engine-parallel frontier expansion for a single hard
//! relation.
//!
//! The batch engine's unit of parallelism is the *job* — useless when one
//! relation dominates the batch. Wide mode parallelizes *inside* one BREL
//! solve instead: each round it takes the top-k pending subproblems of the
//! search frontier (ordered by the job's [`SearchStrategy`]) and expands
//! them concurrently. Nothing BDD-shaped crosses a thread: a pending node
//! travels as a [`SubproblemSpec`] (tabular rows plus depth and lower
//! bound), each expansion rehydrates its subrelation into a private BDD
//! manager and runs the same [`brel_core::expand`] transition the
//! sequential explorer uses, and the coordinator merges results in round
//! order — improvements, prunes and child subproblems are applied by
//! ascending round index, and fresh children enter the frontier in
//! `(lower bound, insertion sequence)` order. Every expansion is a pure
//! function of `(spec, round-start incumbent cost)`, so the merged outcome
//! — costs, statistics, even the per-expansion kernel counters — is
//! byte-identical at every worker count.

use std::panic::panic_any;
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use brel_bdd::{BddError, CacheStats, GcStats, ResourceGovernor};
use brel_core::{expand, CostFunction, IsfMinimizer, QuickSolver, SearchStrategy};
use brel_relation::RelationError;

use crate::backend::SolutionReport;
use crate::fault::{catch_fault, FaultClass, FaultInjection, FaultKind, InjectedPanic};
use crate::job::{BackendKind, CostSpec, JobSpec, RelationSpec};
use crate::reuse::{ReuseStats, WarmSession};

/// Wide-mode configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WideOptions {
    /// Maximum number of frontier subproblems expanded in parallel per
    /// round (clamped to at least 1).
    pub top_k: usize,
}

impl Default for WideOptions {
    fn default() -> Self {
        WideOptions { top_k: 8 }
    }
}

/// A pending subproblem in portable form: the serialization boundary wide
/// mode ships to worker threads (the engine-side mirror of
/// [`brel_core::Subproblem`]).
#[derive(Debug, Clone)]
pub struct SubproblemSpec {
    /// The subrelation, as tabular rows.
    pub relation: RelationSpec,
    /// Distance from the root relation (number of splits on the path).
    pub depth: usize,
    /// Lower bound inherited from the parent's candidate cost (0 for the
    /// root).
    pub lower_bound: u64,
    /// Insertion sequence number: the deterministic FIFO/DFS key and the
    /// best-first tie-break.
    seq: u64,
}

// Wide mode's whole point: pending work must be free to cross threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SubproblemSpec>();
};

/// The incumbent's scored metrics (the function itself stays on whichever
/// thread found it; reports only carry numbers).
#[derive(Debug, Clone, Copy)]
struct Incumbent {
    cost: u64,
    cubes: usize,
    literals: usize,
}

/// What one worker expansion sends back to the coordinator.
#[derive(Debug)]
struct WideExpansion {
    candidate_cost: u64,
    compatible: bool,
    /// Candidate metrics (meaningful when `compatible`).
    cubes: usize,
    literals: usize,
    /// Quick-solver fallback metrics, when the node split.
    quick: Option<(u64, usize, usize)>,
    /// The two split halves, re-exported as portable rows.
    children: Option<[RelationSpec; 2]>,
    /// Kernel counters of this expansion's private manager.
    cache: CacheStats,
    gc: GcStats,
}

/// The per-job fault context threaded into wide rounds: the wall-clock
/// deadline and node quota arm the governor of every expansion's manager,
/// and the injection slice lets workers fire deterministic faults at
/// global expansion indices.
#[derive(Clone, Copy, Default)]
struct WideGuard<'a> {
    deadline: Option<Instant>,
    max_live_nodes: Option<u64>,
    injections: &'a [&'a FaultInjection],
}

/// Why one wide-round expansion produced no result.
#[derive(Debug)]
enum WideFailure {
    /// Structural failure from the expansion itself; deterministic.
    Error(RelationError),
    /// The expansion faulted (panic or resource abort). The worker already
    /// quarantined its own session before shipping this.
    Fault(FaultClass),
}

/// Fires any panic or quota-trip injection aimed at the global expansion
/// index (round base + round index). Step-deadline injections are the
/// coordinator's job — they truncate the search, they don't unwind it.
fn fire_worker_injections(injections: &[&FaultInjection], global_index: usize) {
    for injection in injections {
        if injection.at_expansion() != global_index {
            continue;
        }
        match injection.kind() {
            FaultKind::Panic => {
                if injection.fire() {
                    panic_any(InjectedPanic {
                        job: injection.job().to_string(),
                        at_expansion: injection.at_expansion(),
                    });
                }
            }
            FaultKind::QuotaTrip => {
                if injection.fire() {
                    panic_any(BddError::QuotaExceeded {
                        live_nodes: 0,
                        max_live_nodes: 0,
                    });
                }
            }
            FaultKind::StepDeadline => {}
        }
    }
}

/// Expands one portable subproblem inside a private manager — warm when
/// the worker's session can be reset, fresh otherwise. Pure with respect
/// to `(spec, prune_bound)` — the determinism anchor of wide mode: a
/// successful reset is observationally cold, so which session hosts an
/// expansion can never change its result.
fn expand_spec(
    spec: &SubproblemSpec,
    cost: CostSpec,
    prune_bound: u64,
    warm: &mut WarmSession,
    guard: &WideGuard<'_>,
) -> Result<WideExpansion, RelationError> {
    // The per-expansion span; the nested session `rehydrate` span (see
    // `WarmSession::rehydrate`) separates rehydration cost from expand
    // proper in the phase report's self time.
    let _span = brel_obs::span!(
        brel_obs::Category::Engine,
        "expand",
        "depth" => spec.depth,
        "bound" => spec.lower_bound,
    );
    let (space, relation, _was_warm) = warm.rehydrate(&spec.relation);
    let governed = guard.max_live_nodes.is_some() || guard.deadline.is_some();
    if governed {
        let mut governor = ResourceGovernor::new();
        if let Some(max) = guard.max_live_nodes {
            governor = governor.with_max_live_nodes(max);
        }
        if let Some(at) = guard.deadline {
            governor = governor.with_deadline_at(at);
        }
        space.mgr().set_governor(governor);
    }
    space.mgr().reset_peak_live_nodes();
    let before = space.mgr().stats_snapshot();
    let minimizer = IsfMinimizer::default();
    let quick = QuickSolver::new().with_minimizer(minimizer);
    let cost_fn = cost.to_cost_fn();
    let expansion = expand(&minimizer, &cost_fn, &quick, &relation, prune_bound)?;
    let children = match &expansion.split {
        Some(split) => Some([
            RelationSpec::from_relation(&split.negative)?,
            RelationSpec::from_relation(&split.positive)?,
        ]),
        None => None,
    };
    let after = space.mgr().stats_snapshot();
    if governed {
        space.mgr().clear_governor();
    }
    Ok(WideExpansion {
        candidate_cost: expansion.candidate_cost,
        compatible: expansion.compatible,
        cubes: expansion.candidate.num_cubes(),
        literals: expansion.candidate.num_literals(),
        quick: expansion
            .quick
            .as_ref()
            .map(|(q, q_cost)| (*q_cost, q.num_cubes(), q.num_literals())),
        children,
        cache: after.cache.delta_since(&before.cache),
        gc: after.gc.delta_since(&before.gc),
    })
}

/// Runs one round of expansions over a scoped worker pool (strided
/// assignment; results re-ordered by round index, so the merge is
/// worker-count independent). Failures are deterministic too: the merge
/// resolves slots by ascending round index.
///
/// Every expansion runs inside the panic-isolation boundary: a panic (or
/// injected fault) is caught in the worker, the worker quarantines its own
/// session and ships a structured [`WideFailure`], so the coordinator's
/// collection loop below can never hang on a dead worker. Should a worker
/// thread still die without reporting (a panic outside the boundary), its
/// unfilled slots resolve to a structured failure instead of poisoning the
/// round.
fn run_round(
    picked: &[SubproblemSpec],
    cost: CostSpec,
    prune_bound: u64,
    sessions: &mut [WarmSession],
    guard: &WideGuard<'_>,
    base: usize,
) -> Vec<Result<WideExpansion, WideFailure>> {
    let workers = sessions.len().clamp(1, picked.len().max(1));
    let (tx, rx) = mpsc::channel::<(usize, Result<WideExpansion, WideFailure>)>();
    thread::scope(|scope| {
        let dispatch = brel_obs::span(brel_obs::Category::Engine, "dispatch");
        for (w, warm) in sessions.iter_mut().take(workers).enumerate() {
            let tx = tx.clone();
            scope.spawn(move || {
                // Scoped threads are respawned every round; pinning the
                // track by worker index keeps one stable per-worker track
                // in the trace across rounds.
                let _track = brel_obs::enabled(brel_obs::Category::Engine)
                    .then(|| brel_obs::set_track(&format!("wide-worker-{w}")));
                for (index, spec) in picked.iter().enumerate().skip(w).step_by(workers) {
                    let outcome = catch_fault(|| {
                        fire_worker_injections(guard.injections, base + index);
                        expand_spec(spec, cost, prune_bound, warm, guard)
                    });
                    let message = match outcome {
                        Ok(Ok(expansion)) => Ok(expansion),
                        Ok(Err(RelationError::ResourceExhausted(err))) => {
                            warm.quarantine();
                            Err(WideFailure::Fault(FaultClass::from_resource(&err)))
                        }
                        Ok(Err(error)) => Err(WideFailure::Error(error)),
                        Err(fault) => {
                            // The session may be mid-operation: discard it
                            // before this worker touches the next stride.
                            warm.quarantine();
                            Err(WideFailure::Fault(fault))
                        }
                    };
                    // The receiver outlives the scope; a send only fails if
                    // the collector stopped early.
                    let _ = tx.send((index, message));
                }
            });
        }
        drop(tx);
        drop(dispatch);
        // The round barrier: the coordinator blocks here until every
        // worker has drained its stride — the wait ROADMAP item 1 wants
        // attributed.
        let _barrier = brel_obs::span(brel_obs::Category::Engine, "barrier_wait");
        let mut slots: Vec<Option<Result<WideExpansion, WideFailure>>> =
            (0..picked.len()).map(|_| None).collect();
        for (index, result) in rx.iter() {
            slots[index] = Some(result);
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    Err(WideFailure::Fault(FaultClass::Panicked(
                        "wide worker died before reporting an expansion".to_string(),
                    )))
                })
            })
            .collect()
    })
}

/// Accumulates one expansion's kernel counters into the run total:
/// counters add, per-manager gauges keep their maximum (each expansion ran
/// in its own manager, so a sum would be meaningless).
fn accumulate_cache(total: &mut CacheStats, delta: &CacheStats) {
    total.unique_lookups += delta.unique_lookups;
    total.unique_hits += delta.unique_hits;
    total.cache_lookups += delta.cache_lookups;
    total.cache_hits += delta.cache_hits;
    total.cache_inserts += delta.cache_inserts;
    total.cache_evictions += delta.cache_evictions;
    total.unique_len = total.unique_len.max(delta.unique_len);
    total.unique_capacity = total.unique_capacity.max(delta.unique_capacity);
    total.cache_slots = total.cache_slots.max(delta.cache_slots);
    total.num_nodes = total.num_nodes.max(delta.num_nodes);
}

/// Like [`accumulate_cache`], for the lifecycle block.
fn accumulate_gc(total: &mut GcStats, delta: &GcStats) {
    total.collections += delta.collections;
    total.nodes_reclaimed += delta.nodes_reclaimed;
    total.reorder_passes += delta.reorder_passes;
    total.live_nodes = total.live_nodes.max(delta.live_nodes);
    total.peak_live_nodes = total.peak_live_nodes.max(delta.peak_live_nodes);
    if total.var_order_hash == 0 {
        total.var_order_hash = delta.var_order_hash;
    }
}

/// The positions of the frontier entries in the order the sequential
/// strategy would pop them: FIFO by ascending sequence number (the vector
/// is append-only between rounds, so positional order is insertion order),
/// DFS by descending, best-first by ascending `(lower_bound, seq)`.
fn pop_order(frontier: &[SubproblemSpec], strategy: SearchStrategy) -> Vec<usize> {
    match strategy {
        SearchStrategy::Fifo => (0..frontier.len()).collect(),
        SearchStrategy::Dfs => (0..frontier.len()).rev().collect(),
        SearchStrategy::BestFirst => {
            let mut order: Vec<usize> = (0..frontier.len()).collect();
            order.sort_by_key(|&i| (frontier[i].lower_bound, frontier[i].seq));
            order
        }
    }
}

/// Pops up to `round_k` subproblems from the frontier in strategy order,
/// dropping dominated entries on the way under best-first (the same rule
/// the sequential `BestFirstFrontier` enables). One O(n log n) pass per
/// round — the frontier can be unbounded, so per-pop scans would turn
/// best-first rounds quadratic.
fn select_round(
    frontier: &mut Vec<SubproblemSpec>,
    strategy: SearchStrategy,
    round_k: usize,
    prune_bound: u64,
) -> Vec<SubproblemSpec> {
    let order = pop_order(frontier, strategy);
    let mut slots: Vec<Option<SubproblemSpec>> = frontier.drain(..).map(Some).collect();
    let mut picked = Vec::with_capacity(round_k.min(slots.len()));
    for position in order {
        if picked.len() >= round_k {
            break;
        }
        let spec = slots[position].take().expect("each position visited once");
        if strategy == SearchStrategy::BestFirst && spec.lower_bound >= prune_bound {
            // Dominance: dropped unexplored, like the sequential explorer.
            continue;
        }
        picked.push(spec);
    }
    // Untouched entries stay pending, in their original insertion order.
    frontier.extend(slots.into_iter().flatten());
    picked
}

/// Solves the BREL backend of `job` with parallel frontier expansion and
/// scores it into the same [`SolutionReport`] shape as the sequential
/// backend. Deterministic across worker counts (not across modes: wide
/// rounds explore in a different order than the sequential explorer, so
/// `explored`/`splits` may differ from a narrow run with the same spec).
///
/// Symmetry pruning is not available in wide mode (the symmetry cache
/// holds manager-rooted BDDs that cannot cross threads); jobs run as if
/// `use_symmetry` were off, which is the engine default.
///
/// # Errors
///
/// Returns [`RelationError::NotWellDefined`] if the relation has no
/// compatible function.
pub fn solve_wide(
    job: &JobSpec,
    num_workers: usize,
    options: WideOptions,
) -> Result<SolutionReport, RelationError> {
    let mut sessions: Vec<WarmSession> = (0..num_workers.max(1))
        .map(|_| WarmSession::new())
        .collect();
    solve_wide_with(job, options, &mut sessions)
}

/// [`solve_wide`] over the caller's persistent per-worker sessions (one
/// worker per session): rounds — and, through the batch engine, successive
/// jobs — reuse warm managers instead of building one per expansion.
pub fn solve_wide_with(
    job: &JobSpec,
    options: WideOptions,
    sessions: &mut [WarmSession],
) -> Result<SolutionReport, RelationError> {
    solve_wide_faulted(job, options, sessions, &[]).map(|(report, _)| report)
}

/// The fault-aware core of wide mode. On top of [`solve_wide_with`] it
/// honors the job's [`crate::fault::FaultPolicy`] (wall deadline, node
/// quota, step deadline) and the deterministic injection slice. A faulted
/// or truncated search *degrades*: the round's surviving expansions are
/// merged, the loop closes, and the report keeps the best incumbent (wide
/// mode always holds one from the quick seed) with `degraded` set and the
/// first fault described in the second tuple slot. Structural errors still
/// fail the job.
pub(crate) fn solve_wide_faulted(
    job: &JobSpec,
    options: WideOptions,
    sessions: &mut [WarmSession],
    injections: &[&FaultInjection],
) -> Result<(SolutionReport, Option<String>), RelationError> {
    let start = Instant::now();
    let solve_span = brel_obs::span(brel_obs::Category::Engine, "wide_solve");
    let top_k = options.top_k.max(1);

    // Seed the incumbent on the first worker's session: rehydrate the root
    // once for the quick incumbent (the §7.2 guarantee), then drop the
    // space — rounds reset and reuse the same sessions.
    let seed_span = brel_obs::span(brel_obs::Category::Engine, "seed");
    let (space, root, seed_warm) = match sessions.first_mut() {
        Some(first) => first.rehydrate(&job.relation),
        None => {
            let (space, root) = job.relation.rehydrate();
            (space, root, false)
        }
    };
    if !root.is_well_defined() {
        return Err(RelationError::NotWellDefined);
    }
    space.mgr().reset_peak_live_nodes();
    let before = space.mgr().stats_snapshot();
    let cost_fn = job.cost.to_cost_fn();
    let seed = QuickSolver::new()
        .with_minimizer(IsfMinimizer::default())
        .solve(&root)?;
    let mut best = Incumbent {
        cost: cost_fn.cost(&seed),
        cubes: seed.num_cubes(),
        literals: seed.num_literals(),
    };
    let after = space.mgr().stats_snapshot();
    let mut cache = after.cache.delta_since(&before.cache);
    let mut gc = after.gc.delta_since(&before.gc);
    drop((seed, root, space));
    drop(seed_span);

    let mut frontier: Vec<SubproblemSpec> = vec![SubproblemSpec {
        relation: job.relation.clone(),
        depth: 0,
        lower_bound: 0,
        seq: 0,
    }];
    let mut next_seq = 1u64;
    let mut explored = 0usize;
    let mut splits = 0usize;
    let mut frontier_peak = 1usize;

    let deadline = job
        .fault
        .deadline_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let guard = WideGuard {
        deadline,
        max_live_nodes: job.fault.max_live_nodes,
        injections,
    };
    let mut fault: Option<String> = None;
    let mut degraded = false;

    let mut round_index = 0u64;
    loop {
        if frontier.is_empty() {
            break;
        }
        // Deterministic truncations first: an injected step deadline fires
        // once the cumulative expansion count reaches its mark…
        for injection in injections {
            if injection.kind() == FaultKind::StepDeadline
                && explored >= injection.at_expansion()
                && injection.fire()
            {
                degraded = true;
                fault.get_or_insert_with(|| {
                    format!(
                        "injected step deadline at expansion {} of job {}",
                        injection.at_expansion(),
                        injection.job()
                    )
                });
            }
        }
        // …and the policy step deadline bounds the same counter.
        if !degraded {
            if let Some(limit) = job.fault.step_deadline {
                if explored >= limit {
                    degraded = true;
                    fault.get_or_insert_with(|| {
                        format!("step deadline expired after {explored} expansions")
                    });
                }
            }
        }
        if degraded {
            break;
        }
        // The wall deadline is timing-dependent by nature; determinism
        // gates use step deadlines instead.
        if let Some(at) = deadline {
            if Instant::now() >= at {
                degraded = true;
                fault.get_or_insert_with(|| FaultClass::Deadline.describe());
                break;
            }
        }
        let budget_left = job
            .budget
            .max_explored
            .map_or(usize::MAX, |max| max.saturating_sub(explored));
        if budget_left == 0 {
            // Budget exhausted: stop expanding, keep the incumbent.
            break;
        }

        let mut round_span = brel_obs::span(brel_obs::Category::Engine, "round");
        round_span
            .arg("round", round_index)
            .arg("frontier", frontier.len() as u64);
        round_index += 1;

        // A pending step deadline (policy or injected) clamps the round
        // width so the cumulative count lands exactly on the mark instead
        // of overshooting by up to a round.
        let mut step_left = job
            .fault
            .step_deadline
            .map_or(usize::MAX, |limit| limit.saturating_sub(explored));
        for injection in injections {
            if injection.kind() == FaultKind::StepDeadline && !injection.has_fired() {
                step_left = step_left.min(injection.at_expansion().saturating_sub(explored));
            }
        }
        let round_k = top_k.min(budget_left).min(step_left.max(1));
        let picked = {
            let _select = brel_obs::span(brel_obs::Category::Engine, "select");
            select_round(&mut frontier, job.strategy, round_k, best.cost)
        };
        if picked.is_empty() {
            break;
        }

        // Parallel expansion against the round-start bound…
        let round_bound = best.cost;
        let results = run_round(&picked, job.cost, round_bound, sessions, &guard, explored);

        // …and the deterministic merge, in ascending round index: the
        // round's successes are merged in full, then the first failure (by
        // round index) resolves the round — a structural error fails the
        // job, a fault closes the search on the incumbent.
        let _merge = brel_obs::span(brel_obs::Category::Engine, "merge");
        let mut round_fault: Option<FaultClass> = None;
        for (spec, slot) in picked.iter().zip(results) {
            let expansion = match slot {
                Ok(expansion) => expansion,
                Err(WideFailure::Error(error)) => return Err(error),
                Err(WideFailure::Fault(class)) => {
                    if round_fault.is_none() {
                        round_fault = Some(class);
                    }
                    continue;
                }
            };
            explored += 1;
            accumulate_cache(&mut cache, &expansion.cache);
            accumulate_gc(&mut gc, &expansion.gc);
            if expansion.candidate_cost >= best.cost {
                continue;
            }
            if expansion.compatible {
                best = Incumbent {
                    cost: expansion.candidate_cost,
                    cubes: expansion.cubes,
                    literals: expansion.literals,
                };
                continue;
            }
            if let Some((q_cost, q_cubes, q_literals)) = expansion.quick {
                if q_cost < best.cost {
                    best = Incumbent {
                        cost: q_cost,
                        cubes: q_cubes,
                        literals: q_literals,
                    };
                }
            }
            let children = expansion
                .children
                .expect("expand splits every unpruned incompatible candidate");
            splits += 1;
            for child in children {
                if let Some(cap) = job.budget.fifo_capacity {
                    if frontier.len() >= cap {
                        continue;
                    }
                }
                frontier.push(SubproblemSpec {
                    relation: child,
                    depth: spec.depth + 1,
                    lower_bound: expansion.candidate_cost,
                    seq: next_seq,
                });
                next_seq += 1;
                frontier_peak = frontier_peak.max(frontier.len());
            }
        }
        if let Some(class) = round_fault {
            degraded = true;
            fault.get_or_insert_with(|| class.describe());
            break;
        }
    }

    // The narrow loop's injection check precedes the would-be next step
    // even when the frontier is exhausted; mirror that so a plan aimed at
    // the tail of a short search still fires deterministically.
    for injection in injections {
        if injection.at_expansion() <= explored && injection.fire() {
            degraded = true;
            fault.get_or_insert_with(|| match injection.kind() {
                FaultKind::Panic => InjectedPanic {
                    job: injection.job().to_string(),
                    at_expansion: injection.at_expansion(),
                }
                .describe(),
                FaultKind::QuotaTrip => FaultClass::Quota.describe(),
                FaultKind::StepDeadline => format!(
                    "injected step deadline at expansion {} of job {}",
                    injection.at_expansion(),
                    injection.job()
                ),
            });
        }
    }

    drop(solve_span);
    Ok((
        SolutionReport {
            backend: BackendKind::Brel,
            cost: best.cost,
            cubes: best.cubes,
            literals: best.literals,
            explored,
            splits,
            frontier_peak,
            strategy: Some(job.strategy),
            cache,
            gc,
            reuse: ReuseStats {
                warm_session: seed_warm,
                subrel_cache_hit: false,
            },
            degraded,
            wall_micros: brel_obs::wall_micros(start),
        },
        fault,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobBudget;
    use brel_relation::{BooleanRelation, RelationSpace};

    fn fig10_job() -> JobSpec {
        let space = RelationSpace::with_names(&["a", "b"], &["x", "y"]);
        let r = BooleanRelation::from_table(&space, "00:{00,11}\n01:{10}\n10:{01,10}\n11:{11}")
            .unwrap();
        JobSpec::single(
            "fig10",
            RelationSpec::from_relation(&r).unwrap(),
            BackendKind::Brel,
        )
        .with_budget(JobBudget {
            max_explored: None,
            fifo_capacity: None,
            ..JobBudget::default()
        })
    }

    #[test]
    fn wide_mode_finds_the_fig10_optimum_under_every_strategy() {
        for strategy in SearchStrategy::all() {
            let job = fig10_job().with_strategy(strategy);
            let report = solve_wide(&job, 2, WideOptions::default()).unwrap();
            assert_eq!(report.backend, BackendKind::Brel);
            assert_eq!(report.cost, 2, "{strategy} missed the optimum");
            assert_eq!(report.strategy, Some(strategy));
            assert!(report.explored >= 1);
            assert!(report.frontier_peak >= 1);
        }
    }

    #[test]
    fn wide_mode_is_worker_count_invariant() {
        for strategy in SearchStrategy::all() {
            let job = fig10_job().with_strategy(strategy);
            let mask = |mut r: SolutionReport| {
                r.wall_micros = 0;
                r
            };
            let one = mask(solve_wide(&job, 1, WideOptions { top_k: 3 }).unwrap());
            let two = mask(solve_wide(&job, 2, WideOptions { top_k: 3 }).unwrap());
            let eight = mask(solve_wide(&job, 8, WideOptions { top_k: 3 }).unwrap());
            assert_eq!(one, two, "{strategy}: 1 vs 2 workers");
            assert_eq!(one, eight, "{strategy}: 1 vs 8 workers");
        }
    }

    #[test]
    fn wide_mode_respects_the_exploration_budget() {
        let job = fig10_job().with_budget(JobBudget {
            max_explored: Some(1),
            ..JobBudget::default()
        });
        let report = solve_wide(&job, 4, WideOptions { top_k: 8 }).unwrap();
        assert_eq!(report.explored, 1, "top-k must be clamped to the budget");
        assert!(report.cost >= 2);
    }

    #[test]
    fn a_wide_worker_panic_degrades_instead_of_hanging() {
        // Satellite regression: a worker death mid-round must surface as a
        // structured per-subproblem failure, never a hung barrier. The
        // injected panic unwinds inside the worker; the coordinator merges
        // the round and closes on the quick-seed incumbent.
        let job = fig10_job();
        let injection = FaultInjection::new("fig10", 0, FaultKind::Panic);
        let mut sessions: Vec<WarmSession> = (0..2).map(|_| WarmSession::new()).collect();
        let (report, fault) =
            solve_wide_faulted(&job, WideOptions::default(), &mut sessions, &[&injection])
                .expect("a fault degrades, it does not error");
        assert!(injection.has_fired());
        assert!(report.degraded);
        assert!(fault.as_deref().unwrap().contains("injected panic"));
        assert_eq!(report.explored, 0, "the only round-0 slot faulted");
        assert!(report.cost >= 2, "quick-seed incumbent survives");
        let quarantines: u64 = sessions.iter().map(|s| s.counts().2).sum();
        assert_eq!(quarantines, 1, "the faulted worker discards its session");
    }

    #[test]
    fn wide_faults_are_worker_count_invariant() {
        let job = fig10_job();
        let mask = |mut r: SolutionReport| {
            r.wall_micros = 0;
            r
        };
        let mut runs = Vec::new();
        for workers in [1usize, 2, 8] {
            // Injections are armed-once, so each run gets a fresh one.
            let injection = FaultInjection::new("fig10", 1, FaultKind::QuotaTrip);
            let mut sessions: Vec<WarmSession> = (0..workers).map(|_| WarmSession::new()).collect();
            let (report, fault) =
                solve_wide_faulted(&job, WideOptions { top_k: 3 }, &mut sessions, &[&injection])
                    .unwrap();
            runs.push((mask(report), fault));
        }
        assert_eq!(runs[0], runs[1], "1 vs 2 workers");
        assert_eq!(runs[0], runs[2], "1 vs 8 workers");
        assert!(runs[0].0.degraded);
        assert!(runs[0].1.as_deref().unwrap().contains("quota"));
    }

    #[test]
    fn injected_step_deadlines_truncate_deterministically() {
        let job = fig10_job();
        let injection = FaultInjection::new("fig10", 1, FaultKind::StepDeadline);
        let mut sessions: Vec<WarmSession> = (0..2).map(|_| WarmSession::new()).collect();
        let (report, fault) =
            solve_wide_faulted(&job, WideOptions { top_k: 8 }, &mut sessions, &[&injection])
                .unwrap();
        assert!(report.degraded);
        assert_eq!(
            report.explored, 1,
            "the round width must clamp to the injected mark"
        );
        assert!(fault.as_deref().unwrap().contains("injected step deadline"));
        // Truncation is a clean return: no session is quarantined.
        assert_eq!(sessions.iter().map(|s| s.counts().2).sum::<u64>(), 0);
    }

    #[test]
    fn wide_mode_rejects_ill_defined_relations() {
        let space = RelationSpace::new(1, 1);
        let r = BooleanRelation::from_table(&space, "1 : {1}").unwrap();
        let job = JobSpec::single(
            "broken",
            RelationSpec::from_relation(&r).unwrap(),
            BackendKind::Brel,
        );
        assert!(matches!(
            solve_wide(&job, 2, WideOptions::default()),
            Err(RelationError::NotWellDefined)
        ));
    }
}
