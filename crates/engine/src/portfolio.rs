//! Portfolio execution: race several backends on one job and keep the
//! winner under the job's cost function.

use std::time::Instant;

use crate::backend::{execute, SolutionReport};
use crate::job::{BackendKind, JobSpec};
use crate::reuse::{ReuseState, ReuseStats, WarmSession};
use crate::wide::{solve_wide_with, WideOptions};

/// The outcome of one job: every backend attempt (in the job's backend
/// order) plus the index of the selected winner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobReport {
    /// Position of the job in the submitted batch; reports are always
    /// delivered sorted by this id.
    pub job_id: usize,
    /// The job's name.
    pub name: String,
    /// Number of input variables of the relation.
    pub num_inputs: usize,
    /// Number of output variables of the relation.
    pub num_outputs: usize,
    /// One report per backend that completed, in backend order.
    pub attempts: Vec<SolutionReport>,
    /// Index into `attempts` of the cheapest solution (ties broken towards
    /// the earlier backend). `None` iff no backend completed.
    pub winner: Option<usize>,
    /// The failure message when no backend completed (e.g. the relation is
    /// not well defined).
    pub error: Option<String>,
}

impl JobReport {
    /// The winning attempt, if any backend completed.
    pub fn winning(&self) -> Option<&SolutionReport> {
        self.winner.map(|i| &self.attempts[i])
    }
}

/// Runs every backend of `job` on a freshly rehydrated relation and selects
/// the cheapest solution. One-shot wrapper over [`run_job_warm`] with a
/// cold session; it is a pure function of `(job_id, job)`, independent of
/// the thread it runs on.
pub fn run_job(job_id: usize, job: &JobSpec) -> JobReport {
    run_job_warm(job_id, job, &mut WarmSession::cold())
}

/// Like [`run_job`], but rehydrates into the caller's persistent
/// [`WarmSession`] — the API pool workers use to keep one manager alive
/// across jobs. Apart from the scheduling-dependent [`ReuseStats`] flags
/// and wall times, the report is byte-identical to a cold [`run_job`]:
/// a successful session reset is observationally cold.
pub fn run_job_warm(job_id: usize, job: &JobSpec, warm: &mut WarmSession) -> JobReport {
    run_job_with(job_id, job, warm, &ReuseState::disabled())
}

/// The pool-worker entry point: warm rehydration plus the cross-job
/// solved-subrelation cache. Cache hits are all-or-nothing per job (see
/// [`crate::reuse`]), so every cached report is the product of a full
/// clean portfolio run and hits never change the deterministic output.
pub(crate) fn run_job_with(
    job_id: usize,
    job: &JobSpec,
    warm: &mut WarmSession,
    reuse: &ReuseState,
) -> JobReport {
    let fingerprint = job.relation.fingerprint();
    let lookup_start = Instant::now();
    if let Some(mut attempts) = reuse.lookup_job(fingerprint, job) {
        brel_obs::event(brel_obs::Category::Session, "subrel_cache_hit");
        let wall = brel_obs::wall_micros(lookup_start);
        for attempt in &mut attempts {
            attempt.reuse = ReuseStats {
                warm_session: false,
                subrel_cache_hit: true,
            };
            attempt.wall_micros = wall;
        }
        return finish_job(job_id, job, attempts, None);
    }
    let (_space, relation, was_warm) = warm.rehydrate(&job.relation);
    let mut attempts = Vec::with_capacity(job.backends.len());
    let mut error = None;
    for &kind in &job.backends {
        match execute(kind, job.cost, &job.budget, job.strategy, &relation) {
            Ok(mut report) => {
                report.reuse = ReuseStats {
                    warm_session: was_warm,
                    subrel_cache_hit: false,
                };
                attempts.push(report);
            }
            Err(e) => error = Some(e.to_string()),
        }
    }
    reuse.insert_job(fingerprint, job, &attempts);
    finish_job(job_id, job, attempts, error)
}

/// Wide-mode variant of [`run_job`]: the BREL backend runs with parallel
/// frontier expansion over `num_workers` threads (see [`crate::wide`]);
/// the quick and gyocro backends run as usual on a shared coordinator
/// manager. Deterministic across worker counts, like [`run_job`].
pub fn run_job_wide(
    job_id: usize,
    job: &JobSpec,
    num_workers: usize,
    options: WideOptions,
) -> JobReport {
    let mut coordinator = WarmSession::cold();
    let mut sessions: Vec<WarmSession> = (0..num_workers.max(1))
        .map(|_| WarmSession::new())
        .collect();
    run_job_wide_with(job_id, job, options, &mut coordinator, &mut sessions)
}

/// Wide mode with persistent sessions: the coordinator session hosts the
/// non-BREL backends (and is reset between jobs), the per-worker sessions
/// host the round expansions. The batch engine threads the same sessions
/// through every job so wide rounds stop paying a fresh manager per
/// expansion.
pub(crate) fn run_job_wide_with(
    job_id: usize,
    job: &JobSpec,
    options: WideOptions,
    coordinator: &mut WarmSession,
    sessions: &mut [WarmSession],
) -> JobReport {
    // The coordinator manager is only needed by non-BREL backends (wide
    // BREL rehydrates per expansion); build it lazily so a Brel-only job
    // does not pay for an unused root construction.
    let mut rehydrated = None;
    let mut attempts = Vec::with_capacity(job.backends.len());
    let mut error = None;
    for &kind in &job.backends {
        let result = if kind == BackendKind::Brel {
            solve_wide_with(job, options, sessions)
        } else {
            let (_space, relation, was_warm) =
                rehydrated.get_or_insert_with(|| coordinator.rehydrate(&job.relation));
            execute(kind, job.cost, &job.budget, job.strategy, relation).map(|mut report| {
                report.reuse = ReuseStats {
                    warm_session: *was_warm,
                    subrel_cache_hit: false,
                };
                report
            })
        };
        match result {
            Ok(report) => attempts.push(report),
            Err(e) => error = Some(e.to_string()),
        }
    }
    finish_job(job_id, job, attempts, error)
}

fn finish_job(
    job_id: usize,
    job: &JobSpec,
    attempts: Vec<SolutionReport>,
    error: Option<String>,
) -> JobReport {
    // `min_by_key` keeps the first of equal minima, so ties deterministically
    // go to the earlier backend in the job's list.
    let winner = attempts
        .iter()
        .enumerate()
        .min_by_key(|(_, a)| a.cost)
        .map(|(i, _)| i);
    JobReport {
        job_id,
        name: job.name.clone(),
        num_inputs: job.relation.num_inputs(),
        num_outputs: job.relation.num_outputs(),
        attempts,
        winner,
        error: if winner.is_none() { error } else { None },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{BackendKind, JobBudget, RelationSpec};
    use brel_relation::{BooleanRelation, RelationSpace};

    fn spec(table: &str, inputs: usize, outputs: usize) -> RelationSpec {
        let space = RelationSpace::new(inputs, outputs);
        let r = BooleanRelation::from_table(&space, table).unwrap();
        RelationSpec::from_relation(&r).unwrap()
    }

    #[test]
    fn portfolio_winner_is_the_cheapest_attempt() {
        // Fig. 10: BREL finds the cost-2 optimum, the quick solver does not.
        let job = JobSpec::portfolio(
            "fig10",
            spec("00:{00,11}\n01:{10}\n10:{01,10}\n11:{11}", 2, 2),
        )
        .with_budget(JobBudget {
            max_explored: None,
            fifo_capacity: None,
            ..JobBudget::default()
        });
        let report = run_job(7, &job);
        assert_eq!(report.job_id, 7);
        assert_eq!(report.attempts.len(), 3);
        let winner = report.winning().expect("well defined");
        assert_eq!(winner.backend, BackendKind::Brel);
        assert_eq!(winner.cost, 2);
        assert!(report.attempts.iter().all(|a| a.cost >= winner.cost));
        assert!(report.error.is_none());
    }

    #[test]
    fn ties_go_to_the_earlier_backend() {
        // A functional relation: every backend returns the same unique
        // solution, so the first backend in the list must win.
        let job = JobSpec::portfolio("func", spec("00:{0}\n01:{1}\n10:{1}\n11:{0}", 2, 1));
        let report = run_job(0, &job);
        assert_eq!(report.winner, Some(0));
        assert_eq!(report.winning().unwrap().backend, BackendKind::Quick);
    }

    #[test]
    fn ill_defined_jobs_report_the_error() {
        let job = JobSpec::portfolio("broken", spec("1 : {1}", 1, 1));
        let report = run_job(3, &job);
        assert!(report.attempts.is_empty());
        assert_eq!(report.winner, None);
        assert!(report.winning().is_none());
        assert!(report
            .error
            .as_deref()
            .unwrap()
            .contains("not well defined"));
    }
}
