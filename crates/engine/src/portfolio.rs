//! Portfolio execution: race several backends on one job and keep the
//! winner under the job's cost function.
//!
//! Every backend attempt runs inside the engine's panic-isolation boundary
//! ([`crate::fault::catch_fault`]): a panic, a kernel quota abort or a
//! deadline never escapes a job. Faults are classified, transient ones
//! retried on a quarantined-and-rebuilt session (bounded backoff), and
//! when every backend of a job falls away the degradation ladder — a
//! budget-capped best-first BREL probe, then the quick solver — still
//! produces one scored, verified-compatible row, so a batch always
//! returns a structured [`JobOutcome`] per job.

use std::time::{Duration, Instant};

use brel_bdd::ResourceGovernor;
use brel_core::SearchStrategy;
use brel_relation::{BooleanRelation, RelationError, RelationSpace};

use crate::backend::{execute_with, ExecContext, SolutionReport};
use crate::control::JobControl;
use crate::fault::{catch_fault, FaultClass, FaultInjection, JobOutcome};
use crate::job::{BackendKind, JobBudget, JobSpec};
use crate::reuse::{ReuseState, ReuseStats, WarmSession};
use crate::wide::{solve_wide_faulted, WideOptions};

/// The outcome of one job: every backend attempt (in the job's backend
/// order) plus the index of the selected winner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobReport {
    /// Position of the job in the submitted batch; reports are always
    /// delivered sorted by this id.
    pub job_id: usize,
    /// The job's name.
    pub name: String,
    /// Number of input variables of the relation.
    pub num_inputs: usize,
    /// Number of output variables of the relation.
    pub num_outputs: usize,
    /// One report per backend that completed, in backend order (plus a
    /// trailing degradation-ladder rung when one recovered the job).
    pub attempts: Vec<SolutionReport>,
    /// Index into `attempts` of the cheapest solution (ties broken towards
    /// the earlier backend). `None` iff no backend completed.
    pub winner: Option<usize>,
    /// The structured outcome classification: `Solved` for a clean job,
    /// `Degraded` when a fault or truncation was survived, and the fault's
    /// own outcome (`TimedOut`/`QuotaExceeded`/`Panicked`) when no solution
    /// survived. `None` iff the job failed structurally (see `error`).
    pub outcome: Option<JobOutcome>,
    /// Deterministic description of the first fault or truncation the job
    /// saw, `None` for clean jobs.
    pub fault: Option<String>,
    /// The failure message when no backend completed (e.g. the relation is
    /// not well defined).
    pub error: Option<String>,
}

impl JobReport {
    /// The winning attempt, if any backend completed.
    pub fn winning(&self) -> Option<&SolutionReport> {
        self.winner.map(|i| &self.attempts[i])
    }
}

/// Runs every backend of `job` on a freshly rehydrated relation and selects
/// the cheapest solution. One-shot wrapper over [`run_job_warm`] with a
/// cold session; it is a pure function of `(job_id, job)`, independent of
/// the thread it runs on.
pub fn run_job(job_id: usize, job: &JobSpec) -> JobReport {
    run_job_warm(job_id, job, &mut WarmSession::cold())
}

/// Like [`run_job`], but rehydrates into the caller's persistent
/// [`WarmSession`] — the API pool workers use to keep one manager alive
/// across jobs. Apart from the scheduling-dependent [`ReuseStats`] flags
/// and wall times, the report is byte-identical to a cold [`run_job`]:
/// a successful session reset is observationally cold.
pub fn run_job_warm(job_id: usize, job: &JobSpec, warm: &mut WarmSession) -> JobReport {
    run_job_with(job_id, job, warm, &ReuseState::disabled())
}

/// The pool-worker entry point: warm rehydration plus the cross-job
/// solved-subrelation cache. Cache hits are all-or-nothing per job (see
/// [`crate::reuse`]), so every cached report is the product of a full
/// clean portfolio run and hits never change the deterministic output.
pub(crate) fn run_job_with(
    job_id: usize,
    job: &JobSpec,
    warm: &mut WarmSession,
    reuse: &ReuseState,
) -> JobReport {
    run_job_faulted(job_id, job, warm, reuse, &[])
}

/// One backend attempt, classified. `Done` carries the optional
/// deterministic truncation description (step deadline expired with an
/// incumbent in hand); `Fault` means the session is suspect and must be
/// quarantined by the caller.
enum AttemptOutcome {
    Done(SolutionReport, Option<String>),
    Error(RelationError),
    Fault(FaultClass),
}

/// Runs `kind` once on the hydrated relation inside the panic-isolation
/// boundary, with the job's governor armed for the BREL backend. The
/// governor is cleared again before returning on the clean path; a fault
/// leaves the session to be quarantined, which rebuilds it anyway.
fn attempt_once(
    kind: BackendKind,
    job: &JobSpec,
    hydrated: &(RelationSpace, BooleanRelation, bool),
    deadline: Option<Instant>,
    injections: &[&FaultInjection],
    control: Option<&JobControl>,
) -> AttemptOutcome {
    let (space, relation, _was_warm) = hydrated;
    // Fault policies, injections and job controls only target the
    // recursive BREL solve; the quick and gyocro backends are single-pass
    // and fast by design.
    let brel = kind == BackendKind::Brel;
    let ctx = ExecContext {
        deadline: if brel { deadline } else { None },
        deadline_ms: job.fault.deadline_ms.unwrap_or(0),
        step_deadline: if brel { job.fault.step_deadline } else { None },
        injections: if brel { injections } else { &[] },
        control: if brel { control } else { None },
    };
    let governed = brel && job.fault.governs();
    if governed {
        let mut governor = ResourceGovernor::new();
        if let Some(max) = job.fault.max_live_nodes {
            governor = governor.with_max_live_nodes(max);
        }
        if let Some(at) = deadline {
            governor = governor.with_deadline_at(at);
        }
        space.mgr().set_governor(governor);
    }
    let outcome =
        catch_fault(|| execute_with(kind, job.cost, &job.budget, job.strategy, relation, &ctx));
    if governed {
        space.mgr().clear_governor();
    }
    match outcome {
        Ok(Ok((report, truncation))) => AttemptOutcome::Done(report, truncation),
        Ok(Err(RelationError::ResourceExhausted(err))) => {
            AttemptOutcome::Fault(FaultClass::from_resource(&err))
        }
        Ok(Err(error)) => AttemptOutcome::Error(error),
        Err(class) => AttemptOutcome::Fault(class),
    }
}

/// The full fault-aware job runner behind [`run_job_with`]: cache lookup,
/// per-backend isolation, bounded retries with session quarantine, and the
/// degradation ladder. With an empty injection slice and a default
/// [`crate::fault::FaultPolicy`] this reduces exactly to the clean path.
pub(crate) fn run_job_faulted(
    job_id: usize,
    job: &JobSpec,
    warm: &mut WarmSession,
    reuse: &ReuseState,
    injections: &[&FaultInjection],
) -> JobReport {
    run_job_controlled_inner(job_id, job, warm, reuse, injections, None)
}

/// The interactive entry point behind the serving layer: one job on the
/// caller's warm session under a [`JobControl`] — cooperative cancellation
/// checked between BREL exploration steps (a cancelled job truncates to
/// its incumbent and classifies as [`JobOutcome::Degraded`]) and incumbent
/// streaming via the control's callback. Fault injections ride along for
/// chaos-seeded serving runs. With an inert control and no injections the
/// report is byte-identical to [`run_job_warm`], so a serial replay of a
/// served corpus reproduces the batch engine's output exactly.
pub fn run_job_controlled(
    job_id: usize,
    job: &JobSpec,
    warm: &mut WarmSession,
    control: &JobControl,
    injections: &[&FaultInjection],
) -> JobReport {
    run_job_controlled_inner(
        job_id,
        job,
        warm,
        &ReuseState::disabled(),
        injections,
        Some(control),
    )
}

fn run_job_controlled_inner(
    job_id: usize,
    job: &JobSpec,
    warm: &mut WarmSession,
    reuse: &ReuseState,
    injections: &[&FaultInjection],
    control: Option<&JobControl>,
) -> JobReport {
    let fingerprint = job.relation.fingerprint();
    let lookup_start = Instant::now();
    // A job with pending injections must actually execute so the fault
    // fires; fired injections are inert, so later duplicates hit as usual.
    let pending_injection = injections.iter().any(|i| !i.has_fired());
    if !pending_injection {
        if let Some(mut attempts) = reuse.lookup_job(fingerprint, job) {
            brel_obs::event(brel_obs::Category::Session, "subrel_cache_hit");
            let wall = brel_obs::wall_micros(lookup_start);
            for attempt in &mut attempts {
                attempt.reuse = ReuseStats {
                    warm_session: false,
                    subrel_cache_hit: true,
                };
                attempt.wall_micros = wall;
            }
            return finish_job(job_id, job, attempts, None, None, None);
        }
    }
    let deadline = job
        .fault
        .deadline_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let mut hydrated: Option<(RelationSpace, BooleanRelation, bool)> =
        Some(warm.rehydrate(&job.relation));
    let mut attempts = Vec::with_capacity(job.backends.len());
    let mut error: Option<String> = None;
    let mut fault: Option<String> = None;
    let mut fault_class: Option<FaultClass> = None;
    for &kind in &job.backends {
        let mut tries = 0u32;
        let result = loop {
            let session = hydrated.get_or_insert_with(|| warm.rehydrate(&job.relation));
            let outcome = attempt_once(kind, job, session, deadline, injections, control);
            if let AttemptOutcome::Fault(class) = outcome {
                // The faulted manager may hold arbitrary mid-operation
                // state: drop our handles into it, then quarantine so the
                // next rehydrate builds a cold session.
                hydrated = None;
                warm.quarantine();
                if class.transient() && tries < job.fault.retries {
                    tries += 1;
                    std::thread::sleep(Duration::from_millis(1u64 << (tries - 1).min(6)));
                    continue;
                }
                break AttemptOutcome::Fault(class);
            }
            break outcome;
        };
        match result {
            AttemptOutcome::Done(mut report, truncation) => {
                report.reuse = ReuseStats {
                    warm_session: hydrated.as_ref().is_some_and(|h| h.2),
                    subrel_cache_hit: false,
                };
                if let Some(desc) = truncation {
                    fault.get_or_insert(desc);
                }
                attempts.push(report);
            }
            AttemptOutcome::Error(e) => error = Some(e.to_string()),
            AttemptOutcome::Fault(class) => {
                fault.get_or_insert_with(|| class.describe());
                fault_class.get_or_insert(class);
            }
        }
    }
    if fault_class.is_some() && attempts.is_empty() && job.fault.fallback {
        run_ladder(job, warm, &mut hydrated, &mut attempts);
    }
    // Only pure products of (job spec) enter the cross-job cache: a fault
    // or an injected truncation depends on the fault plan, not the job, so
    // replaying it from the cache would corrupt a later clean duplicate.
    if fault.is_none() && error.is_none() && injections.is_empty() {
        reuse.insert_job(fingerprint, job, &attempts);
    }
    finish_job(
        job_id,
        job,
        attempts,
        error,
        fault,
        fault_class.map(|class| class.outcome()),
    )
}

/// The degradation ladder: when every backend of a job faulted away, run
/// cheaper replacements on fresh sessions until one yields a scored
/// solution — a budget-capped best-first BREL probe (skipped when the job
/// never asked for BREL), then the quick solver. Rungs run ungoverned and
/// uninjected but still panic-isolated; a rung that faults is quarantined
/// and the next rung tried.
fn run_ladder(
    job: &JobSpec,
    warm: &mut WarmSession,
    hydrated: &mut Option<(RelationSpace, BooleanRelation, bool)>,
    attempts: &mut Vec<SolutionReport>,
) {
    let capped = JobBudget {
        max_explored: Some(4),
        fifo_capacity: Some(16),
        ..job.budget
    };
    let rungs = [
        (BackendKind::Brel, capped, SearchStrategy::BestFirst),
        (BackendKind::Quick, job.budget, job.strategy),
    ];
    for (kind, budget, strategy) in rungs {
        if kind == BackendKind::Brel && !job.backends.contains(&BackendKind::Brel) {
            continue;
        }
        let session = hydrated.get_or_insert_with(|| warm.rehydrate(&job.relation));
        let was_warm = session.2;
        let relation = &session.1;
        let outcome = catch_fault(|| {
            execute_with(
                kind,
                job.cost,
                &budget,
                strategy,
                relation,
                &ExecContext::default(),
            )
        });
        match outcome {
            Ok(Ok((mut report, _truncation))) => {
                report.degraded = true;
                report.reuse = ReuseStats {
                    warm_session: was_warm,
                    subrel_cache_hit: false,
                };
                brel_obs::event(brel_obs::Category::Engine, "ladder_recovered");
                attempts.push(report);
                return;
            }
            Ok(Err(_)) => {}
            Err(_) => {
                *hydrated = None;
                warm.quarantine();
            }
        }
    }
}

/// Wide-mode variant of [`run_job`]: the BREL backend runs with parallel
/// frontier expansion over `num_workers` threads (see [`crate::wide`]);
/// the quick and gyocro backends run as usual on a shared coordinator
/// manager. Deterministic across worker counts, like [`run_job`].
pub fn run_job_wide(
    job_id: usize,
    job: &JobSpec,
    num_workers: usize,
    options: WideOptions,
) -> JobReport {
    let mut coordinator = WarmSession::cold();
    let mut sessions: Vec<WarmSession> = (0..num_workers.max(1))
        .map(|_| WarmSession::new())
        .collect();
    run_job_wide_with(
        job_id,
        job,
        options,
        &mut coordinator,
        &mut sessions,
        None,
        &[],
    )
}

/// The serving-layer entry point for wide mode: one job over the caller's
/// persistent worker sessions under a [`JobControl`] — the shared
/// incumbent bound reports *every* cross-worker improvement through the
/// control's callback (improvements are committed under the search lock,
/// so the stream is strictly decreasing), and cancellation closes the
/// work-stealing search at the next commit. With an inert control this is
/// byte-identical to [`run_job_wide`] at the same worker count.
pub fn run_job_wide_controlled(
    job_id: usize,
    job: &JobSpec,
    options: WideOptions,
    coordinator: &mut WarmSession,
    sessions: &mut [WarmSession],
    control: &JobControl,
    injections: &[&FaultInjection],
) -> JobReport {
    run_job_wide_with(
        job_id,
        job,
        options,
        coordinator,
        sessions,
        Some(control),
        injections,
    )
}

/// Wide mode with persistent sessions: the coordinator session hosts the
/// non-BREL backends (and is reset between jobs), the per-worker sessions
/// host the work-stealing search. The batch engine threads the same
/// sessions through every job, so subproblems expand in warm managers and
/// only cross-worker steals ever copy BDDs between sessions.
pub(crate) fn run_job_wide_with(
    job_id: usize,
    job: &JobSpec,
    options: WideOptions,
    coordinator: &mut WarmSession,
    sessions: &mut [WarmSession],
    control: Option<&JobControl>,
    injections: &[&FaultInjection],
) -> JobReport {
    // The coordinator manager is only needed by non-BREL backends (wide
    // BREL seeds and expands in the worker sessions); build it lazily so a
    // Brel-only job does not pay for an unused root construction.
    let mut rehydrated = None;
    let mut attempts = Vec::with_capacity(job.backends.len());
    let mut error = None;
    let mut fault: Option<String> = None;
    for &kind in &job.backends {
        if kind == BackendKind::Brel {
            // Wide BREL degrades internally: a faulted expansion closes the
            // search and the report keeps the best incumbent found so far,
            // so a fault here still yields an attempt row.
            match solve_wide_faulted(job, options, sessions, control, injections) {
                Ok((report, wide_fault)) => {
                    if let Some(desc) = wide_fault {
                        fault.get_or_insert(desc);
                    }
                    attempts.push(report);
                }
                Err(e) => error = Some(e.to_string()),
            }
            continue;
        }
        let (_space, relation, was_warm) =
            rehydrated.get_or_insert_with(|| coordinator.rehydrate(&job.relation));
        let ctx = ExecContext::default();
        match execute_with(kind, job.cost, &job.budget, job.strategy, relation, &ctx) {
            Ok((mut report, _truncation)) => {
                report.reuse = ReuseStats {
                    warm_session: *was_warm,
                    subrel_cache_hit: false,
                };
                attempts.push(report);
            }
            Err(e) => error = Some(e.to_string()),
        }
    }
    finish_job(job_id, job, attempts, error, fault, None)
}

fn finish_job(
    job_id: usize,
    job: &JobSpec,
    attempts: Vec<SolutionReport>,
    error: Option<String>,
    fault: Option<String>,
    fault_outcome: Option<JobOutcome>,
) -> JobReport {
    // `min_by_key` keeps the first of equal minima, so ties deterministically
    // go to the earlier backend in the job's list.
    let winner = attempts
        .iter()
        .enumerate()
        .min_by_key(|(_, a)| a.cost)
        .map(|(i, _)| i);
    let degraded = fault.is_some() || attempts.iter().any(|a| a.degraded);
    let outcome = if winner.is_some() {
        Some(if degraded {
            JobOutcome::Degraded
        } else {
            JobOutcome::Solved
        })
    } else {
        fault_outcome
    };
    JobReport {
        job_id,
        name: job.name.clone(),
        num_inputs: job.relation.num_inputs(),
        num_outputs: job.relation.num_outputs(),
        attempts,
        winner,
        outcome,
        fault,
        error: if winner.is_none() { error } else { None },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultPolicy};
    use crate::job::{BackendKind, JobBudget, RelationSpec};
    use brel_relation::{BooleanRelation, RelationSpace};

    fn spec(table: &str, inputs: usize, outputs: usize) -> RelationSpec {
        let space = RelationSpace::new(inputs, outputs);
        let r = BooleanRelation::from_table(&space, table).unwrap();
        RelationSpec::from_relation(&r).unwrap()
    }

    #[test]
    fn portfolio_winner_is_the_cheapest_attempt() {
        // Fig. 10: BREL finds the cost-2 optimum, the quick solver does not.
        let job = JobSpec::portfolio(
            "fig10",
            spec("00:{00,11}\n01:{10}\n10:{01,10}\n11:{11}", 2, 2),
        )
        .with_budget(JobBudget {
            max_explored: None,
            fifo_capacity: None,
            ..JobBudget::default()
        });
        let report = run_job(7, &job);
        assert_eq!(report.job_id, 7);
        assert_eq!(report.attempts.len(), 3);
        let winner = report.winning().expect("well defined");
        assert_eq!(winner.backend, BackendKind::Brel);
        assert_eq!(winner.cost, 2);
        assert!(report.attempts.iter().all(|a| a.cost >= winner.cost));
        assert!(report.error.is_none());
        assert_eq!(report.outcome, Some(JobOutcome::Solved));
        assert!(report.fault.is_none());
        assert!(report.attempts.iter().all(|a| !a.degraded));
    }

    #[test]
    fn ties_go_to_the_earlier_backend() {
        // A functional relation: every backend returns the same unique
        // solution, so the first backend in the list must win.
        let job = JobSpec::portfolio("func", spec("00:{0}\n01:{1}\n10:{1}\n11:{0}", 2, 1));
        let report = run_job(0, &job);
        assert_eq!(report.winner, Some(0));
        assert_eq!(report.winning().unwrap().backend, BackendKind::Quick);
    }

    #[test]
    fn ill_defined_jobs_report_the_error() {
        let job = JobSpec::portfolio("broken", spec("1 : {1}", 1, 1));
        let report = run_job(3, &job);
        assert!(report.attempts.is_empty());
        assert_eq!(report.winner, None);
        assert!(report.winning().is_none());
        // Structural failure, not a fault: no outcome classification.
        assert_eq!(report.outcome, None);
        assert!(report.fault.is_none());
        assert!(report
            .error
            .as_deref()
            .unwrap()
            .contains("not well defined"));
    }

    fn fig10() -> RelationSpec {
        spec("00:{00,11}\n01:{10}\n10:{01,10}\n11:{11}", 2, 2)
    }

    /// Masks the scheduling-dependent fields so reports from different
    /// sessions can be compared byte-for-byte.
    fn masked(mut report: JobReport) -> JobReport {
        for attempt in &mut report.attempts {
            attempt.wall_micros = 0;
            attempt.reuse = ReuseStats {
                warm_session: false,
                subrel_cache_hit: false,
            };
        }
        report
    }

    #[test]
    fn injected_panics_degrade_portfolio_jobs() {
        let job = JobSpec::portfolio("fig10", fig10());
        let injection = FaultInjection::new("fig10", 0, FaultKind::Panic);
        let mut warm = WarmSession::cold();
        let report = run_job_faulted(0, &job, &mut warm, &ReuseState::disabled(), &[&injection]);
        assert!(injection.has_fired());
        // The BREL attempt died, but the quick and gyocro rows survived, so
        // the job still has a verified winner.
        assert_eq!(report.attempts.len(), 2);
        assert!(report.winning().is_some());
        assert_eq!(report.outcome, Some(JobOutcome::Degraded));
        assert!(report.fault.as_deref().unwrap().contains("injected panic"));
        assert_eq!(warm.counts().2, 1);
    }

    #[test]
    fn panicked_sessions_never_rehydrate_warm() {
        // Satellite regression: a session that saw a panic must be discarded,
        // and the next job on the same WarmSession must be byte-identical to
        // a cold reference run.
        let mut warm = WarmSession::cold();
        let job = JobSpec::single("boom", fig10(), BackendKind::Brel).with_fault(FaultPolicy {
            fallback: false,
            ..FaultPolicy::default()
        });
        let injection = FaultInjection::new("boom", 0, FaultKind::Panic);
        let report = run_job_faulted(0, &job, &mut warm, &ReuseState::disabled(), &[&injection]);
        assert!(report.attempts.is_empty());
        assert_eq!(report.outcome, Some(JobOutcome::Panicked));
        assert!(report.fault.as_deref().unwrap().contains("injected panic"));
        assert_eq!(warm.counts().2, 1);

        let clean = JobSpec::single("boom", fig10(), BackendKind::Brel);
        let next = run_job_warm(1, &clean, &mut warm);
        assert!(
            !next.attempts[0].reuse.warm_session,
            "a quarantined session must rebuild cold"
        );
        assert_eq!(masked(next), masked(run_job(1, &clean)));
    }

    #[test]
    fn transient_faults_retry_on_a_quarantined_session() {
        let job = JobSpec::portfolio("fig10", fig10()).with_fault(FaultPolicy {
            retries: 2,
            ..FaultPolicy::default()
        });
        let injection = FaultInjection::new("fig10", 1, FaultKind::Panic);
        let mut warm = WarmSession::cold();
        let report = run_job_faulted(4, &job, &mut warm, &ReuseState::disabled(), &[&injection]);
        assert!(injection.has_fired());
        // The retry re-runs BREL on a rebuilt session; the injection is
        // already spent, so the second attempt completes exactly.
        assert_eq!(report.attempts.len(), 3);
        assert_eq!(report.outcome, Some(JobOutcome::Solved));
        assert_eq!(report.winning().unwrap().cost, 2);
        assert_eq!(warm.counts().2, 1);
        // The retried attempt ran on a rebuilt manager, so its kernel
        // counters differ from an uninterrupted run — but the solution
        // itself must match the clean reference exactly.
        let reference = run_job(4, &job);
        assert_eq!(report.winner, reference.winner);
        for (a, b) in report.attempts.iter().zip(&reference.attempts) {
            assert_eq!(
                (a.backend, a.cost, a.cubes, a.literals),
                (b.backend, b.cost, b.cubes, b.literals)
            );
        }
    }

    #[test]
    fn the_ladder_recovers_a_faulted_single_backend_job() {
        let job = JobSpec::single("fig10", fig10(), BackendKind::Brel);
        let injection = FaultInjection::new("fig10", 0, FaultKind::Panic);
        let mut warm = WarmSession::cold();
        let report = run_job_faulted(0, &job, &mut warm, &ReuseState::disabled(), &[&injection]);
        assert_eq!(report.outcome, Some(JobOutcome::Degraded));
        assert_eq!(report.attempts.len(), 1, "one ladder rung row");
        let rung = report.winning().expect("ladder recovered a solution");
        assert!(rung.degraded);
        assert_eq!(rung.backend, BackendKind::Brel);
        assert_eq!(warm.counts().2, 1);
    }

    #[test]
    fn quota_policies_abort_and_classify() {
        let job = JobSpec::single("fig10", fig10(), BackendKind::Brel).with_fault(FaultPolicy {
            max_live_nodes: Some(1),
            fallback: false,
            ..FaultPolicy::default()
        });
        let report = run_job(0, &job);
        assert!(report.attempts.is_empty());
        assert_eq!(report.outcome, Some(JobOutcome::QuotaExceeded));
        assert_eq!(report.fault.as_deref(), Some("live-node quota exceeded"));
    }

    #[test]
    fn quota_aborts_still_degrade_through_the_ladder() {
        let job = JobSpec::single("fig10", fig10(), BackendKind::Brel).with_fault(FaultPolicy {
            max_live_nodes: Some(1),
            ..FaultPolicy::default()
        });
        let mut warm = WarmSession::cold();
        let report = run_job_faulted(0, &job, &mut warm, &ReuseState::disabled(), &[]);
        // The ladder rung runs ungoverned, so the capped best-first probe
        // completes and the job degrades instead of failing outright.
        assert_eq!(report.outcome, Some(JobOutcome::Degraded));
        assert_eq!(report.fault.as_deref(), Some("live-node quota exceeded"));
        assert!(report.winning().unwrap().degraded);
        assert_eq!(warm.counts().2, 1);
    }

    #[test]
    fn step_deadline_truncation_keeps_the_incumbent() {
        let job = JobSpec::single("fig10", fig10(), BackendKind::Brel).with_fault(FaultPolicy {
            step_deadline: Some(1),
            ..FaultPolicy::default()
        });
        let mut warm = WarmSession::cold();
        let report = run_job_faulted(0, &job, &mut warm, &ReuseState::disabled(), &[]);
        assert_eq!(report.outcome, Some(JobOutcome::Degraded));
        assert!(report
            .fault
            .as_deref()
            .unwrap()
            .contains("step deadline expired"));
        let attempt = report.winning().expect("incumbent kept");
        assert!(attempt.degraded);
        assert_eq!(attempt.explored, 1);
        // A truncation is a clean return, not a fault: the session survives.
        assert_eq!(warm.counts().2, 0);
    }

    #[test]
    fn an_inert_control_reduces_to_the_warm_path() {
        let job = JobSpec::portfolio("fig10", fig10());
        let mut warm = WarmSession::cold();
        let controlled = run_job_controlled(0, &job, &mut warm, &JobControl::new(), &[]);
        assert_eq!(masked(controlled), masked(run_job(0, &job)));
    }

    #[test]
    fn a_pre_cancelled_job_degrades_to_the_quick_seed() {
        use brel_core::CancelToken;
        let token = CancelToken::new();
        token.cancel();
        let control = JobControl::new().with_cancel(token);
        let job = JobSpec::single("fig10", fig10(), BackendKind::Brel);
        let mut warm = WarmSession::cold();
        let report = run_job_controlled(0, &job, &mut warm, &control, &[]);
        // Cancellation is a truncation, not a fault: the job degrades to
        // the quick-solver seed and the session survives unquarantined.
        assert_eq!(report.outcome, Some(JobOutcome::Degraded));
        assert!(report
            .fault
            .as_deref()
            .unwrap()
            .contains("cancelled after 0 expansions"));
        let attempt = report.winning().expect("seed incumbent kept");
        assert!(attempt.degraded);
        assert_eq!(attempt.explored, 0);
        assert_eq!(warm.counts().2, 0);
    }

    #[test]
    fn incumbent_streaming_reports_the_seed_then_improvements() {
        use std::sync::{Arc, Mutex};
        let seen: Arc<Mutex<Vec<(u64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        let control = JobControl::new()
            .on_incumbent(move |cost, explored| sink.lock().unwrap().push((cost, explored)));
        let job = JobSpec::single("fig10", fig10(), BackendKind::Brel).with_budget(JobBudget {
            max_explored: None,
            fifo_capacity: None,
            ..JobBudget::default()
        });
        let mut warm = WarmSession::cold();
        let report = run_job_controlled(0, &job, &mut warm, &control, &[]);
        assert_eq!(report.outcome, Some(JobOutcome::Solved));
        let stream = seen.lock().unwrap();
        assert!(stream.len() >= 2, "seed plus the cost-2 improvement");
        assert_eq!(stream[0].1, 0, "the seed arrives before any expansion");
        // Costs never regress along the stream, and the last one is the
        // winner's cost.
        for pair in stream.windows(2) {
            assert!(pair[1].0 <= pair[0].0);
        }
        assert_eq!(stream.last().unwrap().0, report.winning().unwrap().cost);
    }

    #[test]
    fn faulted_jobs_never_enter_the_subrel_cache() {
        let reuse = ReuseState::new(true);
        let job = JobSpec::portfolio("fig10", fig10());
        let injection = FaultInjection::new("fig10", 0, FaultKind::Panic);
        let mut warm = WarmSession::cold();
        let faulted = run_job_faulted(0, &job, &mut warm, &reuse, &[&injection]);
        assert_eq!(faulted.outcome, Some(JobOutcome::Degraded));
        // The partial result must not be replayed for the clean duplicate:
        // the rerun must miss the cache and produce a full Solved report.
        let clean = run_job_faulted(1, &job, &mut warm, &reuse, &[]);
        assert_eq!(clean.outcome, Some(JobOutcome::Solved));
        assert_eq!(clean.attempts.len(), 3);
        assert!(clean.attempts.iter().all(|a| !a.reuse.subrel_cache_hit));
        // ...and the clean run does populate the cache as usual.
        let hit = run_job_faulted(2, &job, &mut warm, &reuse, &[]);
        assert!(hit.attempts.iter().all(|a| a.reuse.subrel_cache_hit));
        assert_eq!(hit.outcome, Some(JobOutcome::Solved));
    }
}
