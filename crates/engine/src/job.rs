//! Portable job descriptions.
//!
//! Although the redesigned BDD layer is `Send` (a [`brel_bdd::BddSession`]
//! can cross threads), the engine still ships jobs as plain owned data — a
//! [`RelationSpec`] (canonical tabular rows) plus solver configuration —
//! and every worker rehydrates the relation into its own session before
//! solving. Rehydration is deterministic and a pure function of the
//! relation, so the same [`JobSpec`] produces the same solution on every
//! worker and at every worker count, and the canonical rows give the
//! cross-job cache a sound [`RelationSpec::fingerprint`] to key on.

use brel_core::{CostFn, SearchStrategy};
use brel_relation::{BooleanRelation, RelationError, RelationRow, RelationSpace};

use crate::fault::FaultPolicy;

/// Which solver implementation a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The output-ordered quick solver (Fig. 4 of the paper).
    Quick,
    /// The gyocro-style reduce–expand–irredundant baseline.
    Gyocro,
    /// The BREL recursive branch-and-bound solver (Fig. 6).
    Brel,
}

impl BackendKind {
    /// Short stable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Quick => "quick",
            BackendKind::Gyocro => "gyocro",
            BackendKind::Brel => "brel",
        }
    }

    /// Every backend, in the deterministic portfolio order.
    pub fn all() -> [BackendKind; 3] {
        [BackendKind::Quick, BackendKind::Gyocro, BackendKind::Brel]
    }
}

/// The cost function a job minimizes: the clonable, thread-portable subset
/// of [`brel_core::CostFn`] (the `Custom` closure variant cannot cross
/// threads and is deliberately not representable here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CostSpec {
    /// Sum of the BDD sizes of the outputs (area-oriented; the default).
    #[default]
    SumBddSize,
    /// Sum of the squared BDD sizes (delay-oriented).
    SumSquaredBddSize,
    /// Shared BDD size of all outputs.
    SharedBddSize,
    /// Number of cubes of the ISOP covers.
    CubeCount,
    /// Number of literals of the ISOP covers.
    LiteralCount,
}

impl CostSpec {
    /// Short stable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            CostSpec::SumBddSize => "sum-bdd-size",
            CostSpec::SumSquaredBddSize => "sum-squared-bdd-size",
            CostSpec::SharedBddSize => "shared-bdd-size",
            CostSpec::CubeCount => "cube-count",
            CostSpec::LiteralCount => "literal-count",
        }
    }

    /// Materializes the corresponding solver cost function.
    pub fn to_cost_fn(self) -> CostFn {
        match self {
            CostSpec::SumBddSize => CostFn::SumBddSize,
            CostSpec::SumSquaredBddSize => CostFn::SumSquaredBddSize,
            CostSpec::SharedBddSize => CostFn::SharedBddSize,
            CostSpec::CubeCount => CostFn::CubeCount,
            CostSpec::LiteralCount => CostFn::LiteralCount,
        }
    }
}

/// An owned, manager-free description of a Boolean relation: the dimension
/// of its space plus its tabular rows (see [`BooleanRelation::to_rows`]).
/// This is the serialization boundary jobs ride across threads.
///
/// Rows are stored in *canonical* form (merged inputs, sorted images,
/// empty images dropped, rows sorted by input vertex — see
/// [`brel_core::canonical_rows`]): two specs describing the same relation
/// compare equal however their rows were authored, rehydration is a pure
/// function of the relation rather than of row order, and the engine's
/// cross-job cache can key on [`RelationSpec::fingerprint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSpec {
    num_inputs: usize,
    num_outputs: usize,
    rows: Vec<RelationRow>,
}

impl RelationSpec {
    /// Builds a spec from explicit rows, validating every vertex arity up
    /// front so that [`RelationSpec::rehydrate`] cannot fail later on a
    /// worker thread. The rows are canonicalized on the way in.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::DimensionMismatch`] if any vertex has the
    /// wrong arity.
    pub fn new(
        num_inputs: usize,
        num_outputs: usize,
        rows: Vec<RelationRow>,
    ) -> Result<Self, RelationError> {
        for (input, outputs) in &rows {
            if input.len() != num_inputs {
                return Err(RelationError::DimensionMismatch {
                    expected: num_inputs,
                    found: input.len(),
                });
            }
            for output in outputs {
                if output.len() != num_outputs {
                    return Err(RelationError::DimensionMismatch {
                        expected: num_outputs,
                        found: output.len(),
                    });
                }
            }
        }
        Ok(RelationSpec {
            num_inputs,
            num_outputs,
            rows: brel_core::canonical_rows(&rows),
        })
    }

    /// Exports a live relation into a portable spec.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::TooLarge`] if the relation's space cannot be
    /// enumerated exhaustively.
    pub fn from_relation(relation: &BooleanRelation) -> Result<Self, RelationError> {
        Ok(RelationSpec {
            num_inputs: relation.space().num_inputs(),
            num_outputs: relation.space().num_outputs(),
            rows: brel_core::canonical_rows(&relation.to_rows()?),
        })
    }

    /// Rebuilds the relation inside a fresh, private BDD manager: the
    /// one-shot convenience over [`crate::WarmSession::rehydrate`], which
    /// is the engine's single rehydration path (the worker pool and wide
    /// mode call it with persistent warm sessions instead).
    pub fn rehydrate(&self) -> (RelationSpace, BooleanRelation) {
        let (space, relation, _warm) = crate::reuse::WarmSession::cold().rehydrate(self);
        (space, relation)
    }

    /// The canonical 64-bit fingerprint of the relation these rows
    /// describe (see [`brel_core::relation_fingerprint`]): invariant under
    /// row order, duplicate pairs, unordered images and irrelevant input
    /// columns. The cross-job solved-subrelation cache keys on it.
    pub fn fingerprint(&self) -> u64 {
        brel_core::relation_fingerprint(self.num_inputs, self.num_outputs, &self.rows)
    }

    /// Number of input variables.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of output variables.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// The tabular rows.
    pub fn rows(&self) -> &[RelationRow] {
        &self.rows
    }
}

/// Per-job exploration budget, mapped onto each backend's own knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobBudget {
    /// BREL: maximum number of subrelations explored (`None` = unbounded).
    pub max_explored: Option<usize>,
    /// BREL: capacity of the pending-subrelation FIFO (`None` = unbounded).
    pub fifo_capacity: Option<usize>,
    /// gyocro: maximum number of full reduce–expand–irredundant passes.
    pub gyocro_max_passes: usize,
}

impl Default for JobBudget {
    fn default() -> Self {
        JobBudget {
            max_explored: Some(10),
            fifo_capacity: Some(64),
            gyocro_max_passes: 10,
        }
    }
}

/// One unit of work: a relation, the backends to race on it, the cost
/// function that scores them, and the exploration budget.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Human-readable job name (instance name in the benchmark corpora).
    pub name: String,
    /// The relation to solve.
    pub relation: RelationSpec,
    /// Backends to run on this job, in order. One backend is a plain solve;
    /// several form a portfolio whose cheapest solution wins.
    pub backends: Vec<BackendKind>,
    /// The cost function used both inside BREL and to score/compare results.
    pub cost: CostSpec,
    /// The exploration budget.
    pub budget: JobBudget,
    /// The frontier discipline of the BREL backend's exploration
    /// (`SearchStrategy` is plain-old-data, so it rides across threads with
    /// the rest of the spec). Ignored by the quick and gyocro backends.
    pub strategy: SearchStrategy,
    /// The fault policy: deadlines, the live-node quota, retries and the
    /// degradation switch (see [`crate::fault`]). The default policy is
    /// unrestricted with fallback enabled.
    pub fault: FaultPolicy,
}

impl JobSpec {
    /// A job solved by a single backend.
    pub fn single(name: impl Into<String>, relation: RelationSpec, backend: BackendKind) -> Self {
        JobSpec {
            name: name.into(),
            relation,
            backends: vec![backend],
            cost: CostSpec::default(),
            budget: JobBudget::default(),
            strategy: SearchStrategy::default(),
            fault: FaultPolicy::default(),
        }
    }

    /// A portfolio job racing every available backend.
    pub fn portfolio(name: impl Into<String>, relation: RelationSpec) -> Self {
        JobSpec {
            name: name.into(),
            relation,
            backends: BackendKind::all().to_vec(),
            cost: CostSpec::default(),
            budget: JobBudget::default(),
            strategy: SearchStrategy::default(),
            fault: FaultPolicy::default(),
        }
    }

    /// Sets the cost function.
    pub fn with_cost(mut self, cost: CostSpec) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the exploration budget.
    pub fn with_budget(mut self, budget: JobBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the BREL backend's search strategy.
    pub fn with_strategy(mut self, strategy: SearchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the fault policy.
    pub fn with_fault(mut self, fault: FaultPolicy) -> Self {
        self.fault = fault;
        self
    }
}

// The whole point of the job layer: specs must be free to cross threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<JobSpec>();
    assert_send_sync::<RelationSpec>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_spec() -> RelationSpec {
        let space = RelationSpace::new(2, 2);
        let r = BooleanRelation::from_table(&space, "00:{00}\n01:{00}\n10:{00,11}\n11:{10,11}")
            .unwrap();
        RelationSpec::from_relation(&r).unwrap()
    }

    #[test]
    fn spec_round_trips_through_a_private_manager() {
        let spec = fig1_spec();
        assert_eq!(spec.num_inputs(), 2);
        assert_eq!(spec.num_outputs(), 2);
        let (_space, r) = spec.rehydrate();
        assert!(r.is_well_defined());
        assert_eq!(r.num_pairs(), 6);
        assert_eq!(RelationSpec::from_relation(&r).unwrap(), spec);
    }

    #[test]
    fn spec_validates_arities_up_front() {
        assert!(RelationSpec::new(2, 2, vec![(vec![true], vec![])]).is_err());
        assert!(RelationSpec::new(2, 2, vec![(vec![true, false], vec![vec![true]])]).is_err());
        assert!(RelationSpec::new(2, 2, vec![(vec![true, false], vec![])]).is_ok());
    }

    #[test]
    fn cost_spec_matches_core_cost_functions() {
        use brel_core::CostFunction;
        for cost in [
            CostSpec::SumBddSize,
            CostSpec::SumSquaredBddSize,
            CostSpec::SharedBddSize,
            CostSpec::CubeCount,
            CostSpec::LiteralCount,
        ] {
            assert_eq!(cost.name(), cost.to_cost_fn().name());
        }
    }

    #[test]
    fn builders_compose() {
        let job = JobSpec::portfolio("fig1", fig1_spec())
            .with_cost(CostSpec::LiteralCount)
            .with_budget(JobBudget {
                max_explored: None,
                ..JobBudget::default()
            })
            .with_strategy(SearchStrategy::BestFirst);
        assert_eq!(job.backends.len(), 3);
        assert_eq!(job.cost, CostSpec::LiteralCount);
        assert_eq!(job.budget.max_explored, None);
        assert_eq!(job.strategy, SearchStrategy::BestFirst);
        let single = JobSpec::single("fig1", fig1_spec(), BackendKind::Brel);
        assert_eq!(single.backends, vec![BackendKind::Brel]);
        assert_eq!(single.strategy, SearchStrategy::Fifo);
    }
}
