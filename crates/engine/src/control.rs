//! Per-job control surface for interactive callers: cooperative
//! cancellation and incumbent streaming.
//!
//! The batch engine is fire-and-forget — a [`crate::JobSpec`] goes in, a
//! [`crate::JobReport`] comes out. A long-running service needs two more
//! hooks into an in-flight job: a way to *stop* it early (the client
//! cancelled, disconnected, or its deadline became infeasible) and a way
//! to *observe* it while it runs (the BREL solver is anytime — every
//! incumbent improvement is a valid, verified solution worth streaming).
//! A [`JobControl`] bundles both. An empty control (no token cancelled,
//! no callback installed) reduces the controlled runner byte-identically
//! to [`crate::run_job_warm`], which is what keeps serial-replay
//! determinism gates meaningful for a serving layer built on top.

use std::fmt;

use brel_core::CancelToken;

/// Callback invoked with `(cost, explored)` on every incumbent: once for
/// the quick-solver seed right after the exploration is constructed, then
/// once per improvement.
type IncumbentFn = dyn Fn(u64, usize) + Send + Sync;

/// The control surface of one in-flight job: a cooperative cancel token
/// checked between BREL exploration steps, and an optional incumbent
/// callback fired on the seed solution and every improvement.
///
/// Cancellation behaves like a step-deadline truncation: the exploration
/// stops at the next step boundary, the incumbent in hand is kept, and
/// the job classifies as [`crate::JobOutcome::Degraded`] — never as an
/// error — so a cancelled client still receives its best verified
/// solution. The quick and gyocro backends are single-pass and fast by
/// design; only the BREL exploration observes the control, mirroring how
/// fault policies and injections are scoped.
#[derive(Default)]
pub struct JobControl {
    cancel: CancelToken,
    on_incumbent: Option<Box<IncumbentFn>>,
}

impl fmt::Debug for JobControl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobControl")
            .field("cancelled", &self.cancel.is_cancelled())
            .field("streams_incumbents", &self.on_incumbent.is_some())
            .finish()
    }
}

impl JobControl {
    /// An inert control: never cancelled, no incumbent callback.
    pub fn new() -> Self {
        JobControl::default()
    }

    /// Uses `token` as the cancel flag (share a clone with the driver
    /// thread that may cancel).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Installs the incumbent callback, invoked with `(cost, explored)`
    /// for the quick-solver seed and every later improvement. Called from
    /// the solving thread between exploration steps — keep it cheap and
    /// non-blocking (e.g. push onto an unbounded channel).
    pub fn on_incumbent(mut self, f: impl Fn(u64, usize) + Send + Sync + 'static) -> Self {
        self.on_incumbent = Some(Box::new(f));
        self
    }

    /// The cancel token (clone it to hand the cancel side to another
    /// thread).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// Reports an incumbent to the callback, if one is installed.
    pub(crate) fn notify_incumbent(&self, cost: u64, explored: usize) {
        if let Some(callback) = &self.on_incumbent {
            callback(cost, explored);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn an_inert_control_is_never_cancelled_and_swallows_notifications() {
        let control = JobControl::new();
        assert!(!control.is_cancelled());
        control.notify_incumbent(5, 0); // no callback: a no-op
        assert!(format!("{control:?}").contains("cancelled: false"));
    }

    #[test]
    fn cancel_and_incumbent_hooks_fire() {
        let seen = Arc::new(AtomicU64::new(0));
        let sink = seen.clone();
        let token = CancelToken::new();
        let control = JobControl::new()
            .with_cancel(token.clone())
            .on_incumbent(move |cost, _explored| sink.store(cost, Ordering::SeqCst));
        control.notify_incumbent(7, 2);
        assert_eq!(seen.load(Ordering::SeqCst), 7);
        assert!(!control.is_cancelled());
        token.cancel();
        assert!(control.is_cancelled());
        assert!(control.cancel_token().is_cancelled());
    }
}
